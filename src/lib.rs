//! # `split-mmwave` — umbrella crate
//!
//! One-stop re-export of the workspace crates that reproduce
//! *"One Pixel Image and RF Signal Based Split Learning for mmWave
//! Received Power Prediction"* (Koda et al., CoNEXT '19 Companion).
//!
//! The individual crates are usable on their own; this crate exists so the
//! runnable examples and integration tests can say `use split_mmwave::...`
//! and so downstream users get the whole stack from a single dependency.
//!
//! * [`tensor`] — dense `f32` tensor kernels (matmul, conv2d, pooling).
//! * [`nn`] — layers with hand-derived backprop, LSTM, losses, optimizers.
//! * [`channel`] — the paper's slot-level mmWave fading-channel model.
//! * [`scene`] — synthetic depth-camera + received-power trace generator.
//! * [`privacy`] — MDS-based privacy-leakage metric.
//! * [`core`] — the multimodal split-learning framework itself.
//! * [`telemetry`] — std-only metrics registry, structured event journal
//!   and scope timers (see README's *Observability* section).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use sl_channel as channel;
pub use sl_core as core;
pub use sl_nn as nn;
pub use sl_privacy as privacy;
pub use sl_scene as scene;
pub use sl_telemetry as telemetry;
pub use sl_tensor as tensor;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use sl_channel::{LinkConfig, RetransmissionPolicy};
    pub use sl_core::{
        ExperimentConfig, LinkPolicy, PoolingDim, Scheme, SplitModel, SplitTrainer,
        StreamingDeployment, TrainOutcome,
    };
    pub use sl_scene::{Scene, SceneConfig, SequenceDataset};
    pub use sl_telemetry::{Telemetry, TelemetryMode};
    pub use sl_tensor::Tensor;
}
