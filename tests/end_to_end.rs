//! Cross-crate integration: the full pipeline from synthetic scene to
//! trained split model, exercising every workspace crate through the
//! umbrella's public API.

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer, StopReason};
use split_mmwave::scene::{Scene, SceneConfig, SequenceDataset};

fn tiny_dataset(seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

#[test]
fn all_three_schemes_train_end_to_end() {
    let dataset = tiny_dataset(100);
    for scheme in Scheme::ALL {
        let cfg = ExperimentConfig::quick(scheme, PoolingDim::new(16, 16));
        let mut trainer = SplitTrainer::new(cfg, &dataset);
        let out = trainer.train(&dataset);
        assert!(out.steps_applied > 0, "{scheme}: no steps applied");
        assert!(out.final_rmse_db.is_finite(), "{scheme}: non-finite RMSE");
        assert!(
            out.final_rmse_db > 0.0 && out.final_rmse_db < 50.0,
            "{scheme}: implausible RMSE {}",
            out.final_rmse_db
        );
        assert_eq!(out.stop, StopReason::EpochLimit);
        // The learning curve is causally ordered in simulated time.
        assert!(out
            .curve
            .windows(2)
            .all(|w| w[0].elapsed_s <= w[1].elapsed_s && w[0].epoch < w[1].epoch));
    }
}

#[test]
fn image_schemes_pay_for_communication_rf_does_not() {
    let dataset = tiny_dataset(101);
    let run = |scheme| {
        let cfg = ExperimentConfig::quick(scheme, PoolingDim::new(4, 4));
        SplitTrainer::new(cfg, &dataset).train(&dataset)
    };
    let rf = run(Scheme::RfOnly);
    let img = run(Scheme::ImgOnly);
    let img_rf = run(Scheme::ImgRf);
    assert_eq!(rf.airtime_s, 0.0);
    assert!(img.airtime_s > 0.0);
    assert!(img_rf.airtime_s > 0.0);
    // Identical payloads (same pooling) ⇒ comparable airtime per step.
    let per_step_img = img.airtime_s / img.steps_applied as f64;
    let per_step_img_rf = img_rf.airtime_s / img_rf.steps_applied as f64;
    assert!((per_step_img / per_step_img_rf - 1.0).abs() < 0.5);
}

#[test]
fn coarser_pooling_costs_less_airtime_per_step() {
    let dataset = tiny_dataset(102);
    let airtime_per_step = |pooling| {
        let mut cfg = ExperimentConfig::quick(Scheme::ImgOnly, pooling);
        // Use a link where both payloads need multiple slots on average,
        // so the ordering is visible in simulated airtime.
        cfg.uplink = split_mmwave::channel::LinkConfig::paper_uplink().with_mean_snr_db(6.0);
        cfg.max_epochs = 2;
        let out = SplitTrainer::new(cfg, &dataset).train(&dataset);
        assert!(out.steps_applied > 0);
        out.airtime_s / (out.steps_applied + out.steps_voided) as f64
    };
    let fine = airtime_per_step(PoolingDim::new(2, 2)); // 64 px
    let pixel = airtime_per_step(PoolingDim::new(16, 16)); // 1 px
    assert!(
        pixel < fine,
        "one-pixel pooling must be cheaper per step: {pixel} vs {fine}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let d1 = tiny_dataset(103);
    let d2 = tiny_dataset(103);
    assert_eq!(d1.trace().powers_dbm, d2.trace().powers_dbm);
    let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
    let o1 = SplitTrainer::new(cfg.clone(), &d1).train(&d1);
    let o2 = SplitTrainer::new(cfg, &d2).train(&d2);
    assert_eq!(o1.curve, o2.curve);
    assert_eq!(o1.airtime_s, o2.airtime_s);
}

#[test]
fn prediction_traces_cover_requested_window() {
    let dataset = tiny_dataset(104);
    let cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(16, 16));
    let mut trainer = SplitTrainer::new(cfg, &dataset);
    trainer.train(&dataset);
    let trace = trainer.predict_trace(&dataset, 3, 25);
    assert_eq!(trace.len(), 25);
    // Aligned with the ground-truth trace and monotone in time.
    for p in &trace {
        assert_eq!(p.actual_dbm, dataset.trace().powers_dbm[p.index]);
    }
    assert!(trace.windows(2).all(|w| w[1].time_s > w[0].time_s));
}
