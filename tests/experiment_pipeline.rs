//! Integration tests of the experiment *logic* behind each paper
//! artifact (Table 1, Fig. 2, Fig. 3a/b mechanisms) at test scale — the
//! same code paths the `sl-bench` harnesses run at full scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::channel::{success_probability, LinkConfig, PayloadSpec};
use split_mmwave::core::{PoolingDim, Scheme, SplitModel, PAPER_CALIBRATED_UPLINK_SNR_DB};
use split_mmwave::privacy::privacy_leakage;
use split_mmwave::scene::{DepthCamera, Scene, SceneConfig};
use split_mmwave::tensor::Tensor;

/// Table 1, success-probability column: monotone in pooling, with the
/// paper's endpoints, under the calibrated link.
#[test]
fn table1_success_probability_shape() {
    let spec = PayloadSpec::paper(64);
    let link = LinkConfig::paper_uplink().with_mean_snr_db(PAPER_CALIBRATED_UPLINK_SNR_DB);
    let ps: Vec<f64> = PoolingDim::TABLE1
        .iter()
        .map(|p| success_probability(&link, spec.uplink_bits(p.h, p.w) as f64))
        .collect();
    assert!(ps.windows(2).all(|w| w[0] <= w[1]), "not monotone: {ps:?}");
    assert!(ps[0] < 1e-9, "1x1 endpoint: {}", ps[0]);
    assert!(ps[3] > 0.99, "1-pixel endpoint: {}", ps[3]);
    // The calibrated mid-point of the paper.
    assert!((ps[1] - 0.027).abs() < 0.01, "4x4 mid-point: {}", ps[1]);
}

/// Table 1, privacy column: leakage decreases with pooling on real
/// rendered frames through a real UE CNN. Uses the paper's 40×40 frames
/// (the 16×16 test camera renders too little structure for the MDS
/// similarity to resolve the ordering reliably).
#[test]
fn table1_privacy_leakage_shape() {
    let cfg = SceneConfig {
        num_frames: 400,
        ..SceneConfig::paper()
    };
    let scene = Scene::generate(cfg.clone(), &mut StdRng::seed_from_u64(200));
    let camera = DepthCamera::new(cfg.camera.clone(), cfg.distance_m);
    let frames: Vec<Tensor> = (0..60)
        .map(|i| camera.render(scene.pedestrians(), (i * 6) as f64 * cfg.frame_interval_s))
        .collect();
    let raw_refs: Vec<&Tensor> = frames.iter().collect();

    let leakage_for = |pooling: PoolingDim| {
        let mut model = SplitModel::new(
            Scheme::ImgOnly,
            pooling,
            40,
            40,
            4,
            8,
            8,
            8,
            &mut StdRng::seed_from_u64(201),
        );
        let ue = model.ue_mut().unwrap();
        let feats: Vec<Tensor> = frames.iter().map(|f| ue.infer_pooled_map(f)).collect();
        privacy_leakage(&raw_refs, &feats.iter().collect::<Vec<_>>())
    };

    let l_raw = leakage_for(PoolingDim::RAW); // full 40x40 maps
    let l_pixel = leakage_for(PoolingDim::ONE_PIXEL); // 1 px
    assert!(
        l_raw > l_pixel,
        "leakage must fall with compression: raw {l_raw} vs 1-pixel {l_pixel}"
    );
    assert!((0.0..=1.0).contains(&l_raw) && (0.0..=1.0).contains(&l_pixel));
}

/// Fig. 2 mechanism: the pooled maps really are `w_H·w_W`-fold smaller
/// and preserve the CNN output's mean (average pooling).
#[test]
fn fig2_compression_mechanism() {
    let mut rng = StdRng::seed_from_u64(202);
    let img = split_mmwave::tensor::uniform([16, 16], 0.0, 1.0, &mut rng);
    for pooling in [
        PoolingDim::RAW,
        PoolingDim::new(4, 4),
        PoolingDim::new(16, 16),
    ] {
        let mut model = SplitModel::new(Scheme::ImgOnly, pooling, 16, 16, 4, 2, 8, 8, &mut rng);
        let ue = model.ue_mut().unwrap();
        let full = ue.infer_cnn_map(&img);
        let pooled = ue.infer_pooled_map(&img);
        assert_eq!(
            pooled.numel() * pooling.compression_factor(),
            full.numel(),
            "{pooling}"
        );
        assert!((full.mean() - pooled.mean()).abs() < 1e-5);
    }
}

/// Fig. 3a mechanism: on the calibrated link, the expected airtime per
/// step is ordered 1-pixel < 10x10 < 4x4, and 1x1 is impossible.
#[test]
fn fig3a_airtime_ordering_mechanism() {
    use split_mmwave::channel::{RetransmissionPolicy, TransferSimulator};
    let spec = PayloadSpec::paper(64);
    let link = LinkConfig::paper_uplink().with_mean_snr_db(PAPER_CALIBRATED_UPLINK_SNR_DB);
    let sim = TransferSimulator::new(link, RetransmissionPolicy::paper());
    let slots = |p: PoolingDim| sim.expected_slots_whole(spec.uplink_bits(p.h, p.w));
    let s_pixel = slots(PoolingDim::ONE_PIXEL).unwrap();
    let s_coarse = slots(PoolingDim::COARSE).unwrap();
    let s_medium = slots(PoolingDim::MEDIUM).unwrap();
    assert!(s_pixel < s_coarse && s_coarse < s_medium);
    assert_eq!(
        slots(PoolingDim::RAW),
        None,
        "1x1 payload must be undecodable"
    );
}
