//! Integration: train → deploy → control. Exercises the full proactive
//! pipeline the paper motivates, across every workspace crate.

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{
    simulate_link_policy, ExperimentConfig, LinkPolicy, PoolingDim, Scheme, SplitTrainer,
    StreamingDeployment,
};
use split_mmwave::scene::{Scene, SceneConfig, SequenceDataset};

fn dataset(seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

#[test]
fn streamed_predictions_match_batch_validation_quality() {
    let ds = dataset(500);
    let mut cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
    cfg.max_epochs = 5;
    let mut trainer = SplitTrainer::new(cfg.clone(), &ds);
    let out = trainer.train(&ds);

    let n = ds.val_indices().len();
    let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 9);
    let report = deploy.run(trainer.model_mut(), &ds, 0, n);
    assert_eq!(report.points.len(), n);
    // Online streaming over a clean link should be within ~1.5 dB of the
    // batch validation number (cold-start frames and per-frame
    // quantization add a little).
    assert!(
        (report.rmse_db() - out.final_rmse_db).abs() < 1.5,
        "online {} dB vs batch {} dB",
        report.rmse_db(),
        out.final_rmse_db
    );
    assert_eq!(report.deadline_misses, 0, "clean link must meet deadlines");
}

#[test]
fn proactive_control_beats_reactive_with_a_good_predictor() {
    let ds = dataset(501);
    let mut cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4));
    cfg.max_epochs = 8;
    let mut trainer = SplitTrainer::new(cfg.clone(), &ds);
    trainer.train(&ds);

    let n = ds.val_indices().len();
    let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 10);
    let report = deploy.run(trainer.model_mut(), &ds, 0, n);

    let threshold = -28.0; // between LoS (-18) and blocked (-40)
    let powers = &ds.trace().powers_dbm;
    let pro = simulate_link_policy(
        &report.points,
        LinkPolicy::Proactive {
            threshold_dbm: threshold,
            hysteresis_db: 3.0,
        },
        powers,
    );
    let rea = simulate_link_policy(
        &report.points,
        LinkPolicy::Reactive {
            threshold_dbm: threshold,
            hysteresis_db: 3.0,
        },
        powers,
    );
    assert_eq!(pro.frames, rea.frames);
    // The predictive controller must not be worse; when fades exist it
    // should be strictly better (it sees them 4 frames early).
    assert!(
        pro.blocked_on_link <= rea.blocked_on_link,
        "proactive {} vs reactive {}",
        pro.blocked_on_link,
        rea.blocked_on_link
    );
}

#[test]
fn deployment_streams_are_deterministic() {
    let ds = dataset(502);
    let cfg = ExperimentConfig::quick(Scheme::ImgOnly, PoolingDim::new(16, 16));
    let run = || {
        let mut trainer = SplitTrainer::new(cfg.clone(), &ds);
        trainer.train(&ds);
        let mut deploy = StreamingDeployment::new(&cfg, ds.trace().frame_interval_s, 11);
        deploy.run(trainer.model_mut(), &ds, 0, 40)
    };
    let a = run();
    let b = run();
    assert_eq!(a.points, b.points);
    assert_eq!(a.airtime_s, b.airtime_s);
}
