#!/usr/bin/env bash
# Full verification gate for the split-mmwave workspace:
#   formatting, lints-as-errors, then the tier-1 build-and-test sequence
#   from ROADMAP.md. Run from anywhere inside the repo.
#
#   scripts/verify.sh            # everything
#   scripts/verify.sh --fast     # skip the release build (lints + tests)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "verify: all gates passed"
