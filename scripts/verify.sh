#!/usr/bin/env bash
# Full verification gate for the split-mmwave workspace:
#   formatting, lints-as-errors, the tier-1 build-and-test sequence from
#   ROADMAP.md, then a smoke-profile fig3a run fed through the
#   slm-report regression gate. Run from anywhere inside the repo.
#
#   scripts/verify.sh            # everything
#   scripts/verify.sh --fast     # skip build + smoke/report runs (lints,
#                                # tests, the kernels bench and the store
#                                # gates still run)
set -uo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
    fast=1
fi

declare -a results=()
overall=0

stage() {
    local name="$1"
    shift
    echo "==> $name: $*"
    if "$@"; then
        echo "PASS  $name"
        results+=("PASS  $name")
    else
        echo "FAIL  $name"
        results+=("FAIL  $name")
        overall=1
    fi
}

stage fmt cargo fmt --all -- --check
stage clippy cargo clippy --workspace --all-targets -- -D warnings

# Static analysis: workspace rules (unwrap/nondeterminism/print/float-eq/
# lossy-cast/deps policy, ratcheted by crates/lint/allowlist.txt) plus the
# offline shape-contract check of every experiment profile's wiring.
if [[ "$overall" -eq 0 ]]; then
    stage lint cargo run -q -p sl-lint --bin slm-lint -- --shapes
fi

# Semantic contract passes on the item-level index: telemetry key
# namespace (--keys), SLM_* env-knob table (--knobs), MsgType coverage +
# bounded protocol model check with its seeded-mutation self-test
# (--protocol) and kernel accumulator-order heuristics (--determinism).
# Writes results/lint.json (with per-pass counts) so slm-report can
# track the allowlist burn-down and the semantic surface.
if [[ "$overall" -eq 0 ]]; then
    stage lint-semantic cargo run -q -p sl-lint --bin slm-lint -- \
        --semantic --json-out results/lint.json
fi

if [[ "$fast" -eq 0 && "$overall" -eq 0 ]]; then
    stage build cargo build --release
fi

if [[ "$overall" -eq 0 ]]; then
    stage test cargo test -q
fi

# Compute-backend determinism: every backend must be bitwise identical
# to the scalar reference at every thread count, so the equivalence
# suite runs once per SLM_BACKEND × SLM_THREADS pairing — the env pair
# selects what the process-wide pool and global backend resolve to,
# and global_backend_matches_scalar_reference closes the loop.
if [[ "$overall" -eq 0 ]]; then
    for backend in scalar pooled simd; do
        for threads in 1 4; do
            stage "kernels-eq-$backend-${threads}t" \
                env SLM_BACKEND="$backend" SLM_THREADS="$threads" \
                cargo test -q -p sl-tensor --test parallel_equivalence
        done
    done
fi

if [[ "$fast" -eq 0 && "$overall" -eq 0 ]]; then
    # Seconds-scale profiled training runs, then the regression gate:
    # slm-report renders results/fig3a into a markdown report, appends a
    # trajectory entry to results/BENCH_fig3a.json and fails on metric
    # or simulated-time regressions against the last same-config entry.
    # The smoke run executes twice — single-threaded and on a 4-thread
    # pool — and the figure CSV must come out byte-identical: training
    # results never depend on SLM_THREADS. The 1t run records the span
    # timeline (SLM_TRACE=on) and the 4t run stays untraced, so the same
    # cmp also proves tracing never perturbs the numerics. The sampled
    # time-series rides the same gate: series.jsonl is keyed to step
    # counts and the simulated clock, so both runs must emit it
    # byte-for-byte identical too.
    stage smoke-1t env SLM_THREADS=1 SLM_PROFILE=smoke SLM_TELEMETRY=jsonl \
        SLM_TRACE=on \
        cargo run --release -q -p sl-bench --bin fig3a
    cp results/fig3a/fig3a.csv results/fig3a/fig3a_1t.csv 2>/dev/null || true
    cp results/fig3a/series.jsonl results/fig3a/series_1t.jsonl 2>/dev/null || true
    # Span well-formedness + the Perfetto export of the traced run.
    stage trace cargo run --release -q -p sl-bench --bin slm-trace -- \
        --out results/fig3a/trace.json results/fig3a/fig3a.jsonl
    stage smoke-4t env SLM_THREADS=4 SLM_PROFILE=smoke SLM_TELEMETRY=jsonl \
        cargo run --release -q -p sl-bench --bin fig3a
    stage smoke-bitwise cmp results/fig3a/fig3a_1t.csv results/fig3a/fig3a.csv
    stage series-bitwise cmp results/fig3a/series_1t.jsonl results/fig3a/series.jsonl
    # Backend independence end to end: the same smoke run forced onto
    # each compute backend must emit the figure CSV byte-for-byte —
    # training numerics never depend on SLM_BACKEND (DESIGN.md §13).
    # The runs above used the auto-detected backend; these pin it.
    for backend in scalar pooled simd; do
        stage "smoke-$backend" env SLM_BACKEND="$backend" SLM_THREADS=4 \
            SLM_PROFILE=smoke SLM_TELEMETRY=jsonl \
            cargo run --release -q -p sl-bench --bin fig3a
        stage "smoke-$backend-bitwise" \
            cmp results/fig3a/fig3a_1t.csv results/fig3a/fig3a.csv
    done
    rm -f results/fig3a/fig3a_1t.csv results/fig3a/series_1t.jsonl
    stage report cargo run --release -q -p sl-bench --bin slm-report -- \
        --check results/fig3a

    # Networked runtime: the same five smoke configurations over a real
    # loopback socket (slm-bs serving one session per configuration)
    # must reproduce the in-process figure CSV byte-for-byte — the
    # sl-net determinism contract (DESIGN.md §9). The port file doubles
    # as the server's readiness signal. Both sides run traced: slm-trace
    # merges the UE and BS journals into one Perfetto timeline, checking
    # that the server spans stitch under the client trace ids. The block
    # runs twice and the merged exports must be byte-identical — span
    # ids, timestamps and track numbering are all deterministic at
    # SLM_THREADS=1.
    net_traced_run() {
        local tag="$1"
        mkdir -p results/fig3a_net
        rm -f results/fig3a_net/bs.port results/fig3a_net/bs.metrics \
            results/fig3a_net/slm_bs.jsonl results/fig3a_net/fig3a_net.jsonl \
            results/fig3a_net/series.jsonl results/fig3a_net/series.bin \
            results/fig3a_net/slm_bs.snapshot.json
        env SLM_THREADS=1 SLM_TELEMETRY=jsonl SLM_TRACE=on \
            SLM_TELEMETRY_PATH=results/fig3a_net \
            cargo run --release -q -p sl-net --bin slm-bs -- \
            --addr 127.0.0.1:0 --sessions 5 --port-file results/fig3a_net/bs.port \
            --metrics-port 0 --metrics-port-file results/fig3a_net/bs.metrics &
        bs_pid=$!
        for _ in $(seq 1 100); do
            [[ -s results/fig3a_net/bs.port ]] && break
            sleep 0.1
        done
        # The UE runs in the background so the live endpoint can be
        # scraped while training is in flight: slm-top --raw validates
        # that the exposition parses, then the grep asserts it carries
        # both aggregate (net.frames.*) and per-session metrics.
        env SLM_THREADS=1 SLM_PROFILE=smoke SLM_TELEMETRY=jsonl SLM_TRACE=on \
            cargo run --release -q -p sl-net --bin slm-ue -- \
            --addr-file results/fig3a_net/bs.port &
        ue_pid=$!
        if [[ "$tag" == run1 ]]; then
            scrape=""
            for _ in $(seq 1 150); do
                if [[ -s results/fig3a_net/bs.metrics ]]; then
                    scrape="$(cargo run --release -q -p sl-net --bin slm-top -- \
                        --addr "$(cat results/fig3a_net/bs.metrics)" --once --raw \
                        2>/dev/null || true)"
                    grep -q "net\.frames" <<<"$scrape" \
                        && grep -q "net\.session\." <<<"$scrape" && break
                fi
                kill -0 "$ue_pid" 2>/dev/null || break
                sleep 0.1
            done
            live_metrics_seen() {
                grep -q "net\.frames" <<<"$scrape" \
                    && grep -q "net\.session\." <<<"$scrape"
            }
            stage live-metrics live_metrics_seen
        fi
        stage "net-smoke-$tag" wait "$ue_pid"
        if [[ "$overall" -ne 0 ]]; then
            kill "$bs_pid" 2>/dev/null || true
        fi
        wait "$bs_pid" 2>/dev/null || true
        rm -f results/fig3a_net/bs.port results/fig3a_net/bs.metrics
        stage "net-trace-$tag" cargo run --release -q -p sl-bench --bin slm-trace -- \
            --out "results/fig3a_net/trace_$tag.json" \
            results/fig3a_net/fig3a_net.jsonl results/fig3a_net/slm_bs.jsonl
    }
    net_traced_run run1
    stage net-bitwise cmp results/fig3a/fig3a.csv results/fig3a_net/fig3a.csv
    cp results/fig3a_net/series.jsonl results/fig3a_net/series_run1.jsonl 2>/dev/null || true
    net_traced_run run2
    stage net-trace-bitwise cmp results/fig3a_net/trace_run1.json \
        results/fig3a_net/trace_run2.json
    # Two traced runs of the same config must sample identical series —
    # wall clock and socket timing never leak into the store.
    stage net-series-bitwise cmp results/fig3a_net/series_run1.jsonl \
        results/fig3a_net/series.jsonl
    rm -f results/fig3a_net/series_run1.jsonl
fi

# Kernel micro-benchmarks: record ref/serial/pooled/simd throughput into
# results/BENCH_kernels.json on every verify run — --fast included — so
# the GFLOP/s trajectory accumulates; the report stage then gates the
# determinism contract (throughput itself is host-dependent and never
# gated).
if [[ "$overall" -eq 0 ]]; then
    stage kernels-bench env SLM_THREADS=4 \
        cargo run --release -q -p sl-bench --bin kernels
    stage kernels-report cargo run --release -q -p sl-bench --bin slm-report -- \
        --kernels --check results
fi

# Chunked array store (sl-store): codec throughput/ratio trajectory into
# results/BENCH_store.json, gated like the kernels (losslessness and the
# delta+rle compression win, never throughput); then the determinism
# contract end to end — the fig3a smoke scene chunk-encoded at 1 and 4
# threads must be byte-identical file by file — and the checkpoint
# resume gate: an interrupted + resumed smoke training must reproduce
# the uninterrupted learning curve bitwise.
if [[ "$overall" -eq 0 ]]; then
    stage store-bench env SLM_THREADS=4 \
        cargo run --release -q -p sl-bench --bin store
    stage store-report cargo run --release -q -p sl-bench --bin slm-report -- \
        --store --check results
    rm -rf results/store_scene_1t results/store_scene_4t
    stage store-encode-1t env SLM_THREADS=1 \
        cargo run --release -q -p sl-bench --bin store -- \
        --encode-scene results/store_scene_1t
    stage store-encode-4t env SLM_THREADS=4 \
        cargo run --release -q -p sl-bench --bin store -- \
        --encode-scene results/store_scene_4t
    store_bitwise() {
        local f
        for f in results/store_scene_1t/*; do
            cmp "$f" "results/store_scene_4t/$(basename "$f")" || return 1
        done
    }
    stage store-bitwise store_bitwise
    rm -rf results/store_scene_1t results/store_scene_4t
    stage store-resume env SLM_THREADS=4 \
        cargo run --release -q -p sl-bench --bin store -- --resume-check
fi

echo
echo "verify summary:"
for r in "${results[@]}"; do
    echo "  $r"
done
if [[ "$overall" -eq 0 ]]; then
    echo "verify: all gates passed"
else
    echo "verify: FAILED"
fi
exit "$overall"
