//! Audit the privacy of the cut-layer payload: how much of the raw
//! depth-image geometry survives in the transmitted feature maps, per
//! pooling dimension — the left half of the paper's Table 1.
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{PoolingDim, Scheme, SplitModel};
use split_mmwave::privacy::{congruence_coefficient, distance_matrix, privacy_leakage};
use split_mmwave::scene::{DepthCamera, Scene, SceneConfig};
use split_mmwave::tensor::Tensor;

fn main() {
    let cfg = SceneConfig {
        num_frames: 3_000,
        ..SceneConfig::paper()
    };
    let scene = Scene::generate(cfg.clone(), &mut StdRng::seed_from_u64(9));
    let camera = DepthCamera::new(cfg.camera.clone(), cfg.distance_m);

    // 100 frames spread over the trace.
    let frames: Vec<Tensor> = (0..100)
        .map(|i| {
            let k = i * (cfg.num_frames - 1) / 99;
            camera.render(scene.pedestrians(), k as f64 * cfg.frame_interval_s)
        })
        .collect();
    let raw_refs: Vec<&Tensor> = frames.iter().collect();
    let d_raw = distance_matrix(&raw_refs);

    println!("privacy audit over {} sampled frames\n", frames.len());
    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "pooling", "pixels", "MDS leakage", "congruence"
    );
    for pooling in PoolingDim::TABLE1 {
        let mut model = SplitModel::new(
            Scheme::ImgOnly,
            pooling,
            40,
            40,
            4,
            8,
            32,
            8,
            &mut StdRng::seed_from_u64(10),
        );
        let ue = model.ue_mut().expect("image scheme has a UE half");
        let features: Vec<Tensor> = frames.iter().map(|f| ue.infer_pooled_map(f)).collect();
        let feat_refs: Vec<&Tensor> = features.iter().collect();
        let leakage = privacy_leakage(&raw_refs, &feat_refs);
        let congruence = congruence_coefficient(&d_raw, &distance_matrix(&feat_refs));
        println!(
            "{:<22} {:>10} {:>12.3} {:>14.3}",
            pooling.to_string(),
            pooling.output_pixels(40, 40),
            leakage,
            congruence
        );
    }

    println!("\ninterpretation: an eavesdropper holding the cut-layer payload can");
    println!("reconstruct the raw images' pairwise geometry in proportion to the");
    println!("leakage — one-pixel pooling leaves the least structure (paper Table 1).");
}
