//! Visualize the synthetic mmWave blockage scene: watch a pedestrian
//! walk through the depth camera's view while the received power fades —
//! the cross-modal signal the split network learns from.
//!
//! ```sh
//! cargo run --release --example blockage_scene
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::scene::{ascii_frame, DepthCamera, Scene, SceneConfig};

fn main() {
    let config = SceneConfig {
        num_frames: 1_200, // ~40 s
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(4);
    let scene = Scene::generate(config.clone(), &mut rng);
    let trace = scene.simulate(&mut rng);
    let camera = DepthCamera::new(config.camera.clone(), config.distance_m);

    println!(
        "scene: {} pedestrians over {:.0} s; LoS power {} dBm, blockage depth {} dB\n",
        scene.pedestrians().len(),
        config.duration_s(),
        config.los_power_dbm,
        config.blockage_depth_db
    );

    // Find the first full blockage and show frames around it.
    let k_fade = (0..config.num_frames)
        .find(|&k| scene.blockage_at_frame(k) > config.blockage_depth_db * 0.9)
        .expect("trace contains a blockage");
    println!(
        "first full blockage at frame {k_fade} (t = {:.2} s)\n",
        scene.frame_time(k_fade)
    );

    for dk in [-30i64, -15, -6, 0, 6, 15] {
        let k = (k_fade as i64 + dk).max(0) as usize;
        let frame = camera.render(scene.pedestrians(), scene.frame_time(k));
        println!(
            "frame {k} (t = {:.2} s): power {:+.1} dBm, blockage {:.1} dB",
            scene.frame_time(k),
            trace.powers_dbm[k],
            scene.blockage_at_frame(k)
        );
        println!("{}", ascii_frame(&frame));
    }

    // Power trace around the event as a vertical ASCII chart.
    println!("received power (dBm) around the event:");
    let lo = k_fade.saturating_sub(45);
    let hi = (k_fade + 45).min(trace.len() - 1);
    let min = trace.powers_dbm[lo..=hi]
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    let max = trace.powers_dbm[lo..=hi]
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    for k in (lo..=hi).step_by(3) {
        let p = trace.powers_dbm[k];
        let width = 60.0 * (p - min) / (max - min + 1e-6);
        println!(
            "  t={:6.2}s {:7.1} dBm |{}",
            scene.frame_time(k),
            p,
            "#".repeat(width as usize)
        );
    }
}
