//! Quickstart: train the paper's headline configuration — one-pixel
//! Img+RF split learning — on a reduced synthetic scene, in seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use split_mmwave::scene::{Scene, SceneConfig, SequenceDataset};

fn main() {
    // 1. Generate a synthetic mmWave blockage scene (stand-in for the
    //    paper's Kinect + 60 GHz testbed; see DESIGN.md).
    let config = SceneConfig {
        num_frames: 2_000, // ~66 s of trace instead of the full 7.3 min
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let scene = Scene::generate(config, &mut rng);
    let trace = scene.simulate(&mut rng);
    println!(
        "scene: {} frames, {:.1} s, {:.1}% of samples in deep fade",
        trace.len(),
        trace.len() as f64 * trace.frame_interval_s,
        100.0 * trace.deep_fade_fraction(10.0),
    );

    // 2. Window into (L=4 history, 4-frames-ahead target) samples.
    let dataset = SequenceDataset::paper_windowing(trace);
    println!(
        "dataset: {} train / {} val sequences",
        dataset.train_indices().len(),
        dataset.val_indices().len()
    );

    // 3. Train the one-pixel Img+RF split model with the paper's
    //    hyper-parameters (fewer epochs for a quick demo).
    let mut cfg = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
    cfg.max_epochs = 10;
    let mut trainer = SplitTrainer::new(cfg, &dataset);
    let outcome = trainer.train(&dataset);

    println!("\nlearning curve (simulated elapsed time vs validation RMSE):");
    for p in &outcome.curve {
        println!(
            "  t = {:6.2} s   epoch {:2}   RMSE = {:.2} dB",
            p.elapsed_s, p.epoch, p.val_rmse_db
        );
    }
    println!(
        "\nstopped: {:?} after {} epochs — final RMSE {:.2} dB (best {:.2} dB)",
        outcome.stop,
        outcome.epochs,
        outcome.final_rmse_db,
        outcome.best_rmse_db()
    );
    println!(
        "simulated time: {:.2} s compute + {:.2} s airtime ({} steps, {} voided)",
        outcome.compute_s, outcome.airtime_s, outcome.steps_applied, outcome.steps_voided
    );

    // 4. Predict a short validation window (the Fig. 3b view).
    let window = trainer.predict_trace(&dataset, 0, 30);
    println!("\nsample predictions (dBm):");
    for p in window.iter().step_by(6) {
        println!(
            "  t = {:6.2} s   predicted {:7.2}   actual {:7.2}",
            p.time_s, p.predicted_dbm, p.actual_dbm
        );
    }
}
