//! The headline experiment, end to end: train the **one-pixel** Img+RF
//! split model against the RF-only baseline and report accuracy,
//! convergence time, payload and privacy side by side.
//!
//! ```sh
//! cargo run --release --example onepixel_training
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use split_mmwave::privacy::privacy_leakage;
use split_mmwave::scene::{DepthCamera, Scene, SceneConfig, SequenceDataset};
use split_mmwave::tensor::Tensor;

fn main() {
    let scene_cfg = SceneConfig {
        num_frames: 4_000,
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let scene = Scene::generate(scene_cfg.clone(), &mut rng);
    let dataset = SequenceDataset::paper_windowing(scene.simulate(&mut rng));
    println!(
        "dataset: {} train / {} val sequences ({} frames)\n",
        dataset.train_indices().len(),
        dataset.val_indices().len(),
        scene_cfg.num_frames
    );

    let mut results = Vec::new();
    for scheme in [Scheme::RfOnly, Scheme::ImgRf] {
        let mut cfg = ExperimentConfig::paper(scheme, PoolingDim::ONE_PIXEL);
        cfg.max_epochs = 40;
        cfg.conv_channels = 4;
        let mut trainer = SplitTrainer::new(cfg, &dataset);
        let out = trainer.train(&dataset);
        println!(
            "{scheme:<7} best {:.2} dB in {:.2} simulated s ({} epochs, stop {:?})",
            out.best_rmse_db(),
            out.elapsed_s(),
            out.epochs,
            out.stop
        );
        results.push((scheme, out, trainer));
    }

    let (rf_half, img_half) = results.split_at_mut(1);
    let (_, rf_out, _) = &rf_half[0];
    let (_, img_out, img_trainer) = &mut img_half[0];

    // Privacy of what actually crossed the link.
    let camera = DepthCamera::new(scene_cfg.camera.clone(), scene_cfg.distance_m);
    let frames: Vec<Tensor> = (0..80)
        .map(|i| {
            let k = i * (scene_cfg.num_frames - 1) / 79;
            camera.render(scene.pedestrians(), k as f64 * scene_cfg.frame_interval_s)
        })
        .collect();
    let ue = img_trainer
        .model_mut()
        .ue_mut()
        .expect("Img+RF has a UE half");
    let features: Vec<Tensor> = frames.iter().map(|f| ue.infer_pooled_map(f)).collect();
    let leakage = privacy_leakage(
        &frames.iter().collect::<Vec<_>>(),
        &features.iter().collect::<Vec<_>>(),
    );

    println!("\n==== one-pixel Img+RF vs RF-only ====");
    println!(
        "accuracy:   {:.2} dB vs {:.2} dB RMSE ({})",
        img_out.best_rmse_db(),
        rf_out.best_rmse_db(),
        if img_out.best_rmse_db() < rf_out.best_rmse_db() {
            "one-pixel images help"
        } else {
            "no gain on this trace"
        }
    );
    println!(
        "payload:    {} bits per SGD step uplink (vs 3,276,800 for uncompressed 1x1 pooling)",
        img_trainer.model_mut().uplink_payload_bits(64)
    );
    println!("privacy:    MDS leakage of the transmitted one-pixel maps: {leakage:.3}");
    println!(
        "airtime:    {:.2} s of {:.2} s total training time spent on the air",
        img_out.airtime_s,
        img_out.elapsed_s()
    );
}
