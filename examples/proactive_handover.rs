//! The payoff of 120 ms-ahead prediction: **proactive link control**.
//!
//! Trains the one-pixel Img+RF split model, then *deploys* it: the UE
//! streams one quantized feature pixel per frame over the simulated
//! uplink, the BS predicts the power 120 ms ahead, and a controller
//! decides when to leave the mmWave link for a fallback. Compared
//! against the reactive baseline that only watches the measured power —
//! the difference is the outage the paper's whole premise is about
//! avoiding.
//!
//! ```sh
//! cargo run --release --example proactive_handover
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::core::{
    simulate_link_policy, ExperimentConfig, LinkPolicy, PoolingDim, Scheme, SplitTrainer,
    StreamingDeployment,
};
use split_mmwave::scene::{Scene, SceneConfig, SequenceDataset};

fn main() {
    // Scene + training (reduced scale; see the fig3a harness for full).
    let scene_cfg = SceneConfig {
        num_frames: 4_000,
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let scene = Scene::generate(scene_cfg.clone(), &mut rng);
    let dataset = SequenceDataset::paper_windowing(scene.simulate(&mut rng));

    let mut cfg = ExperimentConfig::paper(Scheme::ImgRf, PoolingDim::ONE_PIXEL);
    cfg.max_epochs = 30;
    cfg.conv_channels = 4;
    let mut trainer = SplitTrainer::new(cfg.clone(), &dataset);
    let out = trainer.train(&dataset);
    println!(
        "trained one-pixel Img+RF to {:.2} dB validation RMSE ({} epochs)\n",
        out.final_rmse_db, out.epochs
    );

    // Deployment: stream the whole validation region.
    let count = dataset.val_indices().len();
    let mut deploy = StreamingDeployment::new(&cfg, dataset.trace().frame_interval_s, 7);
    let report = deploy.run(trainer.model_mut(), &dataset, 0, count);
    println!(
        "streamed {} frames: {:.2} dB online RMSE, {} deadline misses ({:.1}%), {} bits total uplink ({:.1} bits/frame)",
        report.points.len(),
        report.rmse_db(),
        report.deadline_misses,
        report.miss_rate() * 100.0,
        report.payload_bits,
        report.payload_bits as f64 / report.points.len() as f64,
    );

    // Controllers: leave the link when (predicted / measured) power
    // falls below threshold.
    let threshold = scene_cfg.los_power_dbm as f32 - 10.0;
    let powers = &dataset.trace().powers_dbm;
    let proactive = simulate_link_policy(
        &report.points,
        LinkPolicy::Proactive {
            threshold_dbm: threshold,
            hysteresis_db: 3.0,
        },
        powers,
    );
    let reactive = simulate_link_policy(
        &report.points,
        LinkPolicy::Reactive {
            threshold_dbm: threshold,
            hysteresis_db: 3.0,
        },
        powers,
    );

    println!(
        "\nlink control at threshold {threshold:.0} dBm over {} frames:",
        proactive.frames
    );
    println!(
        "  proactive (acts on the 120 ms-ahead prediction): {:4} blocked-on-link frames ({:.2}% outage), {:3} needless fallbacks, {:3} switches",
        proactive.blocked_on_link,
        proactive.outage_rate() * 100.0,
        proactive.needless_fallback,
        proactive.switches
    );
    println!(
        "  reactive  (acts on the measured power only):     {:4} blocked-on-link frames ({:.2}% outage), {:3} needless fallbacks, {:3} switches",
        reactive.blocked_on_link,
        reactive.outage_rate() * 100.0,
        reactive.needless_fallback,
        reactive.switches
    );
    let saved = reactive.blocked_on_link as i64 - proactive.blocked_on_link as i64;
    println!(
        "\nprediction removes {saved} blocked frames (~{:.0} ms of outage per crossing avoided)",
        saved as f64 * dataset.trace().frame_interval_s * 1e3 / proactive.switches.max(1) as f64
            * 2.0
    );
}
