//! Explore the paper's wireless channel: payload sizes, decoding success
//! probabilities, and slots-per-transfer for every pooling dimension —
//! the mechanics behind Table 1 and Fig. 3a's time axis.
//!
//! ```sh
//! cargo run --release --example channel_explorer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use split_mmwave::channel::{
    success_probability, LinkConfig, PayloadSpec, RetransmissionPolicy, TransferSimulator,
    TransferStats,
};
use split_mmwave::core::PoolingDim;

fn main() {
    let spec = PayloadSpec::paper(64);
    let literal = LinkConfig::paper_uplink();
    let calibrated = literal.with_mean_snr_db(split_mmwave::core::PAPER_CALIBRATED_UPLINK_SNR_DB);

    println!("uplink link budget (paper §3):");
    println!(
        "  P = {} dBm, W = {} MHz, r = {} m, α = {}, τ = {} ms, σ² = {} dBm/Hz",
        literal.tx_power_dbm,
        literal.bandwidth_hz / 1e6,
        literal.distance_m,
        literal.path_loss_exp,
        literal.slot_s * 1e3,
        literal.noise_psd_dbm_hz
    );
    println!(
        "  mean SNR: literal {:.1} dB, Table-1-calibrated {:.1} dB (DESIGN.md §5)\n",
        literal.mean_snr_db(),
        calibrated.mean_snr_db()
    );

    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>16}",
        "pooling", "B_UL (bits)", "p (literal)", "p (calib)", "slots/transfer"
    );
    let mut rng = StdRng::seed_from_u64(5);
    for pooling in PoolingDim::TABLE1 {
        let bits = spec.uplink_bits(pooling.h, pooling.w);
        let p_lit = success_probability(&literal, bits as f64);
        let p_cal = success_probability(&calibrated, bits as f64);

        // Empirical mean slots on the calibrated link (capped).
        let mut sim = TransferSimulator::new(
            calibrated.clone(),
            RetransmissionPolicy::WholePayload { max_slots: 5_000 },
        );
        let mut stats = TransferStats::default();
        for _ in 0..300 {
            stats.record(sim.transfer(bits, &mut rng));
        }
        let slots = if stats.delivery_rate() > 0.0 && stats.delivery_rate() == 1.0 {
            format!("{:.1}", stats.mean_slots())
        } else if stats.delivery_rate() == 0.0 {
            "never".to_string()
        } else {
            format!(
                "{:.1} ({}% ok)",
                stats.mean_slots(),
                (stats.delivery_rate() * 100.0) as u32
            )
        };
        println!(
            "{:<22} {:>12} {:>14.3e} {:>14.4} {:>16}",
            pooling.to_string(),
            bits,
            p_lit,
            p_cal,
            slots
        );
    }

    println!("\nsegmented-transfer extension (15 kbit segments, calibrated link):");
    for pooling in [PoolingDim::RAW, PoolingDim::MEDIUM] {
        let bits = spec.uplink_bits(pooling.h, pooling.w);
        let mut sim = TransferSimulator::new(
            calibrated.clone(),
            RetransmissionPolicy::Segmented {
                segment_bits: 15_000,
                max_slots: 1_000_000,
            },
        );
        let mut stats = TransferStats::default();
        for _ in 0..50 {
            stats.record(sim.transfer(bits, &mut rng));
        }
        println!(
            "  {:<20} delivered {:>4.0}%, mean {:>8.1} slots ({:.2} s airtime per step)",
            pooling.to_string(),
            stats.delivery_rate() * 100.0,
            stats.mean_slots(),
            stats.mean_slots() * calibrated.slot_s
        );
    }
    println!("\n(the paper's whole-payload policy can never deliver the 1x1 payload —");
    println!(" segmentation trades that cliff for proportional airtime)");
}
