//! # `sl-tensor` — dense `f32` tensor kernels
//!
//! A small, dependency-light tensor library purpose-built for the
//! `split-mmwave` workspace. It provides exactly the kernels the paper's
//! split network needs — dense linear algebra, 2-D convolution, average
//! pooling and the usual elementwise / reduction operations — implemented
//! as straightforward, easily-audited loops (in the spirit of smoltcp's
//! "simplicity and robustness" design goals) rather than as a general
//! autograd framework.
//!
//! Conventions:
//!
//! * All tensors are row-major (C order) `f32` buffers with an explicit
//!   shape; there are no views or strides — slicing copies.
//! * Image batches use the `NCHW` layout: `[batch, channels, height, width]`.
//! * Shape mismatches are programmer errors and **panic** with a message
//!   naming the operation and both shapes. Fallible *data-driven*
//!   constructors (e.g. [`Tensor::from_vec`]) return [`TensorError`]
//!   instead.
//!
//! ## Compute backend
//!
//! The hot kernels (`matmul` variants, `conv2d`/`conv2d_backward`) run on
//! a std-only, lazily-initialized worker pool ([`ComputePool`], sized by
//! `SLM_THREADS`, default: available parallelism) using cache-blocked
//! tiled GEMM and an im2col lowering for convolution. Work is partitioned
//! into **disjoint output row ranges** whose count depends only on the
//! problem shape, and every output element is one accumulator summed in
//! ascending reduction order — so results are **bitwise identical at
//! every thread count**, keeping checkpoints, golden tests and the
//! determinism lint story intact. Each kernel also has a `*_in` variant
//! taking an explicit pool (used by equivalence tests and benches).
//!
//! The serial microkernel each pool job runs is swappable behind the
//! [`Backend`] trait (`SLM_BACKEND`: `auto` | `scalar` | `pooled` |
//! `simd`): `scalar` is the naive reference, `pooled` the cache-blocked
//! tiles, and `simd` explicitly vectorized AVX2/NEON kernels with
//! runtime feature detection. All three keep the per-element
//! ascending-order contract, so results are also **bitwise identical
//! across backends** (see `crate::backend`); `*_with` variants take an
//! explicit backend.
//!
//! The split-learning stack built on top of this crate is deterministic:
//! every random initializer takes an explicit `rand::Rng`, so seeding the
//! caller's RNG reproduces training bit-for-bit regardless of `SLM_THREADS`.
//!
//! ```
//! use sl_tensor::{avg_pool2d, matmul, Tensor};
//!
//! // A 2×2 identity times a 2×2 matrix.
//! let eye = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
//! let m = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert_eq!(matmul(&eye, &m), m);
//!
//! // The paper's cut-layer compressor: average-pool a map to one pixel.
//! let map = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
//! let one_pixel = avg_pool2d(&map, 4, 4);
//! assert_eq!(one_pixel.item(), 7.5);
//! ```

mod backend;
mod conv;
mod gemm;
mod init;
mod linalg;
mod pool;
mod pooling;
mod shape;
mod simd;
mod tensor;

pub use backend::{
    backend_for, global_backend, global_backend_kind, resolve_backend, Backend, BackendKind,
    PooledBackend, ScalarBackend, SimdBackend,
};
pub use conv::{
    conv2d, conv2d_backward, conv2d_backward_in, conv2d_backward_with, conv2d_in, conv2d_with,
    Conv2dGrads, Padding,
};
pub use init::{he_normal, randn, uniform, xavier_uniform};
pub use linalg::{
    matmul, matmul_a_bt, matmul_a_bt_in, matmul_a_bt_with, matmul_at_b, matmul_at_b_in,
    matmul_at_b_with, matmul_in, matmul_with, matvec, outer, transpose,
};
pub use pool::{ComputePool, KernelKind, MAX_THREADS};
pub use pooling::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward};
pub use shape::{broadcastable, Shape};
pub use simd::supported as simd_supported;
pub use tensor::{Tensor, TensorError};
