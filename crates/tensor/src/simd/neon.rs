//! NEON f32 microkernels for `aarch64`, where NEON is baseline — so
//! these are plain safe functions and dispatch needs no runtime check.
//!
//! Same contract as the AVX2 kernels: each lane owns one output element,
//! accumulated in ascending `kk` with an exactly-rounded `mul` then
//! `add` (`vmulq`/`vaddq`, never `vfmaq` — fused multiply-add rounds
//! once where the scalar kernels round twice, breaking bitwise
//! identity), and no cross-lane reductions. The kernel shape is a
//! deliberately simple 1-row × 8-column stripe (two `float32x4`
//! accumulators); the packed-panel `a_bt` variant is AVX2-only for now
//! and `aarch64` uses the blocked scalar kernel instead (dispatched in
//! the parent module).

use core::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};

/// Columns per stripe: two 4-lane vectors.
const NR: usize = 8;

/// `out[m×n] = a[m×k] · b[k×n]`.
pub(crate) fn ab(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for r in 0..m {
        row(&mut out[r * n..(r + 1) * n], a, r * k, 1, b, k);
    }
}

/// Rows `i0..i0 + out.len()/n` of `aᵀ · b` (`a: [k×am]`, `b: [k×n]`).
pub(crate) fn at_b(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    k: usize,
    am: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * am);
    debug_assert_eq!(b.len(), k * n);
    let rows = if n == 0 { 0 } else { out.len() / n };
    for r in 0..rows {
        row(&mut out[r * n..(r + 1) * n], a, i0 + r, am, b, k);
    }
}

/// One output row: `orow[j] = Σ_kk a[abase + kk·aks] · b[kk·n + j]` with
/// `n = orow.len()`, vectorized 8 columns at a time plus a scalar tail.
fn row(orow: &mut [f32], a: &[f32], abase: usize, aks: usize, b: &[f32], k: usize) {
    let n = orow.len();
    debug_assert!(k * n <= b.len());
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        for kk in 0..k {
            let av = vdupq_n_f32(a[abase + kk * aks]);
            // SAFETY: `kk·n + j0 + 8 ≤ b.len()` by the loop bounds and
            // the debug-asserted `k·n ≤ b.len()`.
            let (b0, b1) = unsafe {
                let p = b.as_ptr().add(kk * n + j0);
                (vld1q_f32(p), vld1q_f32(p.add(4)))
            };
            acc0 = vaddq_f32(acc0, vmulq_f32(av, b0));
            acc1 = vaddq_f32(acc1, vmulq_f32(av, b1));
        }
        // SAFETY: `j0 + 8 ≤ orow.len()` by the loop bound.
        unsafe {
            let p = orow.as_mut_ptr().add(j0);
            vst1q_f32(p, acc0);
            vst1q_f32(p.add(4), acc1);
        }
        j0 += NR;
    }
    for j in j0..n {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc += a[abase + kk * aks] * b[kk * n + j];
        }
        orow[j] = acc;
    }
}

/// Elementwise `dst[i] += src[i]`, 4 lanes at a time.
pub(crate) fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let len = dst.len();
    let mut i = 0;
    while i + 4 <= len {
        // SAFETY: `i + 4 ≤ len` for both equal-length slices.
        unsafe {
            let dp = dst.as_mut_ptr().add(i);
            vst1q_f32(dp, vaddq_f32(vld1q_f32(dp), vld1q_f32(src.as_ptr().add(i))));
        }
        i += 4;
    }
    while i < len {
        dst[i] += src[i];
        i += 1;
    }
}
