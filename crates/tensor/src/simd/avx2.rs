//! AVX2 f32 GEMM microkernels.
//!
//! Structure: a broadcast kernel computes `R`-row × 16-column register
//! tiles — eight 8-lane accumulators live in `ymm` registers across the
//! whole `k` loop, each lane owning one output element. Per `kk` the
//! kernel loads two 8-lane slices of a `B` row, broadcasts one `A`
//! element per row, and issues `mul` then `add` per accumulator —
//! exactly the scalar kernels' per-element operation sequence in the
//! same ascending-`kk` order, so results are bitwise identical (see the
//! module docs in [`crate::simd`]). **No fused multiply-add** (`vfmadd`
//! rounds once where the scalar path rounds twice) and **no horizontal
//! adds** (cross-lane reduction would reorder the sum).
//!
//! Every public kernel here requires AVX2, enforced by the caller's
//! runtime `is_x86_feature_detected!` check — the `#[target_feature]`
//! attribute makes the calls `unsafe` from ordinary code.

use core::arch::x86_64::{
    _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_storeu_ps,
};

/// Rows per register tile (matches `gemm::MR`).
const MR: usize = 4;

/// Columns per register tile: two 8-lane vectors.
const NR: usize = 16;

/// One GEMM problem with a strided `A` view, shared by the `A·B` and
/// `Aᵀ·B` entry points: `A(r, kk) = a[base + r·ars + kk·aks]` and
/// `B(kk, j) = b[kk·bs + j]`; the output has `n` columns.
#[derive(Clone, Copy)]
struct Gemm<'x> {
    a: &'x [f32],
    base: usize,
    /// `A` row stride.
    ars: usize,
    /// `A` k stride.
    aks: usize,
    b: &'x [f32],
    /// `B` row stride (≥ the widest column tile touched).
    bs: usize,
    k: usize,
    /// Output row stride / logical column count.
    n: usize,
}

impl Gemm<'_> {
    #[inline]
    fn a_at(&self, r: usize, kk: usize) -> f32 {
        self.a[self.base + r * self.ars + kk * self.aks]
    }
}

/// `out[m×n] = a[m×k] · b[k×n]`.
///
/// # Safety
/// AVX2 must be available (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub(crate) fn ab(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let g = Gemm {
        a,
        base: 0,
        ars: k,
        aks: 1,
        b,
        bs: n,
        k,
        n,
    };
    drive(g, out, m);
}

/// Rows `i0..i0 + out.len()/n` of `aᵀ · b` (`a: [k×am]`, `b: [k×n]`).
///
/// # Safety
/// AVX2 must be available (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub(crate) fn at_b(out: &mut [f32], a: &[f32], b: &[f32], i0: usize, am: usize, n: usize) {
    let k = a.len().checked_div(am).unwrap_or(0);
    debug_assert_eq!(a.len(), k * am);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len() % n.max(1), 0);
    let g = Gemm {
        a,
        base: i0,
        ars: 1,
        aks: am,
        b,
        bs: n,
        k,
        n,
    };
    let rows = out.len().checked_div(n).unwrap_or(0);
    drive(g, out, rows);
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` via transposed 16-column `B` panels:
/// pack `panel[kk·16 + c] = b[(j0+c)·k + kk]` (pure data movement), then
/// run the same broadcast kernel over the panel. Ragged columns (< 16)
/// take plain ascending-`k` dot products.
///
/// # Safety
/// AVX2 must be available (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub(crate) fn a_bt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let mut panel = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 + NR <= n {
        for c in 0..NR {
            let src = &b[(j0 + c) * k..(j0 + c + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * NR + c] = v;
            }
        }
        let g = Gemm {
            a,
            base: 0,
            ars: k,
            aks: 1,
            b: &panel,
            bs: NR,
            k,
            n,
        };
        cols16(g, out, m, j0, 0);
        j0 += NR;
    }
    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        for j in j0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[r * n + j] = acc;
        }
    }
}

/// Elementwise `dst[i] += src[i]`, 8 lanes at a time.
///
/// # Safety
/// AVX2 must be available (`is_x86_feature_detected!("avx2")`).
#[target_feature(enable = "avx2")]
pub(crate) fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let len = dst.len();
    let mut i = 0;
    while i + 8 <= len {
        // SAFETY: `i + 8 <= len` for both equal-length slices.
        unsafe {
            let dp = dst.as_mut_ptr().add(i);
            let d = _mm256_loadu_ps(dp);
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dp, _mm256_add_ps(d, s));
        }
        i += 8;
    }
    while i < len {
        dst[i] += src[i];
        i += 1;
    }
}

/// Full column sweep for one strided GEMM: 16-wide tiles, then one
/// 8-wide step, then a scalar column tail — all per-element ascending-`k`.
#[target_feature(enable = "avx2")]
fn drive(g: Gemm, out: &mut [f32], m: usize) {
    let n = g.n;
    let mut j0 = 0;
    while j0 + NR <= n {
        cols16(g, out, m, j0, j0);
        j0 += NR;
    }
    if j0 + 8 <= n {
        cols8(g, out, m, j0, j0);
        j0 += 8;
    }
    if j0 < n {
        for r in 0..m {
            for j in j0..n {
                let mut acc = 0.0f32;
                for kk in 0..g.k {
                    acc += g.a_at(r, kk) * g.b[kk * g.bs + j];
                }
                out[r * n + j] = acc;
            }
        }
    }
}

/// All row blocks of one 16-column stripe (`j0_out` in the output,
/// `j0_b` in `B` — they differ only for packed panels).
#[target_feature(enable = "avx2")]
fn cols16(g: Gemm, out: &mut [f32], m: usize, j0_out: usize, j0_b: usize) {
    let mut r0 = 0;
    while r0 < m {
        match MR.min(m - r0) {
            4 => tile16::<4>(g, out, r0, j0_out, j0_b),
            3 => tile16::<3>(g, out, r0, j0_out, j0_b),
            2 => tile16::<2>(g, out, r0, j0_out, j0_b),
            _ => tile16::<1>(g, out, r0, j0_out, j0_b),
        }
        r0 += MR;
    }
}

/// All row blocks of one 8-column stripe.
#[target_feature(enable = "avx2")]
fn cols8(g: Gemm, out: &mut [f32], m: usize, j0_out: usize, j0_b: usize) {
    let mut r0 = 0;
    while r0 < m {
        match MR.min(m - r0) {
            4 => tile8::<4>(g, out, r0, j0_out, j0_b),
            3 => tile8::<3>(g, out, r0, j0_out, j0_b),
            2 => tile8::<2>(g, out, r0, j0_out, j0_b),
            _ => tile8::<1>(g, out, r0, j0_out, j0_b),
        }
        r0 += MR;
    }
}

/// One `R`-row × 16-column register tile. `2R` accumulators stay
/// register-resident across the whole `k` loop; each lane is one output
/// element accumulated in ascending `kk` with `mul` then `add`.
#[target_feature(enable = "avx2")]
fn tile16<const R: usize>(g: Gemm, out: &mut [f32], r0: usize, j0_out: usize, j0_b: usize) {
    debug_assert!(j0_b + NR <= g.bs && g.k * g.bs <= g.b.len());
    debug_assert!(j0_out + NR <= g.n && (r0 + R) * g.n <= out.len());
    let mut acc = [[_mm256_setzero_ps(); 2]; R];
    let bp = g.b.as_ptr();
    for kk in 0..g.k {
        // SAFETY: `kk·bs + j0_b + 16 ≤ b.len()` by the tile geometry
        // debug-asserted above.
        let (b0, b1) = unsafe {
            let p = bp.add(kk * g.bs + j0_b);
            (_mm256_loadu_ps(p), _mm256_loadu_ps(p.add(8)))
        };
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(g.a_at(r0 + r, kk));
            acc_r[0] = _mm256_add_ps(acc_r[0], _mm256_mul_ps(av, b0));
            acc_r[1] = _mm256_add_ps(acc_r[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        // SAFETY: rows `r0..r0+R` at columns `j0_out..j0_out+16` are in
        // bounds per the debug-asserted tile geometry.
        unsafe {
            let p = out.as_mut_ptr().add((r0 + r) * g.n + j0_out);
            _mm256_storeu_ps(p, acc_r[0]);
            _mm256_storeu_ps(p.add(8), acc_r[1]);
        }
    }
}

/// One `R`-row × 8-column register tile (the narrower column step).
#[target_feature(enable = "avx2")]
fn tile8<const R: usize>(g: Gemm, out: &mut [f32], r0: usize, j0_out: usize, j0_b: usize) {
    debug_assert!(j0_b + 8 <= g.bs && g.k * g.bs <= g.b.len());
    debug_assert!(j0_out + 8 <= g.n && (r0 + R) * g.n <= out.len());
    let mut acc = [_mm256_setzero_ps(); R];
    let bp = g.b.as_ptr();
    for kk in 0..g.k {
        // SAFETY: `kk·bs + j0_b + 8 ≤ b.len()` by the tile geometry
        // debug-asserted above.
        let bv = unsafe { _mm256_loadu_ps(bp.add(kk * g.bs + j0_b)) };
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(g.a_at(r0 + r, kk));
            *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(av, bv));
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        // SAFETY: rows `r0..r0+R` at columns `j0_out..j0_out+8` are in
        // bounds per the debug-asserted tile geometry.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add((r0 + r) * g.n + j0_out), *acc_r) };
    }
}
