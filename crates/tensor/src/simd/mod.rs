//! Explicitly vectorized `std::arch` microkernels with runtime feature
//! detection — the [`crate::backend::BackendKind::Simd`] implementation.
//!
//! Dispatch: `x86_64` checks AVX2 per call via
//! `is_x86_feature_detected!` (the check is a cached flag load, not a
//! `cpuid`), `aarch64` uses baseline NEON unconditionally, and any other
//! target — or an `x86_64` host without AVX2 — falls back to the blocked
//! scalar kernels in [`crate::gemm`]. The fallback makes
//! `SimdBackend` safe to construct everywhere; the global selection in
//! [`crate::backend`] additionally warns and prefers `pooled` when the
//! features are missing, so the per-call fallback is a correctness
//! backstop, not the expected path.
//!
//! # Why the vector kernels are bitwise-equal to the scalar ones
//!
//! Each SIMD lane owns one output element. A lane performs exactly the
//! scalar kernel's operation sequence — for each ascending `kk`, one
//! exactly-rounded `multiply` then one exactly-rounded `add` into that
//! element's single accumulator. The kernels never use fused
//! multiply-add (one rounding where the scalar path rounds twice) and
//! never reduce across lanes (which would reorder the sum). Lane width
//! therefore only changes how many output elements progress through `kk`
//! together — the per-element arithmetic, and hence every output bit, is
//! identical to the scalar reference.
//!
//! The `a_bt` kernel packs transposed `B` panels into a scratch buffer
//! before the same broadcast-kernel runs; packing is pure data movement
//! and cannot change any accumulation order.
//!
//! This module (plus its arch submodules) is the only sanctioned home
//! for `unsafe` vector intrinsics in the workspace — the `slm-lint`
//! `unsafe-containment` rule fails any `unsafe` outside
//! `crates/tensor/src/simd/` that lacks an explicit waiver.

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Whether this host has the vector features the explicit kernels need
/// (AVX2 on `x86_64`, baseline NEON on `aarch64`). Re-exported as
/// `sl_tensor::simd_supported` so callers and tests can predict the
/// `SLM_BACKEND=auto` choice.
pub fn supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// `out[m×n] = a[m×k] · b[k×n]`.
pub(crate) fn ab(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "aarch64")]
    {
        neon::ab(out, a, b, m, k, n)
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability verified at runtime just above.
            unsafe { avx2::ab(out, a, b, m, k, n) };
            return;
        }
        crate::gemm::serial_ab(out, a, b, m, k, n)
    }
}

/// Rows `i0..i0 + out.len()/n` of `aᵀ · b` (`a: [k×am]`, `b: [k×n]`).
pub(crate) fn at_b(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    k: usize,
    am: usize,
    n: usize,
) {
    #[cfg(target_arch = "aarch64")]
    {
        neon::at_b(out, a, b, i0, k, am, n)
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability verified at runtime just above.
            unsafe { avx2::at_b(out, a, b, i0, am, n) };
            return;
        }
        crate::gemm::serial_at_b(out, a, b, i0, k, am, n)
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ`.
pub(crate) fn a_bt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "aarch64")]
    {
        // The packed-panel variant is AVX2-only for now; the blocked
        // scalar kernel keeps NEON hosts correct (see DESIGN §13).
        crate::gemm::serial_a_bt(out, a, b, m, k, n)
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability verified at runtime just above.
            unsafe { avx2::a_bt(out, a, b, m, k, n) };
            return;
        }
        crate::gemm::serial_a_bt(out, a, b, m, k, n)
    }
}

/// Elementwise `dst[i] += src[i]`.
pub(crate) fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "aarch64")]
    {
        neon::add_assign(dst, src)
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability verified at runtime just above.
            unsafe { avx2::add_assign(dst, src) };
            return;
        }
        for (o, &v) in dst.iter_mut().zip(src) {
            *o += v;
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    //! AVX2-specific bitwise checks (the cross-backend equivalence tests
    //! in `crate::backend` cover the dispatched surface on every arch).

    use crate::gemm;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn avx2_kernels_bitwise_match_blocked_scalar_across_ragged_shapes() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        // Shapes chosen to hit every tile path: full 4×16 tiles, the
        // 8-wide column step, scalar column tails, ragged row tails and
        // empty inner dimensions.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 64),
            (8, 32, 16),
            (5, 3, 65),
            (7, 33, 17),
            (6, 9, 24),
            (3, 5, 8),
            (2, 7, 7),
            (64, 96, 96),
            (3, 0, 5),
            (13, 21, 31),
        ] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 23);
            let mut want = vec![0.0f32; m * n];
            gemm::serial_ab(&mut want, &a, &b, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            // SAFETY: AVX2 presence checked at the top of the test.
            unsafe { super::avx2::ab(&mut got, &a, &b, m, k, n) };
            assert_eq!(bits(&got), bits(&want), "ab {m}x{k}x{n}");

            let at = fill(k * m, 31);
            let mut want = vec![0.0f32; m * n];
            gemm::serial_at_b(&mut want, &at, &b, 0, k, m, n);
            let mut got = vec![f32::NAN; m * n];
            // SAFETY: AVX2 presence checked at the top of the test.
            unsafe { super::avx2::at_b(&mut got, &at, &b, 0, m, n) };
            assert_eq!(bits(&got), bits(&want), "at_b {m}x{k}x{n}");

            let bt = fill(n * k, 37);
            let mut want = vec![0.0f32; m * n];
            gemm::serial_a_bt(&mut want, &a, &bt, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            // SAFETY: AVX2 presence checked at the top of the test.
            unsafe { super::avx2::a_bt(&mut got, &a, &bt, m, k, n) };
            assert_eq!(bits(&got), bits(&want), "a_bt {m}x{k}x{n}");
        }
    }

    #[test]
    fn avx2_kernels_propagate_nan() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        let a = vec![0.0f32; 5];
        let mut b = vec![0.0f32; 5 * 20];
        b[3] = f32::NAN;
        let mut out = vec![0.0f32; 20];
        // SAFETY: AVX2 presence checked at the top of the test.
        unsafe { super::avx2::ab(&mut out, &a, &b, 1, 5, 20) };
        assert!(out[3].is_nan(), "0 × NaN must reach the accumulator");
    }
}
