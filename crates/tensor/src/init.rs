//! Random tensor initializers.
//!
//! Every initializer takes an explicit `&mut impl Rng`, so the whole
//! training stack is reproducible from a single seed — the same policy the
//! wireless-channel simulator follows.

use rand::Rng;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Standard-normal samples via the Box–Muller transform, scaled by
/// `std` around `mean`.
pub fn randn(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box–Muller produces two independent normals per uniform pair.
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(mean + std * (r * theta.cos()) as f32);
        if data.len() < n {
            data.push(mean + std * (r * theta.sin()) as f32);
        }
    }
    Tensor::from_parts(shape, data)
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform: empty range {lo}..{hi}");
    let shape = shape.into();
    let n = shape.numel();
    let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_parts(shape, data)
}

/// Xavier/Glorot uniform initialization: `U(±sqrt(6/(fan_in+fan_out)))`.
///
/// Suited to the tanh/sigmoid gates of the BS-side LSTM.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2/fan_in))`.
///
/// Suited to the ReLU convolutions of the UE-side CNN.
pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    randn(shape, 0.0, (2.0 / fan_in as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn([10_000], 1.0, 2.0, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {} off", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.1,
            "std {} off",
            t.variance().sqrt()
        );
        assert!(t.all_finite());
    }

    #[test]
    fn uniform_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = uniform([10_000], -0.5, 0.5, &mut rng);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = randn([64], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn([64], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = randn([64], 0.0, 1.0, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_limit_shrinks_with_fanin() {
        let mut rng = StdRng::seed_from_u64(9);
        let wide = xavier_uniform([1000], 10, 10, &mut rng);
        let narrow = xavier_uniform([1000], 1000, 1000, &mut rng);
        assert!(wide.max() > narrow.max());
        let limit = (6.0f32 / 2000.0).sqrt();
        assert!(narrow.max() <= limit && narrow.min() >= -limit);
    }

    #[test]
    fn he_std_tracks_fanin() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = he_normal([20_000], 50, &mut rng);
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((t.variance().sqrt() - expect).abs() < 0.02);
    }
}
