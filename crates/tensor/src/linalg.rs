//! Dense linear-algebra kernels: matrix multiplication variants and
//! vector products.
//!
//! The multiplication variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) exist because the
//! backward passes of dense and recurrent layers need transposed operands;
//! fusing the transpose into the kernel avoids materializing transposed
//! copies on every SGD step.

use crate::tensor::Tensor;

fn dims2(t: &Tensor, op: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{op}: tensor {} is not rank-2",
        t.shape()
    );
    (t.dims()[0], t.dims()[1])
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
/// Panics unless both tensors are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul");
    let (kb, n) = dims2(b, "matmul");
    assert_eq!(
        ka,
        kb,
        "matmul: inner dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    // i-k-j loop order keeps the inner loop contiguous over B and C rows.
    for i in 0..m {
        for k in 0..ka {
            let aik = ad[i * ka + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &b) in crow.iter_mut().zip(brow) {
                *c += aik * b;
            }
        }
    }
    Tensor::from_vec([m, n], out).expect("matmul output buffer sized by construction")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (yields `[m, n]`).
///
/// Equivalent to `matmul(&transpose(a), b)` without the copy.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2(a, "matmul_at_b");
    let (kb, n) = dims2(b, "matmul_at_b");
    assert_eq!(
        ka,
        kb,
        "matmul_at_b: leading dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &b) in crow.iter_mut().zip(brow) {
                *c += aki * b;
            }
        }
    }
    Tensor::from_vec([m, n], out).expect("matmul_at_b output buffer sized by construction")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (yields `[m, n]`).
///
/// Equivalent to `matmul(a, &transpose(b))` without the copy.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul_a_bt");
    let (n, kb) = dims2(b, "matmul_a_bt");
    assert_eq!(
        ka,
        kb,
        "matmul_a_bt: trailing dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bd[j * kb..(j + 1) * kb];
            out[i * n + j] = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
    Tensor::from_vec([m, n], out).expect("matmul_a_bt output buffer sized by construction")
}

/// Matrix-vector product `A · x` for `A: [m, n]`, `x: [n]` (yields `[m]`).
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "matvec");
    assert_eq!(
        x.numel(),
        n,
        "matvec: vector length {} does not match matrix {}",
        x.numel(),
        a.shape()
    );
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            ad[i * n..(i + 1) * n]
                .iter()
                .zip(xd)
                .map(|(&a, &b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_slice(&out)
}

/// Outer product `x ⊗ y` for `x: [m]`, `y: [n]` (yields `[m, n]`).
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    let m = x.numel();
    let n = y.numel();
    let mut out = Vec::with_capacity(m * n);
    for &xi in x.data() {
        for &yj in y.data() {
            out.push(xi * yj);
        }
    }
    Tensor::from_vec([m, n], out).expect("outer output buffer sized by construction")
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "transpose");
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec([n, m], out).expect("transpose output buffer sized by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: [usize; 2], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t([3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t([2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let i = t([2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_checks_dims() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 3]));
    }

    #[test]
    fn fused_transpose_variants_agree() {
        let a = t([3, 2], &[1.0, -2.0, 0.5, 4.0, -1.0, 3.0]);
        let b = t(
            [3, 4],
            &(0..12).map(|i| i as f32 * 0.3 - 1.0).collect::<Vec<_>>(),
        );
        assert_eq!(matmul_at_b(&a, &b), matmul(&transpose(&a), &b));

        let a2 = t([2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b2 = t([3, 2], &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul_a_bt(&a2, &b2), matmul(&a2, &transpose(&b2)));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let y = matvec(&a, &x);
        let y2 = matmul(&a, &x.reshape([3, 1]));
        assert_eq!(y.data(), y2.data());
    }

    #[test]
    fn outer_product() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a).at(&[2, 1]), 6.0);
    }
}
