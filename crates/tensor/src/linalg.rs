//! Dense linear-algebra kernels: matrix multiplication variants and
//! vector products.
//!
//! The multiplication variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) exist because the
//! backward passes of dense and recurrent layers need transposed operands;
//! fusing the transpose into the kernel avoids materializing transposed
//! copies on every SGD step.
//!
//! All three partition output rows over a [`ComputePool`] and run a
//! [`Backend`]'s serial microkernel per job: `matmul(a, b)` uses the
//! process-wide pool (`SLM_THREADS`) and backend (`SLM_BACKEND`), each
//! has a `*_in` variant taking an explicit pool, and a `*_with` variant
//! additionally taking an explicit backend (equivalence tests and
//! benches). Results are bitwise identical at every thread count *and*
//! across backends — see the determinism contracts in `crate::gemm` and
//! `crate::backend`.
//!
//! Deliberately absent: the old `if a == 0.0 { continue }` zero-skip
//! branches. They made sparse-ish inputs marginally cheaper but silently
//! swallowed NaN/Inf propagation (`0 × NaN` never reached the
//! accumulator), masking exactly the non-finite blowups the training
//! health watchdog exists to catch.

use crate::backend::{global_backend, Backend};
use crate::gemm;
use crate::pool::{ComputePool, KernelKind};
use crate::tensor::Tensor;

fn dims2(t: &Tensor, op: &str) -> (usize, usize) {
    assert_eq!(
        t.shape().rank(),
        2,
        "{op}: tensor {} is not rank-2",
        t.shape()
    );
    (t.dims()[0], t.dims()[1])
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`, computed on
/// the process-wide pool.
///
/// # Panics
/// Panics unless both tensors are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_in(ComputePool::global(), a, b)
}

/// [`matmul`] on an explicit pool and the process-wide backend.
pub fn matmul_in(pool: &ComputePool, a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with(pool, global_backend(), a, b)
}

/// [`matmul`] on an explicit pool and backend.
pub fn matmul_with(pool: &ComputePool, backend: &dyn Backend, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2(a, "matmul");
    let (kb, n) = dims2(b, "matmul");
    assert_eq!(
        ka,
        kb,
        "matmul: inner dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let timer = pool.start_kernel(KernelKind::Matmul);
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_ab(pool, backend, &mut out, a.data(), b.data(), ka, n);
    pool.record_kernel(timer);
    Tensor::from_parts([m, n], out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (yields `[m, n]`), computed
/// on the process-wide pool.
///
/// Equivalent to `matmul(&transpose(a), b)` without the copy.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_in(ComputePool::global(), a, b)
}

/// [`matmul_at_b`] on an explicit pool and the process-wide backend.
pub fn matmul_at_b_in(pool: &ComputePool, a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_with(pool, global_backend(), a, b)
}

/// [`matmul_at_b`] on an explicit pool and backend.
pub fn matmul_at_b_with(
    pool: &ComputePool,
    backend: &dyn Backend,
    a: &Tensor,
    b: &Tensor,
) -> Tensor {
    let (ka, m) = dims2(a, "matmul_at_b");
    let (kb, n) = dims2(b, "matmul_at_b");
    assert_eq!(
        ka,
        kb,
        "matmul_at_b: leading dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let timer = pool.start_kernel(KernelKind::MatmulAtB);
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_at_b(pool, backend, &mut out, a.data(), b.data(), m, n);
    pool.record_kernel(timer);
    Tensor::from_parts([m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (yields `[m, n]`), computed
/// on the process-wide pool.
///
/// Equivalent to `matmul(a, &transpose(b))` without the copy.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_in(ComputePool::global(), a, b)
}

/// [`matmul_a_bt`] on an explicit pool and the process-wide backend.
pub fn matmul_a_bt_in(pool: &ComputePool, a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_with(pool, global_backend(), a, b)
}

/// [`matmul_a_bt`] on an explicit pool and backend.
pub fn matmul_a_bt_with(
    pool: &ComputePool,
    backend: &dyn Backend,
    a: &Tensor,
    b: &Tensor,
) -> Tensor {
    let (m, ka) = dims2(a, "matmul_a_bt");
    let (n, kb) = dims2(b, "matmul_a_bt");
    assert_eq!(
        ka,
        kb,
        "matmul_a_bt: trailing dimensions differ ({} vs {})",
        a.shape(),
        b.shape()
    );
    let timer = pool.start_kernel(KernelKind::MatmulABt);
    let mut out = vec![0.0f32; m * n];
    gemm::gemm_a_bt(pool, backend, &mut out, a.data(), b.data(), ka, n);
    pool.record_kernel(timer);
    Tensor::from_parts([m, n], out)
}

/// Matrix-vector product `A · x` for `A: [m, n]`, `x: [n]` (yields `[m]`).
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "matvec");
    assert_eq!(
        x.numel(),
        n,
        "matvec: vector length {} does not match matrix {}",
        x.numel(),
        a.shape()
    );
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            ad[i * n..(i + 1) * n]
                .iter()
                .zip(xd)
                .map(|(&a, &b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_slice(&out)
}

/// Outer product `x ⊗ y` for `x: [m]`, `y: [n]` (yields `[m, n]`).
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    let m = x.numel();
    let n = y.numel();
    let mut out = Vec::with_capacity(m * n);
    for &xi in x.data() {
        for &yj in y.data() {
            out.push(xi * yj);
        }
    }
    Tensor::from_parts([m, n], out)
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "transpose");
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_parts([n, m], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: [usize; 2], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t([3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t([2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let i = t([2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_checks_dims() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 3]));
    }

    #[test]
    fn fused_transpose_variants_agree() {
        let a = t([3, 2], &[1.0, -2.0, 0.5, 4.0, -1.0, 3.0]);
        let b = t(
            [3, 4],
            &(0..12).map(|i| i as f32 * 0.3 - 1.0).collect::<Vec<_>>(),
        );
        assert_eq!(matmul_at_b(&a, &b), matmul(&transpose(&a), &b));

        let a2 = t([2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b2 = t([3, 2], &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(matmul_a_bt(&a2, &b2), matmul(&a2, &transpose(&b2)));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let y = matvec(&a, &x);
        let y2 = matmul(&a, &x.reshape([3, 1]));
        assert_eq!(y.data(), y2.data());
    }

    #[test]
    fn outer_product() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = t([2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(transpose(&transpose(&a)), a);
        assert_eq!(transpose(&a).at(&[2, 1]), 6.0);
    }

    #[test]
    fn nan_propagates_despite_zero_operands() {
        // Regression test for the removed zero-skip branches: a NaN
        // multiplied by an exactly-zero operand must still poison the
        // output, in every multiplication variant.
        let z = t([2, 2], &[0.0, 0.0, 0.0, 0.0]);
        let nan = t([2, 2], &[f32::NAN, 1.0, 1.0, 1.0]);
        assert!(matmul(&z, &nan).data()[0].is_nan());
        assert!(matmul(&nan, &z).data()[0].is_nan());
        assert!(matmul_at_b(&z, &nan).data()[0].is_nan());
        assert!(matmul_at_b(&nan, &z).data()[0].is_nan());
        assert!(matmul_a_bt(&z, &nan).data()[0].is_nan());
        assert!(matmul_a_bt(&nan, &z).data()[0].is_nan());
    }

    #[test]
    fn explicit_pools_agree_with_global() {
        let a = t(
            [5, 7],
            &(0..35).map(|i| (i as f32).sin()).collect::<Vec<_>>(),
        );
        let b = t(
            [7, 9],
            &(0..63).map(|i| (i as f32).cos()).collect::<Vec<_>>(),
        );
        let serial = ComputePool::new(1);
        let four = ComputePool::new(4);
        let want = matmul_in(&serial, &a, &b);
        assert_eq!(matmul(&a, &b), want);
        assert_eq!(matmul_in(&four, &a, &b), want);
    }

    #[test]
    fn explicit_backends_agree_with_global() {
        use crate::backend::{backend_for, BackendKind};
        let data =
            |len: usize, f: fn(f32) -> f32| (0..len).map(|i| f(i as f32)).collect::<Vec<_>>();
        let a = t([6, 11], &data(66, f32::sin));
        let b = t([11, 17], &data(187, f32::cos));
        let at = t([11, 6], &data(66, f32::cos)); // [k, m] operand for at_b
        let bt = t([17, 11], &data(187, f32::sin)); // [n, k] operand for a_bt
        let serial = ComputePool::new(1);
        let want = matmul(&a, &b);
        let want_atb = matmul_at_b(&at, &b);
        let want_abt = matmul_a_bt(&a, &bt);
        for kind in BackendKind::ALL {
            let be = backend_for(kind);
            assert_eq!(matmul_with(&serial, be, &a, &b), want, "{kind:?}");
            assert_eq!(matmul_at_b_with(&serial, be, &at, &b), want_atb, "{kind:?}");
            assert_eq!(matmul_a_bt_with(&serial, be, &a, &bt), want_abt, "{kind:?}");
        }
    }
}
