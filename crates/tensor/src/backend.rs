//! Runtime-selectable compute backends: the serial-microkernel seam
//! beneath the pooled GEMM / convolution entry points.
//!
//! A [`Backend`] supplies the *serial* microkernels that one pool job
//! executes on its disjoint output chunk; the [`crate::pool::ComputePool`]
//! partitioning above it is backend-independent. Three implementations
//! exist:
//!
//! * [`BackendKind::Scalar`] — textbook loops, one accumulator per
//!   output element in ascending-`k` order. The auditable reference.
//! * [`BackendKind::Pooled`] — the cache-blocked register-tiled kernels
//!   in [`crate::gemm`] (the previous default path).
//! * [`BackendKind::Simd`] — explicitly vectorized `std::arch` kernels
//!   (AVX2 on `x86_64` behind runtime feature detection, NEON on
//!   `aarch64`), falling back to the blocked kernels per call when the
//!   host lacks the features.
//!
//! # Determinism across backends
//!
//! Every backend computes each output element with **one** accumulator
//! whose `k` products are added in ascending-`k` order, and each
//! `multiply` / `add` is an exactly-rounded IEEE-754 operation (the SIMD
//! kernels never use fused multiply-add). Vector lane width therefore
//! changes *which output elements are resident together*, never any
//! element's accumulation order — results are bitwise identical across
//! `{scalar, pooled, simd}` at every thread count.
//!
//! # Selection
//!
//! The process-wide backend ([`global_backend`]) is chosen once from the
//! `SLM_BACKEND` environment knob: `auto` (default) picks `simd` when
//! the host supports it and `pooled` otherwise; explicit `scalar` /
//! `pooled` / `simd` force a backend. Requesting `simd` on an
//! unsupported host, or an unrecognized value, warns through
//! `sl_telemetry` and falls back instead of failing — mirroring the
//! `SLM_THREADS` parsing contract.

use std::sync::OnceLock;

use sl_telemetry::Telemetry;

use crate::gemm;
use crate::simd;

/// The selectable backend implementations, in fallback order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Naive reference loops.
    Scalar,
    /// Cache-blocked register-tiled scalar kernels ([`crate::gemm`]).
    Pooled,
    /// Explicit `std::arch` vector kernels with per-call fallback.
    Simd,
}

impl BackendKind {
    /// All backends, in [`BackendKind::index`] order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Scalar, BackendKind::Pooled, BackendKind::Simd];

    /// The knob value spelling (`SLM_BACKEND=<name>`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Pooled => "pooled",
            BackendKind::Simd => "simd",
        }
    }

    /// Stable numeric id, published as the `tensor.backend` gauge.
    pub fn index(self) -> usize {
        match self {
            BackendKind::Scalar => 0,
            BackendKind::Pooled => 1,
            BackendKind::Simd => 2,
        }
    }
}

/// Serial microkernels executed by one pool job on its disjoint output
/// chunk. Implementations must preserve the determinism contract in the
/// module docs: one accumulator per output element, ascending-`k`
/// mul-then-add order.
pub trait Backend: Sync {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// `out[m×n] = a[m×k] · b[k×n]`.
    fn ab(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize);

    /// Rows `i0..i0 + out.len()/n` of `aᵀ · b` for `a: [k×am]`,
    /// `b: [k×n]` (with `k = a.len() / am`).
    fn at_b(&self, out: &mut [f32], a: &[f32], b: &[f32], i0: usize, am: usize, n: usize);

    /// `out[m×n] = a[m×k] · b[n×k]ᵀ`.
    fn a_bt(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize);

    /// Elementwise `dst[i] += src[i]` (used for ascending-order partial
    /// reductions; per-element a single exactly-rounded add, so the
    /// result never depends on lane width).
    fn add_assign(&self, dst: &mut [f32], src: &[f32]);
}

/// `a.len() / am` guarded against the degenerate `am == 0` (which only
/// occurs alongside an empty `out`).
fn derived_k(a: &[f32], am: usize) -> usize {
    a.len().checked_div(am).unwrap_or(0)
}

fn scalar_add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (o, &v) in dst.iter_mut().zip(src) {
        *o += v;
    }
}

/// Textbook reference loops: the accumulation order every other backend
/// must reproduce bit for bit.
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn ab(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn at_b(&self, out: &mut [f32], a: &[f32], b: &[f32], i0: usize, am: usize, n: usize) {
        if n == 0 {
            return;
        }
        let k = derived_k(a, am);
        let rows = out.len() / n;
        for r in 0..rows {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[kk * am + i0 + r] * b[kk * n + j];
                }
                out[r * n + j] = acc;
            }
        }
    }

    fn a_bt(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(out.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                out[i * n + j] = acc;
            }
        }
    }

    fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        scalar_add_assign(dst, src);
    }
}

/// The cache-blocked register-tiled kernels from [`crate::gemm`].
pub struct PooledBackend;

impl Backend for PooledBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Pooled
    }

    fn ab(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        gemm::serial_ab(out, a, b, m, k, n);
    }

    fn at_b(&self, out: &mut [f32], a: &[f32], b: &[f32], i0: usize, am: usize, n: usize) {
        if n == 0 {
            return;
        }
        gemm::serial_at_b(out, a, b, i0, derived_k(a, am), am, n);
    }

    fn a_bt(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        gemm::serial_a_bt(out, a, b, m, k, n);
    }

    fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        scalar_add_assign(dst, src);
    }
}

/// Explicit `std::arch` vector kernels (see [`crate::simd`]). Safe to
/// construct on any host: each call re-checks the feature and falls back
/// to the blocked kernels when unsupported.
pub struct SimdBackend;

impl Backend for SimdBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simd
    }

    fn ab(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        simd::ab(out, a, b, m, k, n);
    }

    fn at_b(&self, out: &mut [f32], a: &[f32], b: &[f32], i0: usize, am: usize, n: usize) {
        if n == 0 {
            return;
        }
        simd::at_b(out, a, b, i0, derived_k(a, am), am, n);
    }

    fn a_bt(&self, out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        simd::a_bt(out, a, b, m, k, n);
    }

    fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        simd::add_assign(dst, src);
    }
}

/// The static instance behind each [`BackendKind`].
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Scalar => &ScalarBackend,
        BackendKind::Pooled => &PooledBackend,
        BackendKind::Simd => &SimdBackend,
    }
}

/// Resolves a raw `SLM_BACKEND` value against host SIMD support.
///
/// Pure so the fallback policy is unit-testable without touching the
/// process environment: returns the chosen backend plus an optional
/// warning to emit. `None` / `auto` pick `simd` when `simd_supported`
/// and `pooled` otherwise; `simd` on an unsupported host falls back to
/// `pooled` with a warning; unrecognized values warn and use the
/// auto-detected choice.
pub fn resolve_backend(raw: Option<&str>, simd_supported: bool) -> (BackendKind, Option<String>) {
    let auto = if simd_supported {
        BackendKind::Simd
    } else {
        BackendKind::Pooled
    };
    let Some(raw) = raw else {
        return (auto, None);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => (auto, None),
        "scalar" => (BackendKind::Scalar, None),
        "pooled" => (BackendKind::Pooled, None),
        "simd" | "simd-pooled" => {
            if simd_supported {
                (BackendKind::Simd, None)
            } else {
                (
                    BackendKind::Pooled,
                    Some(format!(
                        "SLM_BACKEND={raw} requested but this host lacks the required \
                         vector features (AVX2/NEON); falling back to pooled"
                    )),
                )
            }
        }
        _ => (
            auto,
            Some(format!(
                "unusable SLM_BACKEND value {raw:?} (expected auto | scalar | pooled | simd); \
                 using {} (auto-detected)",
                auto.name()
            )),
        ),
    }
}

/// The process-wide backend choice, resolved once from `SLM_BACKEND`
/// (mirroring [`crate::pool::ComputePool::global`] for `SLM_THREADS`).
pub fn global_backend_kind() -> BackendKind {
    static KIND: OnceLock<BackendKind> = OnceLock::new();
    *KIND.get_or_init(|| {
        let raw = std::env::var("SLM_BACKEND").ok();
        let (kind, warning) = resolve_backend(raw.as_deref(), simd::supported());
        if let Some(msg) = warning {
            Telemetry::disabled().warn(&msg);
        }
        kind
    })
}

/// The process-wide backend instance (see [`global_backend_kind`]).
pub fn global_backend() -> &'static dyn Backend {
    backend_for(global_backend_kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn all_backends_agree_bitwise_on_every_kernel() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 64),
            (5, 3, 65),
            (7, 33, 17),
            (64, 96, 96), // the GRU-gate bench shape
            (3, 0, 5),
        ] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 23);
            let at = fill(k * m, 31); // for at_b: A is k×m
            let bt = fill(n * k, 37); // for a_bt: B is n×k
            let scalar = backend_for(BackendKind::Scalar);
            let mut want_ab = vec![0.0f32; m * n];
            scalar.ab(&mut want_ab, &a, &b, m, k, n);
            let mut want_atb = vec![0.0f32; m * n];
            scalar.at_b(&mut want_atb, &at, &b, 0, m, n);
            let mut want_abt = vec![0.0f32; m * n];
            scalar.a_bt(&mut want_abt, &a, &bt, m, k, n);
            for kind in [BackendKind::Pooled, BackendKind::Simd] {
                let be = backend_for(kind);
                assert_eq!(be.kind(), kind);
                let mut out = vec![f32::NAN; m * n];
                be.ab(&mut out, &a, &b, m, k, n);
                assert_eq!(bits(&out), bits(&want_ab), "{kind:?} ab {m}x{k}x{n}");
                let mut out = vec![f32::NAN; m * n];
                be.at_b(&mut out, &at, &b, 0, m, n);
                assert_eq!(bits(&out), bits(&want_atb), "{kind:?} at_b {m}x{k}x{n}");
                let mut out = vec![f32::NAN; m * n];
                be.a_bt(&mut out, &a, &bt, m, k, n);
                assert_eq!(bits(&out), bits(&want_abt), "{kind:?} a_bt {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn at_b_row_offsets_agree_across_backends() {
        // A chunked at_b call (i0 > 0, out covering a row range) must
        // match the corresponding rows of the full product, bitwise.
        let (k, am, n) = (19usize, 23usize, 41usize);
        let a = fill(k * am, 3);
        let b = fill(k * n, 5);
        let scalar = backend_for(BackendKind::Scalar);
        let mut full = vec![0.0f32; am * n];
        scalar.at_b(&mut full, &a, &b, 0, am, n);
        for kind in BackendKind::ALL {
            let be = backend_for(kind);
            let (i0, rows) = (7usize, 9usize);
            let mut out = vec![f32::NAN; rows * n];
            be.at_b(&mut out, &a, &b, i0, am, n);
            assert_eq!(bits(&out), bits(&full[i0 * n..(i0 + rows) * n]), "{kind:?}");
        }
    }

    #[test]
    fn add_assign_agrees_across_backends() {
        for len in [0usize, 1, 7, 8, 9, 64, 129] {
            let src = fill(len, 17);
            let base = fill(len, 29);
            let mut want = base.clone();
            scalar_add_assign(&mut want, &src);
            for kind in BackendKind::ALL {
                let mut dst = base.clone();
                backend_for(kind).add_assign(&mut dst, &src);
                assert_eq!(bits(&dst), bits(&want), "{kind:?} len={len}");
            }
        }
    }

    #[test]
    fn resolve_prefers_simd_when_supported() {
        assert_eq!(resolve_backend(None, true), (BackendKind::Simd, None));
        assert_eq!(resolve_backend(None, false), (BackendKind::Pooled, None));
        assert_eq!(
            resolve_backend(Some("auto"), true),
            (BackendKind::Simd, None)
        );
        assert_eq!(
            resolve_backend(Some("scalar"), true),
            (BackendKind::Scalar, None)
        );
        assert_eq!(
            resolve_backend(Some("Pooled"), true),
            (BackendKind::Pooled, None)
        );
        assert_eq!(
            resolve_backend(Some(" simd "), true),
            (BackendKind::Simd, None)
        );
        assert_eq!(
            resolve_backend(Some("simd-pooled"), true),
            (BackendKind::Simd, None)
        );
    }

    #[test]
    fn forcing_simd_without_support_warns_and_falls_back_to_pooled() {
        let (kind, warning) = resolve_backend(Some("simd"), false);
        assert_eq!(kind, BackendKind::Pooled);
        let msg = warning.expect("unsupported simd request must warn");
        assert!(msg.contains("SLM_BACKEND=simd"), "{msg}");
        assert!(msg.contains("falling back to pooled"), "{msg}");
    }

    #[test]
    fn garbage_value_warns_and_uses_auto_detection() {
        for simd_ok in [true, false] {
            let auto = if simd_ok {
                BackendKind::Simd
            } else {
                BackendKind::Pooled
            };
            let (kind, warning) = resolve_backend(Some("garbage"), simd_ok);
            assert_eq!(kind, auto);
            let msg = warning.expect("unknown value must warn");
            assert!(msg.contains("\"garbage\""), "{msg}");
            assert!(msg.contains(auto.name()), "{msg}");
        }
    }

    #[test]
    fn names_and_indices_are_stable() {
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(backend_for(kind).kind(), kind);
        }
        assert_eq!(BackendKind::Simd.name(), "simd");
    }
}
