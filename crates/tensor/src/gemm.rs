//! Cache-blocked GEMM kernels with a register-blocked microkernel — the
//! compute core behind [`crate::matmul`] and the im2col convolution.
//!
//! # Determinism contract
//!
//! Every output element is produced by **one** accumulator summing its
//! `k` products in ascending-`k` order. The blocking constants below
//! change which elements are *resident* together (cache behavior), and
//! the pool changes *who* computes a row range — neither changes any
//! element's accumulation order. Consequently the result is bitwise
//! identical for every thread count and for every (ragged or full) tile
//! shape, and `assert_eq!` on tensors is meaningful across machines with
//! the same FP semantics.
//!
//! # Blocking
//!
//! * [`MR`]×[`NB`] register/L1 tile: `MR` output rows share each loaded
//!   `B` row; `NB` columns of partial sums stay in registers/L1 across
//!   the whole `k` loop and are written to `C` exactly once.
//! * [`ROWS_PER_JOB`] rows per pool job: the parallel granule. The job
//!   count derives from the output row count only, so the partitioning
//!   is thread-count independent (see `crate::pool`).

use crate::backend::Backend;
use crate::pool::ComputePool;

/// Output rows processed together by the microkernel (the register
/// block height).
pub(crate) const MR: usize = 4;

/// Output columns accumulated in the on-stack tile (the register block
/// width; `MR × NB` f32 = 1 KiB, comfortably L1-resident).
pub(crate) const NB: usize = 64;

/// Independent accumulator lanes of the `A · Bᵀ` dot-product kernel.
pub(crate) const JB: usize = 8;

/// Output rows per pool job. Small enough to load-balance the paper's
/// batch-of-64 activations over several workers, large enough that one
/// job amortizes dispatch.
pub(crate) const ROWS_PER_JOB: usize = 16;

/// `out[m×n] = a[m×k] · b[k×n]`, rows partitioned over the pool, each
/// job running `backend`'s serial microkernel on its disjoint chunk.
pub(crate) fn gemm_ab(
    pool: &ComputePool,
    backend: &dyn Backend,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len() % n.max(1), 0);
    if n == 0 {
        return;
    }
    pool.run_chunks(out, ROWS_PER_JOB * n, |job, chunk| {
        let i0 = job * ROWS_PER_JOB;
        let rows = chunk.len() / n;
        backend.ab(chunk, &a[i0 * k..(i0 + rows) * k], b, rows, k, n);
    });
}

/// `out[m×n] = aᵀ · b` for `a: [k×am]`, `b: [k×n]`, taking `out` rows
/// `0..m` from `a` columns `0..m` (`m == am` for the public entry),
/// partitioned over the pool. `k` is implied by `a.len() / am`.
pub(crate) fn gemm_at_b(
    pool: &ComputePool,
    backend: &dyn Backend,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    am: usize,
    n: usize,
) {
    debug_assert_eq!(a.len() % am.max(1), 0);
    debug_assert_eq!(b.len() * am, a.len() * n);
    if n == 0 {
        return;
    }
    pool.run_chunks(out, ROWS_PER_JOB * n, |job, chunk| {
        backend.at_b(chunk, a, b, job * ROWS_PER_JOB, am, n);
    });
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ`, rows partitioned over the pool.
pub(crate) fn gemm_a_bt(
    pool: &ComputePool,
    backend: &dyn Backend,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    pool.run_chunks(out, ROWS_PER_JOB * n, |job, chunk| {
        let i0 = job * ROWS_PER_JOB;
        let rows = chunk.len() / n;
        backend.a_bt(chunk, &a[i0 * k..(i0 + rows) * k], b, rows, k, n);
    });
}

/// Serial `out[m×n] = a[m×k] · b[k×n]` via the register-blocked
/// microkernel. Also the per-image GEMM of the im2col convolution.
pub(crate) fn serial_ab(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i0 = 0;
    while i0 < m {
        let rr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let cc = NB.min(n - j0);
            if rr == MR {
                // Fast path: fixed row count lets the compiler keep the
                // four accumulator rows register/L1 resident.
                let mut acc = [[0.0f32; NB]; MR];
                for kk in 0..k {
                    let brow = &b[kk * n + j0..kk * n + j0 + cc];
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let a_rk = a[(i0 + r) * k + kk];
                        for (c, &bv) in brow.iter().enumerate() {
                            acc_r[c] += a_rk * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + cc];
                    orow.copy_from_slice(&acc_r[..cc]);
                }
            } else {
                // Ragged row tail: same ascending-k accumulation, so the
                // values match the fast path bit for bit.
                let mut acc = [[0.0f32; NB]; MR];
                for kk in 0..k {
                    let brow = &b[kk * n + j0..kk * n + j0 + cc];
                    for (r, acc_r) in acc.iter_mut().enumerate().take(rr) {
                        let a_rk = a[(i0 + r) * k + kk];
                        for (c, &bv) in brow.iter().enumerate() {
                            acc_r[c] += a_rk * bv;
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(rr) {
                    let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + cc];
                    orow.copy_from_slice(&acc_r[..cc]);
                }
            }
            j0 += NB;
        }
        i0 += MR;
    }
}

/// Serial rows `i0..i0 + out.len()/n` of `aᵀ · b` (`a: [k×am]`,
/// `b: [k×n]`) into `out`.
pub(crate) fn serial_at_b(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    k: usize,
    am: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * am);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len() % n, 0);
    let rows = out.len() / n;
    let mut r0 = 0;
    while r0 < rows {
        let rr = MR.min(rows - r0);
        let mut j0 = 0;
        while j0 < n {
            let cc = NB.min(n - j0);
            let mut acc = [[0.0f32; NB]; MR];
            for kk in 0..k {
                let arow = &a[kk * am..(kk + 1) * am];
                let brow = &b[kk * n + j0..kk * n + j0 + cc];
                for (r, acc_r) in acc.iter_mut().enumerate().take(rr) {
                    let a_rk = arow[i0 + r0 + r];
                    for (c, &bv) in brow.iter().enumerate() {
                        acc_r[c] += a_rk * bv;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate().take(rr) {
                let orow = &mut out[(r0 + r) * n + j0..(r0 + r) * n + j0 + cc];
                orow.copy_from_slice(&acc_r[..cc]);
            }
            j0 += NB;
        }
        r0 += MR;
    }
}

/// Serial `out[m×n] = a[m×k] · b[n×k]ᵀ` — row-by-row dot products with
/// [`JB`] independent accumulator lanes (one per `b` row), each summing
/// in ascending `k`.
pub(crate) fn serial_a_bt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jj = JB.min(n - j0);
            let mut acc = [0.0f32; JB];
            for (kk, &av) in arow.iter().enumerate() {
                for (c, acc_c) in acc.iter_mut().enumerate().take(jj) {
                    *acc_c += av * b[(j0 + c) * k + kk];
                }
            }
            orow[j0..j0 + jj].copy_from_slice(&acc[..jj]);
            j0 += JB;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook reference: one accumulator per element, ascending k —
    /// the order the production kernels promise to reproduce exactly.
    fn naive_ab(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.max(1);
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn serial_ab_bitwise_matches_naive_across_ragged_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 64), // exact tiles
            (5, 3, 65),  // ragged rows and columns
            (7, 33, 17),
            (64, 16, 96), // GRU gate shape
            (3, 0, 5),    // empty inner dim
        ] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 23);
            let mut out = vec![f32::NAN; m * n];
            serial_ab(&mut out, &a, &b, m, k, n);
            let want = naive_ab(&a, &b, m, k, n);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn transposed_variants_match_naive() {
        let (m, k, n) = (9usize, 21usize, 13usize);
        let a = fill(k * m, 5); // for at_b: A is k×m
        let b = fill(k * n, 7);
        let mut out = vec![0.0f32; m * n];
        serial_at_b(&mut out, &a, &b, 0, k, m, n);
        // Transpose A and compare against the reference.
        let mut at = vec![0.0f32; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        assert_eq!(out, naive_ab(&at, &b, m, k, n));

        let a2 = fill(m * k, 3);
        let b2 = fill(n * k, 9); // for a_bt: B is n×k
        let mut out2 = vec![0.0f32; m * n];
        serial_a_bt(&mut out2, &a2, &b2, m, k, n);
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b2[j * k + kk];
            }
        }
        assert_eq!(out2, naive_ab(&a2, &bt, m, k, n));
    }

    #[test]
    fn pooled_gemm_bitwise_equals_serial() {
        use crate::backend::{backend_for, BackendKind};
        let (m, k, n) = (67usize, 19usize, 31usize);
        let a = fill(m * k, 41);
        let b = fill(k * n, 43);
        let mut serial = vec![0.0f32; m * n];
        serial_ab(&mut serial, &a, &b, m, k, n);
        for threads in [1usize, 2, 3, 8] {
            let pool = ComputePool::new(threads);
            for kind in BackendKind::ALL {
                let mut out = vec![f32::NAN; m * n];
                gemm_ab(&pool, backend_for(kind), &mut out, &a, &b, k, n);
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "threads={threads} backend={kind:?}"
                );
            }
        }
    }

    #[test]
    fn nan_propagates_through_the_kernels() {
        // The old kernels' zero-skip branch swallowed 0 × NaN; the tiled
        // kernels must propagate it (the health watchdog depends on
        // seeing non-finite values).
        let a = vec![0.0f32, 1.0];
        let b = vec![f32::NAN, 0.0];
        let mut out = vec![0.0f32; 1];
        serial_ab(&mut out, &a, &b, 1, 2, 1);
        assert!(out[0].is_nan(), "0 × NaN must reach the accumulator");
    }
}
