//! The std-only compute worker pool behind the tensor kernels.
//!
//! [`ComputePool`] owns `threads − 1` long-lived worker threads (the
//! caller is the remaining participant) and dispatches *index jobs* to
//! them over per-worker channels. Kernels partition their work into
//! **disjoint output ranges** whose count depends only on the problem
//! size — never on the thread count — and every output element is
//! accumulated in a fixed order, so results are bitwise identical to the
//! serial reference at every thread count. Parallelism changes *who*
//! computes a chunk, never *what* is computed.
//!
//! The process-wide pool ([`ComputePool::global`]) sizes itself from the
//! `SLM_THREADS` environment variable (default: available parallelism,
//! clamped to [`MAX_THREADS`]); `SLM_THREADS=1` takes the serial path
//! with no worker threads at all. Unparseable or out-of-range values
//! warn through `sl_telemetry` instead of silently falling back.
//!
//! Observability: the pool counts dispatched jobs and accumulated
//! load-imbalance idle time, and each public kernel records its host
//! time per kernel family; [`ComputePool::publish_metrics`] pushes all
//! of it into a [`Telemetry`] handle as `tensor.pool.*` /
//! `tensor.kernel.*` gauges.
//!
//! This module is the one place in the numeric crates where OS threads
//! and wall clocks are allowed; the `no-nondeterminism` lint flags both
//! elsewhere (the inline waivers below carry the justification).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

use sl_telemetry::Telemetry;

/// Upper clamp for the worker count — beyond this, per-call dispatch
/// overhead dwarfs any speedup at the paper's tensor sizes.
pub const MAX_THREADS: usize = 64;

/// Lifetime-erased pointer to the per-call job body. Only dereferenced
/// by participants holding a claimed job index `< n_jobs`, and every
/// such job completes before [`ComputePool::run`] returns, so the
/// pointee outlives all dereferences.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from several workers are
// fine) and the pointer itself is only a capability to reach it; see the
// lifetime argument on [`TaskPtr`].
// slm-lint: allow(unsafe-containment) pool task-pointer plumbing, justified by the SAFETY note above
unsafe impl Send for TaskPtr {}
// slm-lint: allow(unsafe-containment) pool task-pointer plumbing, justified by the SAFETY note above
unsafe impl Sync for TaskPtr {}

/// Shared state of one `run` call: the job body, an atomic job cursor,
/// a completion latch and the per-call imbalance accounting.
struct CallShared {
    task: TaskPtr,
    n_jobs: usize,
    /// Next unclaimed job index (may run past `n_jobs`; claims beyond it
    /// are no-ops).
    next: AtomicUsize,
    /// Jobs not yet finished; the participant that takes it to zero
    /// latches `done`.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Call start, the common time base of the imbalance metric.
    start: Instant,
    /// Sum over participants of nanoseconds-from-start at claim-loop exit.
    exit_sum_nanos: AtomicU64,
    /// Max over participants of nanoseconds-from-start at claim-loop exit.
    exit_max_nanos: AtomicU64,
    /// Participants that executed at least one job.
    participants: AtomicU64,
}

impl CallShared {
    /// Claims and runs jobs until the cursor is exhausted; returns
    /// whether this participant ran any job.
    fn work(&self) -> bool {
        // SAFETY: see [`TaskPtr`] — `run` keeps the body alive until
        // `remaining` hits zero, and a claim `< n_jobs` precedes every
        // dereference.
        // slm-lint: allow(unsafe-containment) scoped deref under the TaskPtr lifetime contract
        let task = unsafe { &*self.task.0 };
        let mut ran = false;
        loop {
            let job = self.next.fetch_add(1, Ordering::Relaxed);
            if job >= self.n_jobs {
                break;
            }
            ran = true;
            task(job);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // slm-lint: allow(no-unwrap) latch mutex is never poisoned: no panic can occur while it is held
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
        if ran {
            let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.exit_sum_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.exit_max_nanos.fetch_max(nanos, Ordering::Relaxed);
            self.participants.fetch_add(1, Ordering::Relaxed);
        }
        ran
    }

    /// Blocks until every job has finished.
    fn wait(&self) {
        // slm-lint: allow(no-unwrap) latch mutex is never poisoned: no panic can occur while it is held
        let mut done = self.done.lock().unwrap();
        while !*done {
            // slm-lint: allow(no-unwrap) condvar wait only fails on a poisoned mutex, excluded above
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Raw pointer to a mutable `f32` buffer, capturable by a `Sync` job
/// body. Safe because [`ComputePool::run_chunks`] hands each job a
/// *disjoint* sub-slice.
struct BufPtr(*mut f32);

impl BufPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

// SAFETY: jobs address disjoint ranges of the buffer (enforced by the
// chunk arithmetic in `run_chunks`), so shared access never aliases.
// slm-lint: allow(unsafe-containment) disjoint-chunk buffer sharing, justified by the SAFETY note above
unsafe impl Send for BufPtr {}
// slm-lint: allow(unsafe-containment) disjoint-chunk buffer sharing, justified by the SAFETY note above
unsafe impl Sync for BufPtr {}

/// Per-kernel-family host-time accounting (atomics so kernels can record
/// through the shared global pool).
#[derive(Default)]
struct KernelStat {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// The kernel families the backend times individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `C = A · B`.
    Matmul,
    /// `C = Aᵀ · B`.
    MatmulAtB,
    /// `C = A · Bᵀ`.
    MatmulABt,
    /// im2col + GEMM convolution forward.
    Conv2dFwd,
    /// Convolution backward (all three gradients).
    Conv2dBwd,
}

impl KernelKind {
    const ALL: [KernelKind; 5] = [
        KernelKind::Matmul,
        KernelKind::MatmulAtB,
        KernelKind::MatmulABt,
        KernelKind::Conv2dFwd,
        KernelKind::Conv2dBwd,
    ];

    fn name(self) -> &'static str {
        match self {
            KernelKind::Matmul => "matmul",
            KernelKind::MatmulAtB => "matmul_at_b",
            KernelKind::MatmulABt => "matmul_a_bt",
            KernelKind::Conv2dFwd => "conv2d_fwd",
            KernelKind::Conv2dBwd => "conv2d_bwd",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelKind::Matmul => 0,
            KernelKind::MatmulAtB => 1,
            KernelKind::MatmulABt => 2,
            KernelKind::Conv2dFwd => 3,
            KernelKind::Conv2dBwd => 4,
        }
    }
}

/// A started per-kernel timer; finish it with [`ComputePool::record_kernel`].
pub struct KernelTimer {
    kind: KernelKind,
    start: Instant,
}

/// A reusable worker pool with deterministic job partitioning.
///
/// See the module docs for the determinism contract. Construct explicit
/// pools ([`ComputePool::new`]) in tests/benches; production code goes
/// through [`ComputePool::global`].
pub struct ComputePool {
    /// One channel per worker; `run` broadcasts the call to all of them.
    senders: Vec<Sender<Arc<CallShared>>>,
    threads: usize,
    jobs: AtomicU64,
    steal_idle_nanos: AtomicU64,
    kernel_stats: [KernelStat; 5],
}

impl ComputePool {
    /// Builds a pool that computes with `threads` participants: the
    /// caller plus `threads − 1` spawned workers. `threads` is clamped
    /// to `1..=`[`MAX_THREADS`].
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let mut senders = Vec::with_capacity(threads.saturating_sub(1));
        for _worker in 1..threads {
            let (tx, rx) = channel::<Arc<CallShared>>();
            senders.push(tx);
            // Workers live for the process: detached, blocked in `recv`
            // until the pool (a process-wide singleton in production)
            // drops its sender.
            // slm-lint: allow(no-nondeterminism) the one sanctioned thread spawn: workers only compute pre-partitioned disjoint chunks
            let _ = thread::spawn(move || {
                while let Ok(call) = rx.recv() {
                    call.work();
                }
            });
        }
        ComputePool {
            senders,
            threads,
            jobs: AtomicU64::new(0),
            steal_idle_nanos: AtomicU64::new(0),
            kernel_stats: Default::default(),
        }
    }

    /// The process-wide pool, lazily built from `SLM_THREADS` on first
    /// use (see the module docs for the parsing rules).
    pub fn global() -> &'static ComputePool {
        static GLOBAL: OnceLock<ComputePool> = OnceLock::new();
        GLOBAL.get_or_init(|| ComputePool::new(configured_threads()))
    }

    /// Number of participants (caller + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs dispatched so far.
    pub fn jobs_dispatched(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Accumulated load-imbalance idle seconds: for each parallel call,
    /// the time participants spent finished-but-waiting for the slowest
    /// participant (0 on the serial path).
    pub fn steal_idle_s(&self) -> f64 {
        self.steal_idle_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Runs `body(job)` for every `job < n_jobs`, spread over the pool.
    ///
    /// Jobs must be independent: the partitioning into jobs (and
    /// therefore the result) must not depend on the thread count. With
    /// one participant, or a single job, everything runs inline on the
    /// caller.
    pub fn run<F>(&self, n_jobs: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.jobs.fetch_add(n_jobs as u64, Ordering::Relaxed);
        if self.threads == 1 || n_jobs <= 1 {
            for job in 0..n_jobs {
                body(job);
            }
            return;
        }
        // SAFETY: pure lifetime erasure (same fat-pointer layout); the
        // invariants on [`TaskPtr`] keep every dereference inside the
        // borrow of `body`.
        // slm-lint: allow(unsafe-containment) lifetime erasure scoped to this call, see SAFETY note
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(&body)
        });
        let shared = Arc::new(CallShared {
            task,
            n_jobs,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_jobs),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            // slm-lint: allow(no-nondeterminism) imbalance accounting only; never feeds numerics
            start: Instant::now(),
            exit_sum_nanos: AtomicU64::new(0),
            exit_max_nanos: AtomicU64::new(0),
            participants: AtomicU64::new(0),
        });
        for tx in &self.senders {
            // A worker that died (panicked job) just means less help;
            // the caller's own claim loop still drains every job.
            let _ = tx.send(Arc::clone(&shared));
        }
        shared.work();
        shared.wait();
        // Imbalance: participants × slowest-exit − Σ exits. Workers that
        // arrive after completion claim nothing and record nothing.
        let participants = shared.participants.load(Ordering::Relaxed);
        let max = shared.exit_max_nanos.load(Ordering::Relaxed);
        let sum = shared.exit_sum_nanos.load(Ordering::Relaxed);
        let idle = (participants * max).saturating_sub(sum);
        self.steal_idle_nanos.fetch_add(idle, Ordering::Relaxed);
    }

    /// Splits `out` into consecutive `chunk_len`-sized sub-slices (the
    /// last may be shorter) and runs `body(chunk_index, chunk)` for each,
    /// spread over the pool. The chunk count depends only on
    /// `out.len()` and `chunk_len`, keeping results thread-count
    /// independent.
    pub fn run_chunks<F>(&self, out: &mut [f32], chunk_len: usize, body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        assert!(chunk_len > 0, "run_chunks: chunk_len must be positive");
        let len = out.len();
        if len == 0 {
            return;
        }
        let n_jobs = len.div_ceil(chunk_len);
        let base = BufPtr(out.as_mut_ptr());
        self.run(n_jobs, |job| {
            let lo = job * chunk_len;
            let hi = (lo + chunk_len).min(len);
            // SAFETY: [lo, hi) ranges of distinct jobs are disjoint by
            // construction and within the buffer; `out` is mutably
            // borrowed for the whole call.
            // slm-lint: allow(unsafe-containment) disjoint per-job slices, see SAFETY note
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            body(job, chunk);
        });
    }

    /// Starts a host-time timer for one kernel invocation.
    pub fn start_kernel(&self, kind: KernelKind) -> KernelTimer {
        KernelTimer {
            kind,
            // slm-lint: allow(no-nondeterminism) observability-only timestamp; results never depend on it
            start: Instant::now(),
        }
    }

    /// Finishes a [`KernelTimer`], folding its elapsed time into the
    /// per-kernel stats.
    pub fn record_kernel(&self, timer: KernelTimer) {
        let stat = &self.kernel_stats[timer.kind.index()];
        stat.calls.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(timer.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stat.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accumulated `(calls, host_seconds)` for one kernel family.
    pub fn kernel_totals(&self, kind: KernelKind) -> (u64, f64) {
        let stat = &self.kernel_stats[kind.index()];
        (
            stat.calls.load(Ordering::Relaxed),
            stat.nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        )
    }

    /// Publishes the pool and per-kernel counters as telemetry gauges:
    /// `tensor.pool.{threads,jobs,steal_idle_s}`, the selected
    /// `tensor.backend` (its [`crate::backend::BackendKind::index`]) and
    /// `tensor.kernel.<name>.{calls,host_s}`.
    pub fn publish_metrics(&self, tele: &mut Telemetry) {
        tele.gauge_set("tensor.pool.threads", self.threads as f64);
        tele.gauge_set(
            "tensor.backend",
            crate::backend::global_backend_kind().index() as f64,
        );
        tele.gauge_set("tensor.pool.jobs", self.jobs_dispatched() as f64);
        tele.gauge_set("tensor.pool.steal_idle_s", self.steal_idle_s());
        for kind in KernelKind::ALL {
            let (calls, host_s) = self.kernel_totals(kind);
            if calls == 0 {
                continue;
            }
            tele.gauge_set(
                &format!("tensor.kernel.{}.calls", kind.name()),
                calls as f64,
            );
            tele.gauge_set(&format!("tensor.kernel.{}.host_s", kind.name()), host_s);
        }
    }
}

/// Resolves the global pool's thread count from `SLM_THREADS`.
///
/// Unset → available parallelism (clamped to [`MAX_THREADS`]).
/// Unparseable or `0` → warn and use the default; values above the
/// clamp warn and clamp.
fn configured_threads() -> usize {
    // slm-lint: allow(no-nondeterminism) queried once to size the pool; the job partitioning never depends on it
    let default = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS);
    let Ok(raw) = std::env::var("SLM_THREADS") else {
        return default;
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => {
            Telemetry::disabled().warn(&format!(
                "unusable SLM_THREADS value {raw:?} (expected 1..={MAX_THREADS}); \
                 using {default} (available parallelism)"
            ));
            default
        }
        Ok(n) if n > MAX_THREADS => {
            Telemetry::disabled().warn(&format!(
                "SLM_THREADS={n} exceeds the clamp; using {MAX_THREADS}"
            ));
            MAX_THREADS
        }
        Ok(n) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_pool_runs_all_jobs_inline() {
        let pool = ComputePool::new(1);
        let hits = AtomicU32::new(0);
        pool.run(17, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 17);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.jobs_dispatched(), 17);
    }

    #[test]
    fn parallel_pool_runs_each_job_exactly_once() {
        let pool = ComputePool::new(4);
        let mut out = vec![0.0f32; 1000];
        pool.run_chunks(&mut out, 7, |job, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = (job * 7 + off) as f32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32, "element {i} written by the wrong job");
        }
    }

    #[test]
    fn chunk_partitioning_is_thread_count_independent() {
        for threads in [1usize, 2, 3, 8] {
            let pool = ComputePool::new(threads);
            let mut out = vec![0.0f32; 103]; // ragged vs chunk_len 10
            pool.run_chunks(&mut out, 10, |job, chunk| {
                for v in chunk.iter_mut() {
                    *v = job as f32;
                }
            });
            let expect: Vec<f32> = (0..103).map(|i| (i / 10) as f32).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn zero_and_single_job_calls_are_fine() {
        let pool = ComputePool::new(3);
        pool.run(0, |_| panic!("no jobs must run"));
        let hit = AtomicU32::new(0);
        pool.run(1, |j| {
            assert_eq!(j, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        pool.run_chunks(&mut [], 4, |_, _| panic!("empty buffer has no chunks"));
    }

    #[test]
    fn thread_count_clamps() {
        assert_eq!(ComputePool::new(0).threads(), 1);
        assert_eq!(ComputePool::new(MAX_THREADS + 40).threads(), MAX_THREADS);
    }

    #[test]
    fn kernel_stats_accumulate() {
        let pool = ComputePool::new(1);
        let t = pool.start_kernel(KernelKind::Matmul);
        pool.record_kernel(t);
        let (calls, host_s) = pool.kernel_totals(KernelKind::Matmul);
        assert_eq!(calls, 1);
        assert!(host_s >= 0.0);
        let mut tele = Telemetry::summary();
        pool.publish_metrics(&mut tele);
        let snap = tele.snapshot();
        assert_eq!(snap.gauge("tensor.pool.threads"), Some(1.0));
        assert_eq!(snap.gauge("tensor.kernel.matmul.calls"), Some(1.0));
    }
}
