//! Average pooling — the paper's cut-layer compression operator.
//!
//! The split network filters the CNN output through an average-pooling
//! layer of dimension `w_H × w_W`; the pooled map (`(N_H/w_H) × (N_W/w_W)`)
//! is the *only* image-derived data that crosses the wireless link, so the
//! pooling size directly trades accuracy against communication payload and
//! privacy leakage. `40 × 40` pooling of the `40 × 40` CNN output yields
//! the paper's headline **one-pixel image**.

use crate::tensor::Tensor;

fn pool_dims(input: &Tensor, wh: usize, ww: usize) -> (usize, usize, usize, usize, usize, usize) {
    assert_eq!(
        input.shape().rank(),
        4,
        "avg_pool2d: input {} is not NCHW rank-4",
        input.shape()
    );
    assert!(
        wh > 0 && ww > 0,
        "avg_pool2d: pooling window must be non-empty"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert!(
        h % wh == 0 && w % ww == 0,
        "avg_pool2d: window {wh}x{ww} does not tile input {h}x{w} exactly"
    );
    (n, c, h, w, h / wh, w / ww)
}

/// Non-overlapping average pooling over an `NCHW` tensor.
///
/// The window `wh × ww` must tile the spatial extent exactly (the paper's
/// pooling dimensions 1×1, 4×4, 10×10 and 40×40 all tile the 40×40 CNN
/// output). Returns `[N, C, H/wh, W/ww]`.
pub fn avg_pool2d(input: &Tensor, wh: usize, ww: usize) -> Tensor {
    let (n, c, _h, w, ho, wo) = pool_dims(input, wh, ww);
    let x = input.data();
    let inv = 1.0 / (wh * ww) as f32;
    let mut out = vec![0.0f32; n * c * ho * wo];
    for map in 0..n * c {
        let in_base = map * (ho * wh) * (wo * ww);
        let out_base = map * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0f32;
                for dy in 0..wh {
                    let row = in_base + (oy * wh + dy) * w + ox * ww;
                    acc += x[row..row + ww].iter().sum::<f32>();
                }
                out[out_base + oy * wo + ox] = acc * inv;
            }
        }
    }
    Tensor::from_parts([n, c, ho, wo], out)
}

/// Backward pass of [`avg_pool2d`]: distributes each upstream gradient
/// uniformly over its pooling window (scaled by `1/(wh·ww)`).
pub fn avg_pool2d_backward(
    input_dims: &[usize],
    grad_out: &Tensor,
    wh: usize,
    ww: usize,
) -> Tensor {
    assert_eq!(
        input_dims.len(),
        4,
        "avg_pool2d_backward: input_dims must be NCHW"
    );
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (ho, wo) = (h / wh, w / ww);
    assert_eq!(
        grad_out.dims(),
        &[n, c, ho, wo],
        "avg_pool2d_backward: grad_out {} does not match pooled shape [{n}x{c}x{ho}x{wo}]",
        grad_out.shape()
    );
    let g = grad_out.data();
    let inv = 1.0 / (wh * ww) as f32;
    let mut gx = vec![0.0f32; n * c * h * w];
    for map in 0..n * c {
        let in_base = map * h * w;
        let out_base = map * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let gv = g[out_base + oy * wo + ox] * inv;
                for dy in 0..wh {
                    let row = in_base + (oy * wh + dy) * w + ox * ww;
                    for v in &mut gx[row..row + ww] {
                        *v += gv;
                    }
                }
            }
        }
    }
    Tensor::from_parts([n, c, h, w], gx)
}

/// Non-overlapping max pooling over an `NCHW` tensor.
///
/// The cut-layer alternative to [`avg_pool2d`]: keeps the strongest
/// activation per window instead of the mean. Returns the pooled tensor
/// and the flat argmax indices (into the input buffer) needed by
/// [`max_pool2d_backward`].
pub fn max_pool2d(input: &Tensor, wh: usize, ww: usize) -> (Tensor, Vec<usize>) {
    let (n, c, _h, w, ho, wo) = pool_dims(input, wh, ww);
    let x = input.data();
    let mut out = vec![f32::NEG_INFINITY; n * c * ho * wo];
    let mut arg = vec![0usize; n * c * ho * wo];
    for map in 0..n * c {
        let in_base = map * (ho * wh) * (wo * ww);
        let out_base = map * ho * wo;
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_at = 0usize;
                for dy in 0..wh {
                    let row = in_base + (oy * wh + dy) * w + ox * ww;
                    for (dx, &v) in x[row..row + ww].iter().enumerate() {
                        if v > best {
                            best = v;
                            best_at = row + dx;
                        }
                    }
                }
                out[out_base + oy * wo + ox] = best;
                arg[out_base + oy * wo + ox] = best_at;
            }
        }
    }
    (Tensor::from_parts([n, c, ho, wo], out), arg)
}

/// Backward pass of [`max_pool2d`]: routes each upstream gradient to the
/// input position that won the forward max.
pub fn max_pool2d_backward(input_dims: &[usize], grad_out: &Tensor, argmax: &[usize]) -> Tensor {
    assert_eq!(
        input_dims.len(),
        4,
        "max_pool2d_backward: input_dims must be NCHW"
    );
    assert_eq!(
        grad_out.numel(),
        argmax.len(),
        "max_pool2d_backward: argmax length does not match grad_out"
    );
    let numel: usize = input_dims.iter().product();
    let mut gx = vec![0.0f32; numel];
    for (&g, &at) in grad_out.data().iter().zip(argmax) {
        assert!(at < numel, "max_pool2d_backward: argmax out of bounds");
        gx[at] += g;
    }
    Tensor::from_parts(input_dims.to_vec(), gx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one_window_is_identity() {
        let input = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        assert_eq!(avg_pool2d(&input, 1, 1), input);
    }

    #[test]
    fn full_window_yields_one_pixel_mean() {
        let input = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let out = avg_pool2d(&input, 4, 4);
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.item(), 7.5); // mean of 0..15
    }

    #[test]
    fn window_averages_blocks() {
        let input =
            Tensor::from_vec([1, 1, 2, 4], vec![1.0, 3.0, 5.0, 7.0, 1.0, 3.0, 5.0, 7.0]).unwrap();
        let out = avg_pool2d(&input, 2, 2);
        assert_eq!(out.dims(), &[1, 1, 1, 2]);
        assert_eq!(out.data(), &[2.0, 6.0]);
    }

    #[test]
    fn preserves_batch_and_channels() {
        let input = Tensor::from_fn([2, 3, 4, 4], |i| (i % 16) as f32);
        let out = avg_pool2d(&input, 2, 2);
        assert_eq!(out.dims(), &[2, 3, 2, 2]);
    }

    #[test]
    fn pooling_preserves_global_mean() {
        let input = Tensor::from_fn([1, 2, 8, 8], |i| ((i * 37) % 11) as f32);
        let out = avg_pool2d(&input, 4, 2);
        assert!((out.mean() - input.mean()).abs() < 1e-5);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let dims = [1usize, 1, 4, 4];
        let grad_out = Tensor::from_vec([1, 1, 2, 2], vec![4.0, 8.0, 12.0, 16.0]).unwrap();
        let gx = avg_pool2d_backward(&dims, &grad_out, 2, 2);
        // Each 2x2 window receives grad/4 per element.
        assert_eq!(gx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(gx.at(&[0, 0, 0, 2]), 2.0);
        assert_eq!(gx.at(&[0, 0, 2, 0]), 3.0);
        assert_eq!(gx.at(&[0, 0, 3, 3]), 4.0);
        // Total gradient mass is conserved.
        assert!((gx.sum() - grad_out.sum()).abs() < 1e-6);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let input = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32).sin());
        let grad_out = Tensor::ones([1, 1, 2, 2]);
        let gx = avg_pool2d_backward(&[1, 1, 4, 4], &grad_out, 2, 2);
        let eps = 1e-2f32;
        for flat in 0..16 {
            let mut p = input.clone();
            p.data_mut()[flat] += eps;
            let up = avg_pool2d(&p, 2, 2).sum();
            p.data_mut()[flat] -= 2.0 * eps;
            let down = avg_pool2d(&p, 2, 2).sum();
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - gx.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn rejects_non_tiling_window() {
        avg_pool2d(&Tensor::zeros([1, 1, 5, 5]), 2, 2);
    }

    #[test]
    fn max_pool_selects_maxima() {
        let input =
            Tensor::from_vec([1, 1, 2, 4], vec![1.0, 3.0, 5.0, 7.0, 2.0, 0.0, 8.0, 6.0]).unwrap();
        let (out, arg) = max_pool2d(&input, 2, 2);
        assert_eq!(out.dims(), &[1, 1, 1, 2]);
        assert_eq!(out.data(), &[3.0, 8.0]);
        assert_eq!(arg, vec![1, 6]);
    }

    #[test]
    fn max_pool_dominates_avg_pool() {
        let input = Tensor::from_fn([2, 1, 4, 4], |i| ((i * 31) % 17) as f32 - 8.0);
        let (mx, _) = max_pool2d(&input, 2, 2);
        let av = avg_pool2d(&input, 2, 2);
        for (m, a) in mx.data().iter().zip(av.data()) {
            assert!(m >= a);
        }
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]).unwrap();
        let (out, arg) = max_pool2d(&input, 2, 2);
        assert_eq!(out.item(), 9.0);
        let gx = max_pool2d_backward(&[1, 1, 2, 2], &Tensor::full([1, 1, 1, 1], 5.0), &arg);
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_backward_matches_finite_differences() {
        let input = Tensor::from_fn([1, 1, 4, 4], |i| ((i * 7) % 13) as f32 * 0.1);
        let (_, arg) = max_pool2d(&input, 2, 2);
        let gx = max_pool2d_backward(&[1, 1, 4, 4], &Tensor::ones([1, 1, 2, 2]), &arg);
        let eps = 1e-2f32;
        for flat in 0..16 {
            let mut p = input.clone();
            p.data_mut()[flat] += eps;
            let up = max_pool2d(&p, 2, 2).0.sum();
            p.data_mut()[flat] -= 2.0 * eps;
            let down = max_pool2d(&p, 2, 2).0.sum();
            let fd = (up - down) / (2.0 * eps);
            // Ties can flip winners under perturbation; this input has
            // distinct values so the gradient is exact.
            assert!(
                (fd - gx.data()[flat]).abs() < 1e-3,
                "at {flat}: {fd} vs {}",
                gx.data()[flat]
            );
        }
    }
}
