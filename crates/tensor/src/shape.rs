//! Shape utilities shared by the tensor kernels.

use std::fmt;

/// The shape of a tensor: the extent of each axis, outermost first.
///
/// A `Shape` is a thin wrapper over `Vec<usize>` adding the handful of
/// derived quantities the kernels need (element count, row-major strides,
/// flat-index computation). Rank-0 shapes are permitted and describe a
/// scalar with one element.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis extents, outermost first.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The extent of axis `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides: `strides()[i]` is the flat-index step for a unit
    /// step along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major index of the multi-index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "flat_index: index rank {} does not match shape rank {} ({self})",
            idx.len(),
            self.0.len(),
        );
        let mut flat = 0;
        for (axis, (&i, &extent)) in idx.iter().zip(&self.0).enumerate() {
            assert!(
                i < extent,
                "flat_index: coordinate {i} out of bounds for axis {axis} of {self}"
            );
            flat = flat * extent + i;
        }
        flat
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Returns `true` when two shapes are compatible for the limited
/// broadcasting the workspace uses: identical shapes, or `b` matching the
/// trailing axes of `a` (e.g. adding a `[C]` bias to an `[N, C]` matrix).
pub fn broadcastable(a: &Shape, b: &Shape) -> bool {
    if a == b {
        return true;
    }
    if b.rank() > a.rank() {
        return false;
    }
    let offset = a.rank() - b.rank();
    a.dims()[offset..] == *b.dims()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.flat_index(&[]), 0);
    }

    #[test]
    fn flat_index_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.flat_index(&[0, 0]), 0);
        assert_eq!(s.flat_index(&[0, 2]), 2);
        assert_eq!(s.flat_index(&[1, 0]), 3);
        assert_eq!(s.flat_index(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds_checked() {
        Shape::new(&[2, 3]).flat_index(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn flat_index_rank_checked() {
        Shape::new(&[2, 3]).flat_index(&[0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[4, 1, 7]).to_string(), "[4x1x7]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }

    #[test]
    fn broadcast_trailing_axes() {
        let a = Shape::new(&[8, 3]);
        assert!(broadcastable(&a, &Shape::new(&[8, 3])));
        assert!(broadcastable(&a, &Shape::new(&[3])));
        assert!(!broadcastable(&a, &Shape::new(&[8])));
        assert!(!broadcastable(&Shape::new(&[3]), &a));
    }
}
