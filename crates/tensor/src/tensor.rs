//! The [`Tensor`] type: a row-major `f32` buffer with an explicit shape.

use std::fmt;

use crate::shape::{broadcastable, Shape};

/// Errors returned by fallible, data-driven tensor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major `f32` tensor.
///
/// `Tensor` owns its buffer; all operations either consume/borrow tensors
/// and allocate fresh outputs, or mutate in place (`*_inplace`, `fill`,
/// [`Tensor::at_mut`]). Shape mismatches panic — see the crate docs.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A tensor of `shape` filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let numel = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A tensor of `shape` filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor of `shape` filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let numel = shape.numel();
        Tensor {
            shape,
            data: vec![value; numel],
        }
    }

    /// A rank-0 (scalar) tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Builds a tensor from an existing buffer.
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a tensor from a buffer whose length is correct by
    /// construction (kernel outputs and batch assemblers that size the
    /// buffer as `shape.numel()` up front).
    /// Checked in debug builds only; fallible callers use [`Tensor::from_vec`].
    pub fn from_parts(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        debug_assert_eq!(
            shape.numel(),
            data.len(),
            "from_parts: buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Builds a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Builds a tensor by evaluating `f` at every multi-index, in row-major
    /// order. `f` receives the flat index.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(f).collect();
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The axis extents (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The element at multi-index `idx`.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Mutable reference to the element at multi-index `idx`.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let flat = self.shape.flat_index(idx);
        &mut self.data[flat]
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item: tensor {} has {} elements, expected 1",
            self.shape,
            self.numel()
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same buffer and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape: cannot view {} ({} elems) as {} ({} elems)",
            self.shape,
            self.numel(),
            shape,
            shape.numel()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Copies row `row` of a rank-2 tensor into a rank-1 tensor.
    ///
    /// # Panics
    /// Panics unless the tensor is rank-2 and `row` is in bounds.
    pub fn row(&self, row: usize) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            2,
            "row: tensor {} is not rank-2",
            self.shape
        );
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert!(
            row < rows,
            "row: index {row} out of bounds for {}",
            self.shape
        );
        Tensor::from_slice(&self.data[row * cols..(row + 1) * cols])
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor
    /// (`[tensors.len(), len]`).
    ///
    /// # Panics
    /// Panics if `tensors` is empty or lengths differ.
    pub fn stack_rows(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "stack_rows: no tensors given");
        let cols = tensors[0].numel();
        let mut data = Vec::with_capacity(tensors.len() * cols);
        for t in tensors {
            assert_eq!(
                t.numel(),
                cols,
                "stack_rows: row length {} differs from {}",
                t.numel(),
                cols
            );
            data.extend_from_slice(t.data());
        }
        Tensor {
            shape: Shape::new(&[tensors.len(), cols]),
            data,
        }
    }

    /// Concatenates rank-1 tensors into one rank-1 tensor.
    pub fn concat(tensors: &[&Tensor]) -> Tensor {
        let mut data = Vec::new();
        for t in tensors {
            data.extend_from_slice(t.data());
        }
        Tensor {
            shape: Shape::new(&[data.len()]),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Elementwise sum. Supports trailing-axis broadcast of `other` onto
    /// `self` (e.g. `[N, C] + [C]`).
    ///
    /// # Panics
    /// Panics when the shapes are not broadcast-compatible.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_broadcast("add", other, |a, b| a + b)
    }

    /// Elementwise difference (`self - other`, trailing-axis broadcast).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_broadcast("sub", other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, trailing-axis broadcast.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_broadcast("mul", other, |a, b| a * b)
    }

    /// Elementwise quotient, trailing-axis broadcast.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_broadcast("div", other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place (shapes must match exactly).
    pub fn add_inplace(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_inplace: shape mismatch {} vs {}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Returns `self + s` elementwise.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Elementwise combine with exact shape match.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip: shape mismatch {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn zip_broadcast(&self, op: &str, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            broadcastable(&self.shape, &other.shape),
            "{op}: shape {} is not broadcast-compatible with {}",
            other.shape,
            self.shape
        );
        if self.shape == other.shape {
            return self.zip(other, f);
        }
        let chunk = other.numel();
        let data = self
            .data
            .chunks(chunk)
            .flat_map(|c| c.iter().zip(&other.data).map(|(&a, &b)| f(a, b)))
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.data
            .iter()
            .map(|&a| (a - mean) * (a - mean))
            .sum::<f32>()
            / self.data.len() as f32
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of squares of all elements.
    pub fn sum_sq(&self) -> f32 {
        self.data.iter().map(|&a| a * a).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }

    /// Column sums of a rank-2 tensor: `[N, C] -> [C]`.
    ///
    /// # Panics
    /// Panics unless the tensor is rank-2.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(
            self.shape.rank(),
            2,
            "sum_axis0: tensor {} is not rank-2",
            self.shape
        );
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0; cols];
        for r in 0..rows {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.data[r * cols + c];
            }
        }
        Tensor {
            shape: Shape::new(&[cols]),
            data: out,
        }
    }

    /// `true` when every element is finite (no NaN / infinities).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(PREVIEW)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "[{}", preview.join(", "))?;
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(
            Tensor::from_fn([4], |i| i as f32).data(),
            &[0.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert_eq!(
            Tensor::from_vec([2, 2], vec![1.0; 3]).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_bias_add() {
        let x = Tensor::from_vec([2, 3], vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let bias = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        let y = x.add(&bias);
        assert_eq!(y.data(), &[10.0, 20.0, 30.0, 11.0, 21.0, 31.0]);
    }

    #[test]
    #[should_panic(expected = "broadcast-compatible")]
    fn broadcast_rejects_leading_axis_match() {
        let x = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2]);
        let _ = x.add(&b);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.sum_sq(), 30.0);
        assert!((t.variance() - 1.25).abs() < 1e-6);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_axis0_columns() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap();
        assert_eq!(t.sum_axis0().data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn rows_and_stacking() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.row(1).data(), &[4.0, 5.0, 6.0]);
        let restacked = Tensor::stack_rows(&[t.row(0), t.row(1)]);
        assert_eq!(restacked, t);
    }

    #[test]
    fn concat_rank1() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0]);
        assert_eq!(Tensor::concat(&[&a, &b]).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape([2, 2]);
        assert_eq!(r.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_checks_numel() {
        Tensor::zeros([3]).reshape([2, 2]);
    }

    #[test]
    fn finiteness_check() {
        let mut t = Tensor::ones([2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn inplace_ops() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        a.add_inplace(&Tensor::from_slice(&[10.0, 10.0]));
        assert_eq!(a.data(), &[11.0, 12.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[5.5, 6.0]);
        a.map_inplace(|v| v - 5.0);
        assert_eq!(a.data(), &[0.5, 1.0]);
        a.fill(9.0);
        assert_eq!(a.data(), &[9.0, 9.0]);
    }
}
