//! 2-D convolution (stride 1) in `NCHW` layout, with the full backward
//! pass needed for training the UE-side CNN.
//!
//! The split network uses 'same'-padded 3×3 convolutions so that the CNN
//! output keeps the `N_H × N_W` spatial size of the raw depth image (the
//! paper's average-pooling cut layer then divides each spatial dimension
//! by the pooling size). Only stride 1 is implemented — the paper's
//! architecture needs nothing else, and leaving stride out keeps the
//! kernels small and auditable.
//!
//! # im2col + GEMM
//!
//! Both passes lower convolution onto the serial GEMM microkernels of
//! the selected [`Backend`] (`SLM_BACKEND`; `*_with` variants take an
//! explicit one). Per image, the input is unrolled into a column
//! matrix `Col: [K × H_out·W_out]` with `K = C_in·kh·kw` (zero rows for
//! padding taps); the weight tensor `[C_out, C_in, kh, kw]` is already a
//! row-major `[C_out × K]` matrix, so:
//!
//! * forward: `Out_n = W · Col_n` (+ bias),
//! * weight gradient: `∂W_n = G_n · Col_nᵀ`, reduced over images serially,
//! * input gradient: `∂Col_n = Wᵀ · G_n`, scattered back by `col2im`.
//!
//! This turns the direct 7-deep loop nest into three GEMMs that reuse the
//! register-blocked kernels (and their cache behaviour) across the whole
//! training hot path.
//!
//! # Determinism
//!
//! Parallelism is one image per pool job: each job owns a disjoint slice
//! of the output (or of per-image gradient slots, reduced afterwards in
//! ascending image order on the calling thread), and within a job every
//! output element is a single accumulator summed in ascending `k` order.
//! Results are therefore bitwise identical at every thread count.
//!
//! Like `linalg`, the kernels deliberately do **not** skip zero weights
//! or zero activations: `0 × NaN` must reach the accumulator so that
//! non-finite blowups propagate to the training-health watchdog instead
//! of being silently masked.

use crate::backend::{global_backend, Backend};
use crate::pool::{ComputePool, KernelKind};
use crate::tensor::Tensor;

/// Spatial padding policy for [`conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// No padding; output is `H - kh + 1` × `W - kw + 1`.
    Valid,
    /// Zero-padding of `(k-1)/2` on each side; output keeps the input
    /// spatial size (requires odd kernel sizes).
    Same,
}

impl Padding {
    /// `(pad_h, pad_w)` for a `kh × kw` kernel.
    ///
    /// # Panics
    /// Panics for [`Padding::Same`] with an even kernel size, which cannot
    /// be padded symmetrically.
    pub fn amounts(self, kh: usize, kw: usize) -> (usize, usize) {
        match self {
            Padding::Valid => (0, 0),
            Padding::Same => {
                assert!(
                    kh % 2 == 1 && kw % 2 == 1,
                    "Padding::Same requires odd kernel sizes, got {kh}x{kw}"
                );
                ((kh - 1) / 2, (kw - 1) / 2)
            }
        }
    }

    /// Output spatial size for an `h × w` input and `kh × kw` kernel.
    pub fn output_size(self, h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
        let (ph, pw) = self.amounts(kh, kw);
        assert!(
            h + 2 * ph >= kh && w + 2 * pw >= kw,
            "conv2d: kernel {kh}x{kw} larger than padded input {h}x{w}"
        );
        (h + 2 * ph - kh + 1, w + 2 * pw - kw + 1)
    }
}

fn conv_dims(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    assert_eq!(
        input.shape().rank(),
        4,
        "conv2d: input {} is not NCHW rank-4",
        input.shape()
    );
    assert_eq!(
        weight.shape().rank(),
        4,
        "conv2d: weight {} is not [out_c, in_c, kh, kw] rank-4",
        weight.shape()
    );
    let (n, c_in, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (c_out, wc_in, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(
        c_in, wc_in,
        "conv2d: input channels {} do not match weight channels {}",
        c_in, wc_in
    );
    assert_eq!(
        bias.numel(),
        c_out,
        "conv2d: bias length {} does not match output channels {}",
        bias.numel(),
        c_out
    );
    (n, c_in, h, w, c_out, kh, kw)
}

/// Per-image geometry shared by the `im2col`/`col2im` lowering.
#[derive(Clone, Copy)]
struct ConvGeom {
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    ph: usize,
    pw: usize,
    ho: usize,
    wo: usize,
}

impl ConvGeom {
    /// Unrolled patch length `K = C_in·kh·kw`.
    fn k(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Output pixels per channel `P = H_out·W_out`.
    fn p(&self) -> usize {
        self.ho * self.wo
    }
}

/// Unrolls one image `x: [C_in, H, W]` into `col: [K × P]`. `col` must be
/// zero-initialized; padding taps stay zero.
fn im2col(col: &mut [f32], x: &[f32], gm: ConvGeom) {
    let p = gm.p();
    let mut k = 0usize;
    for ci in 0..gm.c_in {
        let in_base = ci * gm.h * gm.w;
        for dy in 0..gm.kh {
            // Valid output rows for this vertical tap: oy + dy must land
            // inside the (virtually padded) input.
            let oy_lo = gm.ph.saturating_sub(dy);
            let oy_hi = (gm.h + gm.ph).saturating_sub(dy).min(gm.ho);
            for dx in 0..gm.kw {
                let ox_lo = gm.pw.saturating_sub(dx);
                let ox_hi = (gm.w + gm.pw).saturating_sub(dx).min(gm.wo);
                let row = &mut col[k * p..(k + 1) * p];
                if ox_lo < ox_hi {
                    for oy in oy_lo..oy_hi {
                        let irow = in_base + (oy + dy - gm.ph) * gm.w + (ox_lo + dx - gm.pw);
                        row[oy * gm.wo + ox_lo..oy * gm.wo + ox_hi]
                            .copy_from_slice(&x[irow..irow + (ox_hi - ox_lo)]);
                    }
                }
                k += 1;
            }
        }
    }
}

/// Scatter-adds `dcol: [K × P]` back into one image gradient
/// `gx: [C_in, H, W]` — the transpose of [`im2col`], with `+=` because an
/// input pixel feeds several patches.
fn col2im_add(gx: &mut [f32], dcol: &[f32], gm: ConvGeom) {
    let p = gm.p();
    let mut k = 0usize;
    for ci in 0..gm.c_in {
        let in_base = ci * gm.h * gm.w;
        for dy in 0..gm.kh {
            let oy_lo = gm.ph.saturating_sub(dy);
            let oy_hi = (gm.h + gm.ph).saturating_sub(dy).min(gm.ho);
            for dx in 0..gm.kw {
                let ox_lo = gm.pw.saturating_sub(dx);
                let ox_hi = (gm.w + gm.pw).saturating_sub(dx).min(gm.wo);
                let row = &dcol[k * p..(k + 1) * p];
                if ox_lo < ox_hi {
                    for oy in oy_lo..oy_hi {
                        let irow = in_base + (oy + dy - gm.ph) * gm.w + (ox_lo + dx - gm.pw);
                        let dst = &mut gx[irow..irow + (ox_hi - ox_lo)];
                        let src = &row[oy * gm.wo + ox_lo..oy * gm.wo + ox_hi];
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                }
                k += 1;
            }
        }
    }
}

/// Stride-1 2-D convolution on the process-wide pool.
///
/// * `input`: `[N, C_in, H, W]`
/// * `weight`: `[C_out, C_in, kh, kw]`
/// * `bias`: `[C_out]`
///
/// Returns `[N, C_out, H_out, W_out]` where the output spatial size follows
/// from `padding` (see [`Padding::output_size`]).
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, padding: Padding) -> Tensor {
    conv2d_in(ComputePool::global(), input, weight, bias, padding)
}

/// [`conv2d`] on an explicit pool and the process-wide backend.
pub fn conv2d_in(
    pool: &ComputePool,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    padding: Padding,
) -> Tensor {
    conv2d_with(pool, global_backend(), input, weight, bias, padding)
}

/// [`conv2d`] on an explicit pool and backend.
pub fn conv2d_with(
    pool: &ComputePool,
    backend: &dyn Backend,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    padding: Padding,
) -> Tensor {
    let (n, c_in, h, w, c_out, kh, kw) = conv_dims(input, weight, bias);
    let (ph, pw) = padding.amounts(kh, kw);
    let (ho, wo) = padding.output_size(h, w, kh, kw);
    let gm = ConvGeom {
        c_in,
        h,
        w,
        kh,
        kw,
        ph,
        pw,
        ho,
        wo,
    };
    let (k_sz, p_sz) = (gm.k(), gm.p());

    let timer = pool.start_kernel(KernelKind::Conv2dFwd);
    let x = input.data();
    let wt = weight.data();
    let b = bias.data();
    let x_per = c_in * h * w;

    let mut out = vec![0.0f32; n * c_out * p_sz];
    if !out.is_empty() {
        // One image per job: each job owns a disjoint [C_out × P] output
        // slab and its own im2col scratch.
        pool.run_chunks(&mut out, c_out * p_sz, |img, chunk| {
            let mut col = vec![0.0f32; k_sz * p_sz];
            im2col(&mut col, &x[img * x_per..(img + 1) * x_per], gm);
            backend.ab(chunk, wt, &col, c_out, k_sz, p_sz);
            for (orow, &bias_co) in chunk.chunks_exact_mut(p_sz).zip(b) {
                for o in orow {
                    *o += bias_co;
                }
            }
        });
    }
    pool.record_kernel(timer);
    Tensor::from_parts([n, c_out, ho, wo], out)
}

/// Gradients produced by [`conv2d_backward`].
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C_in, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weights, `[C_out, C_in, kh, kw]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[C_out]`.
    pub grad_bias: Tensor,
}

/// Backward pass of [`conv2d`], on the process-wide pool.
///
/// Given the upstream gradient `grad_out` (`[N, C_out, H_out, W_out]`, same
/// shape as the forward output), produces the gradients with respect to
/// the input, weights and bias.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    padding: Padding,
) -> Conv2dGrads {
    conv2d_backward_in(ComputePool::global(), input, weight, grad_out, padding)
}

/// [`conv2d_backward`] on an explicit pool and the process-wide backend.
pub fn conv2d_backward_in(
    pool: &ComputePool,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    padding: Padding,
) -> Conv2dGrads {
    conv2d_backward_with(pool, global_backend(), input, weight, grad_out, padding)
}

/// [`conv2d_backward`] on an explicit pool and backend.
pub fn conv2d_backward_with(
    pool: &ComputePool,
    backend: &dyn Backend,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    padding: Padding,
) -> Conv2dGrads {
    let bias_placeholder = Tensor::zeros([weight.dims()[0]]);
    let (n, c_in, h, w, c_out, kh, kw) = conv_dims(input, weight, &bias_placeholder);
    let (ph, pw) = padding.amounts(kh, kw);
    let (ho, wo) = padding.output_size(h, w, kh, kw);
    assert_eq!(
        grad_out.dims(),
        &[n, c_out, ho, wo],
        "conv2d_backward: grad_out {} does not match expected [{n}x{c_out}x{ho}x{wo}]",
        grad_out.shape()
    );
    let gm = ConvGeom {
        c_in,
        h,
        w,
        kh,
        kw,
        ph,
        pw,
        ho,
        wo,
    };
    let (k_sz, p_sz) = (gm.k(), gm.p());

    let timer = pool.start_kernel(KernelKind::Conv2dBwd);
    let x = input.data();
    let wt = weight.data();
    let g = grad_out.data();

    let x_per = c_in * h * w;
    let w_len = wt.len();

    // Bias gradient: a cheap serial reduction over the spatial maps, in
    // ascending image order.
    let mut gb = vec![0.0f32; c_out];
    for img in 0..n {
        for (co, gb_co) in gb.iter_mut().enumerate() {
            let base = (img * c_out + co) * p_sz;
            *gb_co += g[base..base + p_sz].iter().sum::<f32>();
        }
    }

    // Per-image job writing into a disjoint [gx_n | gw_n] slot: the input
    // gradient slab is final (images never overlap), the weight-gradient
    // partials are reduced below in ascending image order so the sum's
    // accumulation order never depends on the thread count.
    let mut parts = vec![0.0f32; n * (x_per + w_len)];
    if !parts.is_empty() {
        pool.run_chunks(&mut parts, x_per + w_len, |img, chunk| {
            let (gx_n, gw_n) = chunk.split_at_mut(x_per);
            let g_n = &g[img * c_out * p_sz..(img + 1) * c_out * p_sz];
            let mut col = vec![0.0f32; k_sz * p_sz];
            im2col(&mut col, &x[img * x_per..(img + 1) * x_per], gm);
            // ∂W_n = G_n · Col_nᵀ : [C_out × P] · [K × P]ᵀ → [C_out × K].
            backend.a_bt(gw_n, g_n, &col, c_out, p_sz, k_sz);
            // ∂Col_n = Wᵀ · G_n : [C_out × K]ᵀ · [C_out × P] → [K × P].
            let mut dcol = vec![0.0f32; k_sz * p_sz];
            backend.at_b(&mut dcol, wt, g_n, 0, k_sz, p_sz);
            col2im_add(gx_n, &dcol, gm);
        });
    }

    let mut gx = vec![0.0f32; n * x_per];
    let mut gw = vec![0.0f32; w_len];
    for img in 0..n {
        let chunk = &parts[img * (x_per + w_len)..(img + 1) * (x_per + w_len)];
        gx[img * x_per..(img + 1) * x_per].copy_from_slice(&chunk[..x_per]);
        // Ascending image order; per element one exactly-rounded add per
        // image, so the reduction is backend- and lane-width-independent.
        backend.add_assign(&mut gw, &chunk[x_per..]);
    }
    pool.record_kernel(timer);

    Conv2dGrads {
        grad_input: Tensor::from_parts([n, c_in, h, w], gx),
        grad_weight: Tensor::from_parts([c_out, c_in, kh, kw], gw),
        grad_bias: Tensor::from_slice(&gb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: direct six-nested-loop convolution with
    /// explicit bounds checks, used to validate the production kernel.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, padding: Padding) -> Tensor {
        let (n, c_in, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (c_out, _, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let (ph, pw) = padding.amounts(kh, kw);
        let (ho, wo) = padding.output_size(h, w, kh, kw);
        let mut out = Tensor::zeros([n, c_out, ho, wo]);
        for img in 0..n {
            for co in 0..c_out {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = bias.data()[co];
                        for ci in 0..c_in {
                            for dy in 0..kh {
                                for dx in 0..kw {
                                    let iy = oy + dy;
                                    let ix = ox + dx;
                                    if iy < ph || ix < pw || iy >= h + ph || ix >= w + pw {
                                        continue;
                                    }
                                    acc += input.at(&[img, ci, iy - ph, ix - pw])
                                        * weight.at(&[co, ci, dy, dx]);
                                }
                            }
                        }
                        *out.at_mut(&[img, co, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn identity_kernel_same_padding() {
        // A 3x3 kernel with 1 in the centre reproduces the input.
        let input = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let mut weight = Tensor::zeros([1, 1, 3, 3]);
        *weight.at_mut(&[0, 0, 1, 1]) = 1.0;
        let bias = Tensor::zeros([1]);
        let out = conv2d(&input, &weight, &bias, Padding::Same);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn valid_padding_shrinks_output() {
        let input = Tensor::ones([1, 1, 5, 5]);
        let weight = Tensor::ones([1, 1, 3, 3]);
        let bias = Tensor::zeros([1]);
        let out = conv2d(&input, &weight, &bias, Padding::Valid);
        assert_eq!(out.dims(), &[1, 1, 3, 3]);
        // Every interior window sums 9 ones.
        assert!(out.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    fn bias_is_added_per_channel() {
        let input = Tensor::zeros([1, 1, 3, 3]);
        let weight = Tensor::zeros([2, 1, 3, 3]);
        let bias = Tensor::from_slice(&[1.5, -2.0]);
        let out = conv2d(&input, &weight, &bias, Padding::Same);
        assert_eq!(out.at(&[0, 0, 1, 1]), 1.5);
        assert_eq!(out.at(&[0, 1, 2, 2]), -2.0);
    }

    #[test]
    fn matches_naive_reference_multichannel() {
        let mut seed = 1234u64;
        let mut next = move || {
            // Tiny xorshift so the test needs no external RNG.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f32 / 500.0 - 1.0
        };
        let input = Tensor::from_fn([2, 3, 6, 5], |_| next());
        let weight = Tensor::from_fn([4, 3, 3, 3], |_| next());
        let bias = Tensor::from_fn([4], |_| next());
        for padding in [Padding::Same, Padding::Valid] {
            let fast = conv2d(&input, &weight, &bias, padding);
            let slow = conv2d_naive(&input, &weight, &bias, padding);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-4,
                "kernel disagrees with reference under {padding:?}"
            );
        }
    }

    #[test]
    fn pooled_conv_bitwise_equals_serial() {
        let mut seed = 7u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f32 / 500.0 - 1.0
        };
        let input = Tensor::from_fn([5, 3, 7, 6], |_| next());
        let weight = Tensor::from_fn([4, 3, 3, 3], |_| next());
        let bias = Tensor::from_fn([4], |_| next());
        let serial = ComputePool::new(1);
        for padding in [Padding::Same, Padding::Valid] {
            let want = conv2d_in(&serial, &input, &weight, &bias, padding);
            let grad_out = Tensor::from_fn(want.dims(), |_| next());
            let want_bwd = conv2d_backward_in(&serial, &input, &weight, &grad_out, padding);
            for threads in [2usize, 3, 8] {
                let pool = ComputePool::new(threads);
                let got = conv2d_in(&pool, &input, &weight, &bias, padding);
                assert_eq!(got, want, "forward differs at {threads} threads");
                let got_bwd = conv2d_backward_in(&pool, &input, &weight, &grad_out, padding);
                assert_eq!(got_bwd.grad_input, want_bwd.grad_input);
                assert_eq!(got_bwd.grad_weight, want_bwd.grad_weight);
                assert_eq!(got_bwd.grad_bias, want_bwd.grad_bias);
            }
        }
    }

    #[test]
    fn conv_backends_agree_bitwise_both_passes() {
        use crate::backend::{backend_for, BackendKind};
        let mut seed = 77u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f32 / 500.0 - 1.0
        };
        let input = Tensor::from_fn([3, 2, 9, 7], |_| next());
        let weight = Tensor::from_fn([4, 2, 3, 3], |_| next());
        let bias = Tensor::from_fn([4], |_| next());
        let serial = ComputePool::new(1);
        let four = ComputePool::new(4);
        for padding in [Padding::Same, Padding::Valid] {
            let want = conv2d_with(
                &serial,
                backend_for(BackendKind::Scalar),
                &input,
                &weight,
                &bias,
                padding,
            );
            let grad_out = Tensor::from_fn(want.dims(), |_| next());
            let want_bwd = conv2d_backward_with(
                &serial,
                backend_for(BackendKind::Scalar),
                &input,
                &weight,
                &grad_out,
                padding,
            );
            for kind in BackendKind::ALL {
                for pool in [&serial, &four] {
                    let be = backend_for(kind);
                    let got = conv2d_with(pool, be, &input, &weight, &bias, padding);
                    assert_eq!(got, want, "forward {kind:?}");
                    let got_bwd =
                        conv2d_backward_with(pool, be, &input, &weight, &grad_out, padding);
                    assert_eq!(got_bwd.grad_input, want_bwd.grad_input, "{kind:?}");
                    assert_eq!(got_bwd.grad_weight, want_bwd.grad_weight, "{kind:?}");
                    assert_eq!(got_bwd.grad_bias, want_bwd.grad_bias, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn nan_input_poisons_output_even_under_zero_weights() {
        // Regression test for the removed zero-skip branch: an all-zero
        // kernel must still propagate NaN from the input (0 × NaN = NaN).
        let mut input = Tensor::zeros([1, 1, 3, 3]);
        *input.at_mut(&[0, 0, 1, 1]) = f32::NAN;
        let weight = Tensor::zeros([1, 1, 3, 3]);
        let bias = Tensor::zeros([1]);
        let out = conv2d(&input, &weight, &bias, Padding::Same);
        assert!(out.at(&[0, 0, 1, 1]).is_nan());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut seed = 99u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f32 / 500.0 - 1.0
        };
        let input = Tensor::from_fn([1, 2, 4, 4], |_| next());
        let weight = Tensor::from_fn([2, 2, 3, 3], |_| next());
        let bias = Tensor::from_fn([2], |_| next());
        let padding = Padding::Same;

        // Scalar loss: sum of outputs; upstream gradient is all-ones.
        let out = conv2d(&input, &weight, &bias, padding);
        let grad_out = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &grad_out, padding);

        let eps = 1e-2f32;
        // Check a sample of input coordinates.
        for &flat in &[0usize, 5, 13, 21, 31] {
            let mut perturbed = input.clone();
            perturbed.data_mut()[flat] += eps;
            let up = conv2d(&perturbed, &weight, &bias, padding).sum();
            perturbed.data_mut()[flat] -= 2.0 * eps;
            let down = conv2d(&perturbed, &weight, &bias, padding).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = grads.grad_input.data()[flat];
            assert!(
                (fd - an).abs() < 1e-2,
                "input grad mismatch at {flat}: fd={fd} analytic={an}"
            );
        }
        // Check a sample of weight coordinates.
        for &flat in &[0usize, 7, 17, 35] {
            let mut perturbed = weight.clone();
            perturbed.data_mut()[flat] += eps;
            let up = conv2d(&input, &perturbed, &bias, padding).sum();
            perturbed.data_mut()[flat] -= 2.0 * eps;
            let down = conv2d(&input, &perturbed, &bias, padding).sum();
            let fd = (up - down) / (2.0 * eps);
            let an = grads.grad_weight.data()[flat];
            assert!(
                (fd - an).abs() < 2e-2,
                "weight grad mismatch at {flat}: fd={fd} analytic={an}"
            );
        }
        // Bias gradient is the number of output pixels per channel.
        let px = (out.numel() / out.dims()[1]) as f32;
        for &gb in grads.grad_bias.data() {
            assert!((gb - px).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        conv2d(
            &Tensor::zeros([1, 2, 4, 4]),
            &Tensor::zeros([1, 3, 3, 3]),
            &Tensor::zeros([1]),
            Padding::Same,
        );
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn same_padding_rejects_even_kernels() {
        Padding::Same.amounts(2, 2);
    }
}
