//! Property-based tests of the tensor kernels: algebraic identities that
//! must hold for *any* input, not just hand-picked cases.

use proptest::prelude::*;

use sl_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, matmul, matmul_a_bt, matmul_at_b, transpose, Padding,
    Tensor,
};

/// Strategy: a tensor of the given shape with bounded finite values.
fn tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).unwrap())
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- elementwise algebra ------------------------------------------------

    #[test]
    fn add_commutes(a in tensor(vec![3, 5]), b in tensor(vec![3, 5])) {
        prop_assert!(close(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn add_sub_round_trips(a in tensor(vec![4, 4]), b in tensor(vec![4, 4])) {
        prop_assert!(close(&a.add(&b).sub(&b), &a, 1e-5));
    }

    #[test]
    fn scale_distributes_over_add(a in tensor(vec![8]), b in tensor(vec![8]), s in -5.0f32..5.0) {
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn sum_is_linear(a in tensor(vec![16]), s in -3.0f32..3.0) {
        let scaled = a.scale(s).sum();
        prop_assert!((scaled - s * a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs() * s.abs()));
    }

    // ---- matmul -------------------------------------------------------------

    #[test]
    fn matmul_distributes(a in tensor(vec![3, 4]), b in tensor(vec![4, 2]), c in tensor(vec![4, 2])) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_transpose_identity(a in tensor(vec![3, 4]), b in tensor(vec![4, 2])) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = transpose(&matmul(&a, &b));
        let rhs = matmul(&transpose(&b), &transpose(&a));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn fused_variants_match_explicit(
        a in tensor(vec![5, 3]),
        b in tensor(vec![5, 4]),
        c in tensor(vec![2, 4]),
    ) {
        prop_assert!(close(&matmul_at_b(&a, &b), &matmul(&transpose(&a), &b), 1e-4));
        prop_assert!(close(&matmul_a_bt(&b, &c), &matmul(&b, &transpose(&c)), 1e-4));
    }

    // ---- convolution --------------------------------------------------------

    #[test]
    fn conv_is_linear_in_input(
        x in tensor(vec![1, 1, 6, 6]),
        y in tensor(vec![1, 1, 6, 6]),
        w in tensor(vec![2, 1, 3, 3]),
    ) {
        let bias = Tensor::zeros([2]);
        let lhs = conv2d(&x.add(&y), &w, &bias, Padding::Same);
        let rhs = conv2d(&x, &w, &bias, Padding::Same).add(&conv2d(&y, &w, &bias, Padding::Same));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn conv_valid_smaller_than_same(x in tensor(vec![1, 1, 8, 8]), w in tensor(vec![1, 1, 3, 3])) {
        let bias = Tensor::zeros([1]);
        let same = conv2d(&x, &w, &bias, Padding::Same);
        let valid = conv2d(&x, &w, &bias, Padding::Valid);
        prop_assert_eq!(same.dims(), &[1, 1, 8, 8]);
        prop_assert_eq!(valid.dims(), &[1, 1, 6, 6]);
        // The valid output equals the same-padded output's interior.
        for oy in 0..6 {
            for ox in 0..6 {
                let s = same.at(&[0, 0, oy + 1, ox + 1]);
                let v = valid.at(&[0, 0, oy, ox]);
                prop_assert!((s - v).abs() < 1e-4);
            }
        }
    }

    // ---- pooling ------------------------------------------------------------

    #[test]
    fn pooling_preserves_mean(x in tensor(vec![2, 1, 8, 8])) {
        let pooled = avg_pool2d(&x, 4, 2);
        prop_assert!((pooled.mean() - x.mean()).abs() < 1e-4);
    }

    #[test]
    fn pooling_bounded_by_extremes(x in tensor(vec![1, 2, 4, 4])) {
        let pooled = avg_pool2d(&x, 2, 2);
        prop_assert!(pooled.max() <= x.max() + 1e-6);
        prop_assert!(pooled.min() >= x.min() - 1e-6);
    }

    #[test]
    fn pool_backward_conserves_mass(g in tensor(vec![1, 1, 2, 2])) {
        let gx = avg_pool2d_backward(&[1, 1, 8, 8], &g, 4, 4);
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-4);
    }

    // ---- reshape / reductions ----------------------------------------------

    #[test]
    fn reshape_preserves_sum(x in tensor(vec![3, 8])) {
        prop_assert_eq!(x.reshape([24]).sum(), x.sum());
        prop_assert_eq!(x.reshape([2, 3, 4]).sum(), x.sum());
    }

    #[test]
    fn variance_nonnegative_and_zero_for_constant(x in tensor(vec![10]), c in -5.0f32..5.0) {
        prop_assert!(x.variance() >= 0.0);
        let constant = Tensor::full([10], c);
        prop_assert!(constant.variance().abs() < 1e-9);
    }
}
