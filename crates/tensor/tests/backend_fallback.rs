//! End-to-end `SLM_BACKEND` fallback: an unusable value must not fail
//! the process — the resolver warns and uses the auto-detected backend,
//! and compute stays bitwise identical to the scalar reference.
//!
//! This lives in its own integration-test binary because the global
//! backend is resolved once per process from the environment: the
//! variable has to be set before anything touches `global_backend`,
//! which no in-process `#[test]` ordering inside a shared binary can
//! guarantee. (`resolve_backend` itself is pure and unit-tested in
//! `sl-tensor::backend`; this checks the wiring through the env var.)

use sl_tensor::{
    backend_for, global_backend_kind, matmul_in, matmul_with, resolve_backend, simd_supported,
    BackendKind, ComputePool, Tensor,
};

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn garbage_backend_value_warns_falls_back_to_auto_and_computes() {
    // Before the first global_backend use in this process.
    std::env::set_var("SLM_BACKEND", "definitely-not-a-backend");

    let (want_kind, warning) = resolve_backend(Some("definitely-not-a-backend"), simd_supported());
    assert!(warning.is_some(), "unusable value must carry a warning");
    assert_eq!(
        global_backend_kind(),
        want_kind,
        "global selection must match the pure resolver's fallback"
    );
    // Auto never picks the scalar reference path.
    assert_ne!(global_backend_kind(), BackendKind::Scalar);

    // The fallback backend still computes correct (scalar-identical) bits.
    let one = ComputePool::new(1);
    let m = 13;
    let k = 29;
    let n = 31;
    let a = Tensor::from_parts(
        [m, k],
        (0..m * k)
            .map(|i| (i as f32 * 0.618_034) % 3.7 - 1.4)
            .collect(),
    );
    let b = Tensor::from_parts(
        [k, n],
        (0..k * n)
            .map(|i| (i as f32 * 0.414_214) % 2.9 - 1.1)
            .collect(),
    );
    assert_eq!(
        bits(&matmul_in(&one, &a, &b)),
        bits(&matmul_with(&one, backend_for(BackendKind::Scalar), &a, &b))
    );
}
