//! Bitwise equivalence of the compute backends against their serial
//! execution: for *any* shape — including ragged tiles that don't fill
//! the GEMM micro-kernel's MR/NB/JB blocks or the pool's row chunks —
//! running on 2, 3 or 8 threads must produce exactly the bits the
//! one-thread pool produces, and the `scalar` / `pooled` / `simd`
//! backends must all produce exactly the bits of the scalar reference.
//! `scripts/verify.sh` runs this suite under every
//! `SLM_BACKEND={scalar,pooled,simd}` × `SLM_THREADS={1,4}` pairing so
//! the process-wide pool and backend selection are exercised end to end
//! (see `global_pool_matches_explicit_serial`).
//!
//! Operand data is sampled at the maximum size and sliced down to the
//! sampled shape (the strategy language here has no dependent sizing),
//! so every case still sees fresh random values.

use std::sync::OnceLock;

use proptest::prelude::*;

use sl_tensor::{
    backend_for, conv2d_backward_in, conv2d_backward_with, conv2d_in, conv2d_with, matmul_a_bt_in,
    matmul_a_bt_with, matmul_at_b_in, matmul_at_b_with, matmul_in, matmul_with, BackendKind,
    ComputePool, Padding, Tensor,
};

/// One pool per tested width, shared across all proptest cases (workers
/// are detached threads; respawning them per case would dominate the
/// suite's runtime).
fn pools() -> &'static [ComputePool] {
    static POOLS: OnceLock<Vec<ComputePool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 3, 8].map(ComputePool::new).into_iter().collect())
}

fn serial() -> &'static ComputePool {
    &pools()[0]
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// First `shape.numel()` values of `data` as a tensor.
fn slice_tensor(shape: Vec<usize>, data: &[f32]) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, data[..n].to_vec()).unwrap()
}

// Matmul dims span the blocking edges: rows crossing the MR=4 micro-tile
// and the 16-row job chunks, columns crossing the JB=8 and NB=64 blocks.
const M_MAX: usize = 37;
const K_MAX: usize = 19;
const N_MAX: usize = 70;
const A_MAX: usize = M_MAX * K_MAX;
const B_MAX: usize = K_MAX * N_MAX;

fn mm_case() -> impl Strategy<Value = ((usize, usize, usize), Vec<f32>)> {
    (
        (1usize..=M_MAX, 1usize..=K_MAX, 1usize..=N_MAX),
        proptest::collection::vec(-10.0f32..10.0, A_MAX + B_MAX),
    )
}

// Conv dims cover multi-image batches (one pool job per image), 1×1 and
// 3×3 kernels, and both paddings.
const X_MAX: usize = 4 * 3 * 9 * 9;
const W_MAX: usize = 4 * 3 * 3 * 3;

#[allow(clippy::type_complexity)]
fn conv_case(
) -> impl Strategy<Value = ((usize, usize, usize, usize, usize, usize, usize), Vec<f32>)> {
    (
        (
            1usize..=4, // batch
            1usize..=3, // in channels
            3usize..=9, // height
            3usize..=9, // width
            1usize..=4, // out channels
            0usize..=1, // kernel selector: 1×1 or 3×3
            0usize..=1, // padding selector: Same or Valid
        ),
        proptest::collection::vec(-10.0f32..10.0, X_MAX + W_MAX + 4),
    )
}

fn conv_operands(
    dims: (usize, usize, usize, usize, usize, usize, usize),
    data: &[f32],
) -> (Tensor, Tensor, Tensor, Padding) {
    let (n, c_in, h, w, c_out, kc, pc) = dims;
    let k = if kc == 0 { 1 } else { 3 };
    let pad = if pc == 0 {
        Padding::Same
    } else {
        Padding::Valid
    };
    let x = slice_tensor(vec![n, c_in, h, w], data);
    let wt = slice_tensor(vec![c_out, c_in, k, k], &data[X_MAX..]);
    let bias = slice_tensor(vec![c_out], &data[X_MAX + W_MAX..]);
    (x, wt, bias, pad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bitwise_thread_count_independent(case in mm_case()) {
        let ((m, k, n), data) = case;
        let a = slice_tensor(vec![m, k], &data);
        let b = slice_tensor(vec![k, n], &data[A_MAX..]);
        let want = bits(&matmul_in(serial(), &a, &b));
        for pool in &pools()[1..] {
            prop_assert_eq!(&bits(&matmul_in(pool, &a, &b)), &want);
        }
    }

    #[test]
    fn matmul_at_b_bitwise_thread_count_independent(case in mm_case()) {
        let ((m, k, n), data) = case;
        // A is [k, m]: the transposed-A product used by weight gradients.
        let a = slice_tensor(vec![k, m], &data);
        let b = slice_tensor(vec![k, n], &data[A_MAX..]);
        let want = bits(&matmul_at_b_in(serial(), &a, &b));
        for pool in &pools()[1..] {
            prop_assert_eq!(&bits(&matmul_at_b_in(pool, &a, &b)), &want);
        }
    }

    #[test]
    fn matmul_a_bt_bitwise_thread_count_independent(case in mm_case()) {
        let ((m, k, n), data) = case;
        // B is [n, k]: the transposed-B product used by input gradients.
        let a = slice_tensor(vec![m, k], &data);
        let b = slice_tensor(vec![n, k], &data[A_MAX..]);
        let want = bits(&matmul_a_bt_in(serial(), &a, &b));
        for pool in &pools()[1..] {
            prop_assert_eq!(&bits(&matmul_a_bt_in(pool, &a, &b)), &want);
        }
    }

    #[test]
    fn matmul_family_bitwise_backend_independent(case in mm_case()) {
        // Every backend, at every pool width, must reproduce the scalar
        // reference bit for bit on all three GEMM orientations.
        let ((m, k, n), data) = case;
        let a = slice_tensor(vec![m, k], &data);
        let b = slice_tensor(vec![k, n], &data[A_MAX..]);
        let at = slice_tensor(vec![k, m], &data);
        let bt = slice_tensor(vec![n, k], &data[A_MAX..]);
        let scalar = backend_for(BackendKind::Scalar);
        let want_ab = bits(&matmul_with(serial(), scalar, &a, &b));
        let want_atb = bits(&matmul_at_b_with(serial(), scalar, &at, &b));
        let want_abt = bits(&matmul_a_bt_with(serial(), scalar, &a, &bt));
        for kind in BackendKind::ALL {
            let be = backend_for(kind);
            for pool in pools() {
                prop_assert_eq!(&bits(&matmul_with(pool, be, &a, &b)), &want_ab);
                prop_assert_eq!(&bits(&matmul_at_b_with(pool, be, &at, &b)), &want_atb);
                prop_assert_eq!(&bits(&matmul_a_bt_with(pool, be, &a, &bt)), &want_abt);
            }
        }
    }

    #[test]
    fn conv2d_family_bitwise_backend_independent(case in conv_case()) {
        let (dims, data) = case;
        let (x, w, bias, pad) = conv_operands(dims, &data);
        let scalar = backend_for(BackendKind::Scalar);
        let g = conv2d_with(serial(), scalar, &x, &w, &bias, pad);
        let want_bwd = conv2d_backward_with(serial(), scalar, &x, &w, &g, pad);
        for kind in BackendKind::ALL {
            let be = backend_for(kind);
            for pool in pools() {
                prop_assert_eq!(&bits(&conv2d_with(pool, be, &x, &w, &bias, pad)), &bits(&g));
                let got = conv2d_backward_with(pool, be, &x, &w, &g, pad);
                prop_assert_eq!(&bits(&got.grad_input), &bits(&want_bwd.grad_input));
                prop_assert_eq!(&bits(&got.grad_weight), &bits(&want_bwd.grad_weight));
                prop_assert_eq!(&bits(&got.grad_bias), &bits(&want_bwd.grad_bias));
            }
        }
    }

    #[test]
    fn conv2d_bitwise_thread_count_independent(case in conv_case()) {
        let (dims, data) = case;
        let (x, w, bias, pad) = conv_operands(dims, &data);
        let want = bits(&conv2d_in(serial(), &x, &w, &bias, pad));
        for pool in &pools()[1..] {
            prop_assert_eq!(&bits(&conv2d_in(pool, &x, &w, &bias, pad)), &want);
        }
    }

    #[test]
    fn conv2d_backward_bitwise_thread_count_independent(case in conv_case()) {
        let (dims, data) = case;
        let (x, w, bias, pad) = conv_operands(dims, &data);
        let g = conv2d_in(serial(), &x, &w, &bias, pad);
        let want = conv2d_backward_in(serial(), &x, &w, &g, pad);
        for pool in &pools()[1..] {
            let got = conv2d_backward_in(pool, &x, &w, &g, pad);
            prop_assert_eq!(&bits(&got.grad_input), &bits(&want.grad_input));
            prop_assert_eq!(&bits(&got.grad_weight), &bits(&want.grad_weight));
            prop_assert_eq!(&bits(&got.grad_bias), &bits(&want.grad_bias));
        }
    }
}

/// Shape-derived data: irrational-step ramp so no two elements repeat
/// and accumulation-order differences cannot cancel out.
fn deterministic(shape: Vec<usize>, salt: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|i| {
            let x = (i as f32 + salt as f32 * 0.37).mul_add(0.618_034, -0.5 * n as f32);
            (x % 7.3) - 2.1
        })
        .collect();
    Tensor::from_vec(shape, data).unwrap()
}

/// The process-wide pool (whatever width `SLM_THREADS` selected) agrees
/// bitwise with an explicit one-thread pool. Running the suite under
/// `SLM_THREADS=1` and `SLM_THREADS=4` turns this into the end-to-end
/// determinism check that `scripts/verify.sh` relies on.
/// Whatever backend `SLM_BACKEND` selected for this process, the plain
/// `_in` entry points must reproduce the scalar reference bit for bit —
/// this is what makes the per-backend verify.sh runs meaningful.
#[test]
fn global_backend_matches_scalar_reference() {
    let one = ComputePool::new(1);
    let scalar = backend_for(BackendKind::Scalar);
    let a = deterministic(vec![23, 11], 7);
    let b = deterministic(vec![11, 66], 8);
    assert_eq!(
        bits(&matmul_in(&one, &a, &b)),
        bits(&matmul_with(&one, scalar, &a, &b))
    );
    let x = deterministic(vec![3, 2, 8, 7], 9);
    let w = deterministic(vec![4, 2, 3, 3], 10);
    let bias = deterministic(vec![4], 11);
    assert_eq!(
        bits(&conv2d_in(&one, &x, &w, &bias, Padding::Same)),
        bits(&conv2d_with(&one, scalar, &x, &w, &bias, Padding::Same))
    );
}

#[test]
fn global_pool_matches_explicit_serial() {
    let global = ComputePool::global();
    let one = ComputePool::new(1);

    let a = deterministic(vec![23, 11], 7);
    let b = deterministic(vec![11, 66], 8);
    assert_eq!(
        bits(&matmul_in(global, &a, &b)),
        bits(&matmul_in(&one, &a, &b))
    );

    let x = deterministic(vec![3, 2, 8, 7], 9);
    let w = deterministic(vec![4, 2, 3, 3], 10);
    let bias = deterministic(vec![4], 11);
    for pad in [Padding::Same, Padding::Valid] {
        let fg = conv2d_in(global, &x, &w, &bias, pad);
        let fs = conv2d_in(&one, &x, &w, &bias, pad);
        assert_eq!(bits(&fg), bits(&fs));
        let gg = conv2d_backward_in(global, &x, &w, &fg, pad);
        let gs = conv2d_backward_in(&one, &x, &w, &fs, pad);
        assert_eq!(bits(&gg.grad_input), bits(&gs.grad_input));
        assert_eq!(bits(&gg.grad_weight), bits(&gs.grad_weight));
        assert_eq!(bits(&gg.grad_bias), bits(&gs.grad_bias));
    }
}
