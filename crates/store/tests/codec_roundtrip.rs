//! Property-based tests of the `sl-store` codec chains and the
//! checksummed array paths: every codec must round-trip bitwise for the
//! inputs it accepts, over ragged shapes and adversarial bit patterns,
//! and any corruption of stored bytes must surface as a *typed* error —
//! never a panic, never silently-wrong values.

use proptest::prelude::*;

use sl_store::{read_array, write_array, Codec, MemStorage, StoreError, StoreMetrics};
use sl_tensor::ComputePool;

/// Arbitrary `f32` bit patterns: NaN payloads, infinities, subnormals,
/// negative zero — everything the raw and delta+rle codecs must carry.
fn any_bits() -> impl Strategy<Value = f32> {
    (0u32..=u32::MAX).prop_map(f32::from_bits)
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_round_trips_any_bits(vals in proptest::collection::vec(any_bits(), 0..96), item_len in 1usize..9) {
        let enc = Codec::Raw.encode(&vals, item_len).unwrap();
        prop_assert_eq!(enc.len(), vals.len() * 4);
        let dec = Codec::Raw.decode(&enc, vals.len(), item_len).unwrap();
        prop_assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn delta_rle_round_trips_any_bits(
        vals in proptest::collection::vec(any_bits(), 0..96),
        item_len in 1usize..9,
    ) {
        let enc = Codec::DeltaRle.encode(&vals, item_len).unwrap();
        let dec = Codec::DeltaRle.decode(&enc, vals.len(), item_len).unwrap();
        prop_assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn delta_rle_collapses_all_constant_arrays(
        bits in 0u32..=u32::MAX,
        item_len in 1usize..9,
        items in 4usize..40,
    ) {
        let vals = vec![f32::from_bits(bits); item_len * items];
        let enc = Codec::DeltaRle.encode(&vals, item_len).unwrap();
        // Every item past the first deltas to zeros; the encoding must
        // beat raw on anything bigger than a couple of items.
        prop_assert!(enc.len() < vals.len() * 4, "{} >= {}", enc.len(), vals.len() * 4);
        let dec = Codec::DeltaRle.decode(&enc, vals.len(), item_len).unwrap();
        prop_assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn bitpack_round_trips_grid_values(
        bit_depth in 1usize..13,
        levels in proptest::collection::vec(0u32..65_536, 0..96),
    ) {
        let max = (1u32 << bit_depth) - 1;
        let vals: Vec<f32> = levels.iter().map(|&k| (k % (max + 1)) as f32 / max as f32).collect();
        let codec = Codec::Bitpack { bit_depth };
        let enc = codec.encode(&vals, 1).unwrap();
        prop_assert_eq!(enc.len(), (vals.len() * bit_depth).div_ceil(8));
        let dec = codec.decode(&enc, vals.len(), 1).unwrap();
        prop_assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn bitpack_rejects_non_finite_and_off_grid(bit_depth in 1usize..13, bits in 0u32..=u32::MAX) {
        let q = f32::from_bits(bits);
        let codec = Codec::Bitpack { bit_depth };
        match codec.encode(&[q], 1) {
            // Accepted values must be exactly representable levels.
            Ok(enc) => {
                let dec = codec.decode(&enc, 1, 1).unwrap();
                prop_assert_eq!(dec[0].to_bits(), q.to_bits());
            }
            Err(StoreError::OffGrid { value, .. }) => prop_assert_eq!(value.to_bits(), bits),
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    #[test]
    fn truncated_chunk_bytes_are_a_typed_error(
        vals in proptest::collection::vec(any_bits(), 1..64),
        item_len in 1usize..5,
        cut in 0usize..256,
    ) {
        for codec in [Codec::Raw, Codec::DeltaRle] {
            let enc = codec.encode(&vals, item_len).unwrap();
            prop_assume!(!enc.is_empty());
            let cut = cut % enc.len(); // strict prefix
            match codec.decode(&enc[..cut], vals.len(), item_len) {
                Err(StoreError::Corrupt(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error {}", other),
                Ok(_) => prop_assert!(false, "truncated chunk decoded"),
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        junk in proptest::collection::vec(0u8..=255, 0..96),
        count in 0usize..64,
        item_len in 1usize..5,
    ) {
        // Any outcome is fine except a panic or a silently-wrong length.
        for codec in [Codec::Raw, Codec::Bitpack { bit_depth: 7 }, Codec::DeltaRle] {
            if let Ok(dec) = codec.decode(&junk, count, item_len) {
                prop_assert_eq!(dec.len(), count);
            }
        }
    }

    #[test]
    fn flipped_stored_byte_is_a_checksum_error(
        vals in proptest::collection::vec(any_bits(), 1..64),
        item_len in 1usize..5,
        chunk_items in 1usize..7,
        which in 0usize..1024,
        flip in 1u8..=255,
    ) {
        // Whole-array path: write to memory storage, corrupt one chunk
        // byte, and the read must fail with the chunk's checksum error.
        let items = vals.len() / item_len;
        prop_assume!(items > 0);
        let vals = &vals[..items * item_len];
        let mut storage = MemStorage::new();
        let mut metrics = StoreMetrics::default();
        let pool = ComputePool::global();
        write_array(&mut storage, "a", item_len, vals, chunk_items, Codec::DeltaRle, pool, &mut metrics)
            .unwrap();
        let chunks: Vec<String> = storage
            .names()
            .into_iter()
            .filter(|n| n.contains("chunk"))
            .collect();
        let victim = &chunks[which % chunks.len()];
        let object = storage.object_mut(victim).unwrap();
        prop_assume!(!object.is_empty());
        let at = which % object.len();
        object[at] ^= flip;
        match read_array(&storage, "a", pool, &mut metrics) {
            Err(StoreError::Checksum { chunk, .. }) => prop_assert!(chunk < chunks.len()),
            Err(other) => prop_assert!(false, "unexpected error {}", other),
            Ok(_) => prop_assert!(false, "corrupted array read back"),
        }
    }

    #[test]
    fn full_array_round_trips_through_memory_storage(
        vals in proptest::collection::vec(any_bits(), 0..128),
        item_len in 1usize..5,
        chunk_items in 1usize..9,
    ) {
        let items = vals.len() / item_len;
        let vals = &vals[..items * item_len];
        let pool = ComputePool::global();
        for codec in [Codec::Raw, Codec::DeltaRle] {
            let mut storage = MemStorage::new();
            let mut metrics = StoreMetrics::default();
            write_array(&mut storage, "a", item_len, vals, chunk_items, codec, pool, &mut metrics)
                .unwrap();
            let (manifest, back) = read_array(&storage, "a", pool, &mut metrics).unwrap();
            prop_assert_eq!(manifest.items, items);
            prop_assert!(bits_eq(vals, &back));
        }
    }
}
