//! Typed store errors.
//!
//! Every failure mode of the chunked array store is a distinct variant:
//! corruption is *detected* (checksums, length accounting, codec stream
//! validation) and surfaces as a typed error — never a panic, never a
//! silently-garbage tensor.

use std::io;

/// Errors from the chunked array store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying storage I/O failure.
    Io(io::Error),
    /// A named object is missing from the storage backend.
    Missing(String),
    /// The manifest is structurally invalid (bad JSON, missing fields,
    /// inconsistent counts).
    Manifest(String),
    /// A chunk's FNV-1a checksum does not match the manifest.
    Checksum {
        /// Index of the offending chunk.
        chunk: usize,
        /// Checksum recorded in the manifest.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// Encoded chunk bytes are structurally invalid for the codec
    /// (truncated stream, bad op code, wrong decoded length).
    Corrupt(String),
    /// A value handed to the bitpack encoder is not on the `R`-bit
    /// quantizer grid (only grid values are representable).
    OffGrid {
        /// The offending value.
        value: f32,
        /// The codec's bit depth.
        bit_depth: usize,
    },
    /// The requested item range exceeds the array.
    Range(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Missing(name) => write!(f, "store object {name:?} not found"),
            StoreError::Manifest(what) => write!(f, "bad store manifest: {what}"),
            StoreError::Checksum {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "chunk {chunk} checksum mismatch: manifest {expected:016x}, data {actual:016x}"
            ),
            StoreError::Corrupt(what) => write!(f, "corrupt chunk data: {what}"),
            StoreError::OffGrid { value, bit_depth } => write!(
                f,
                "value {value} is not on the {bit_depth}-bit quantizer grid"
            ),
            StoreError::Range(what) => write!(f, "store range error: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
