//! Append-only activation log.
//!
//! Records batches of quantized cut-layer activations as they cross the
//! simulated uplink, for *offline* privacy audits (`sl-privacy` reads
//! the log back next to the source frames and scores the leakage).
//!
//! Each [`ActivationLog::append`] writes exactly one new chunk (sized by
//! whatever the batch carried — the manifest supports ragged chunks) and
//! then rewrites the manifest, so the log on storage is always a valid,
//! fully-checksummed array: readers use the ordinary
//! [`read_array`](crate::read_array) / [`read_items`](crate::read_items)
//! paths, and a crash between the two writes loses at most the final
//! batch.

use crate::codec::Codec;
use crate::error::StoreError;
use crate::manifest::{fnv1a_64, ChunkInfo, Manifest};
use crate::metrics::StoreMetrics;
use crate::storage::{StorageRead, StorageWrite};

/// An append-only chunked array (see the module docs).
#[derive(Debug)]
pub struct ActivationLog<S> {
    storage: S,
    manifest: Manifest,
}

impl<S: StorageWrite> ActivationLog<S> {
    /// Creates a fresh, empty log called `name` (committing an empty
    /// manifest immediately).
    pub fn create(
        mut storage: S,
        name: &str,
        item_len: usize,
        codec: Codec,
    ) -> Result<Self, StoreError> {
        assert!(item_len > 0, "ActivationLog: item_len must be positive");
        let manifest = Manifest {
            array: name.to_string(),
            item_len,
            items: 0,
            chunk_items: 0,
            codec,
            chunks: Vec::new(),
        };
        storage.put(&Manifest::object_name(name), manifest.to_json().as_bytes())?;
        Ok(ActivationLog { storage, manifest })
    }

    /// Reopens an existing log to continue appending.
    pub fn open(storage: S, name: &str) -> Result<Self, StoreError> {
        let manifest = crate::array::read_manifest(&storage, name)?;
        Ok(ActivationLog { storage, manifest })
    }

    /// Appends one batch (`values.len() / item_len` items) as a new
    /// chunk and commits the updated manifest.
    pub fn append(&mut self, values: &[f32], metrics: &mut StoreMetrics) -> Result<(), StoreError> {
        assert_eq!(
            values.len() % self.manifest.item_len,
            0,
            "ActivationLog: {} values do not tile item_len {}",
            values.len(),
            self.manifest.item_len
        );
        if values.is_empty() {
            return Ok(());
        }
        let index = self.manifest.chunks.len();
        let file = Manifest::chunk_name(&self.manifest.array, index);
        let encoded = self.manifest.codec.encode(values, self.manifest.item_len)?;
        self.storage.put(&file, &encoded)?;
        self.manifest.chunks.push(ChunkInfo {
            file,
            items: values.len() / self.manifest.item_len,
            bytes: encoded.len(),
            checksum: fnv1a_64(&encoded),
        });
        self.manifest.items += values.len() / self.manifest.item_len;
        self.storage.put(
            &Manifest::object_name(&self.manifest.array),
            self.manifest.to_json().as_bytes(),
        )?;
        metrics.log_appends += 1;
        metrics.chunks_written += 1;
        metrics.bytes_raw += (values.len() * 4) as u64;
        metrics.bytes_encoded += encoded.len() as u64;
        Ok(())
    }

    /// Items logged so far.
    pub fn items(&self) -> usize {
        self.manifest.items
    }

    /// The log's current manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Consumes the log, returning the storage backend (e.g. to read
    /// the array back through [`read_array`](crate::read_array)).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

impl<S: StorageRead> ActivationLog<S> {
    /// Reads the whole log back in append order.
    pub fn read_all(
        &self,
        pool: &sl_tensor::ComputePool,
        metrics: &mut StoreMetrics,
    ) -> Result<Vec<f32>, StoreError> {
        crate::array::read_items(
            &self.storage,
            &self.manifest,
            0,
            self.manifest.items,
            pool,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use sl_tensor::ComputePool;

    #[test]
    fn appends_accumulate_and_read_back_in_order() {
        let mut metrics = StoreMetrics::default();
        let mut log = ActivationLog::create(MemStorage::new(), "act", 4, Codec::Raw).unwrap();
        log.append(&[1.0; 8], &mut metrics).unwrap();
        log.append(&[], &mut metrics).unwrap();
        log.append(&[2.0; 4], &mut metrics).unwrap();
        assert_eq!(log.items(), 3);
        assert_eq!(metrics.log_appends, 2);
        let all = log.read_all(ComputePool::global(), &mut metrics).unwrap();
        assert_eq!(all, [[1.0f32; 8].as_slice(), &[2.0; 4]].concat());
    }

    #[test]
    fn reopen_continues_the_log() {
        let mut metrics = StoreMetrics::default();
        let mut log = ActivationLog::create(MemStorage::new(), "act", 2, Codec::DeltaRle).unwrap();
        log.append(&[1.0, 2.0], &mut metrics).unwrap();
        let storage = log.into_storage();
        let mut log = ActivationLog::open(storage, "act").unwrap();
        log.append(&[3.0, 4.0], &mut metrics).unwrap();
        assert_eq!(log.items(), 2);
        let all = log.read_all(ComputePool::global(), &mut metrics).unwrap();
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bitpack_log_accepts_only_grid_values() {
        let mut metrics = StoreMetrics::default();
        let mut log =
            ActivationLog::create(MemStorage::new(), "act", 1, Codec::Bitpack { bit_depth: 4 })
                .unwrap();
        assert!(log.append(&[0.5], &mut metrics).is_err()); // 0.5 not on the 15-level grid
        log.append(&[3.0 / 15.0], &mut metrics).unwrap();
        assert_eq!(log.items(), 1);
    }
}
