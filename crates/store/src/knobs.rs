//! `SLM_STORE_*` environment knobs.
//!
//! Same contract as every other workspace knob (README § Environment
//! knobs): unset means the default, an unusable value warns through
//! `sl_telemetry` and falls back — never a silent ignore. Both knobs
//! shape *how* arrays are stored, never *what* decodes back out.

use sl_telemetry::Telemetry;

use crate::codec::Codec;

/// Default target `f32` values per chunk when `SLM_STORE_CHUNK` is
/// unset.
pub const DEFAULT_CHUNK_VALUES: usize = 65_536;

/// Target `f32` values per chunk from `SLM_STORE_CHUNK` (default
/// [`DEFAULT_CHUNK_VALUES`]); unusable values warn and fall back.
pub fn configured_chunk_values() -> usize {
    let Ok(raw) = std::env::var("SLM_STORE_CHUNK") else {
        return DEFAULT_CHUNK_VALUES;
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            Telemetry::disabled().warn(&format!(
                "unusable SLM_STORE_CHUNK value {raw:?} (expected a positive value count); \
                 using {DEFAULT_CHUNK_VALUES}"
            ));
            DEFAULT_CHUNK_VALUES
        }
    }
}

/// Items per chunk for items of `item_len` values, honouring
/// `SLM_STORE_CHUNK` (at least one item per chunk).
pub fn configured_chunk_items(item_len: usize) -> usize {
    (configured_chunk_values() / item_len.max(1)).max(1)
}

/// The chunk codec from `SLM_STORE_CODEC` (default: `default`);
/// unusable values warn and fall back.
pub fn configured_codec(default: Codec) -> Codec {
    let Ok(raw) = std::env::var("SLM_STORE_CODEC") else {
        return default;
    };
    match Codec::parse(&raw) {
        Ok(codec) => codec,
        Err(e) => {
            Telemetry::disabled().warn(&format!(
                "unusable SLM_STORE_CODEC value {raw:?} ({e}); using {}",
                default.name()
            ));
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; keep them in one test so they
    // never race each other.
    #[test]
    fn knobs_parse_defaults_and_overrides() {
        std::env::remove_var("SLM_STORE_CHUNK");
        std::env::remove_var("SLM_STORE_CODEC");
        assert_eq!(configured_chunk_values(), DEFAULT_CHUNK_VALUES);
        assert_eq!(configured_chunk_items(100), DEFAULT_CHUNK_VALUES / 100);
        assert_eq!(configured_chunk_items(usize::MAX), 1);
        assert_eq!(configured_codec(Codec::Raw), Codec::Raw);

        std::env::set_var("SLM_STORE_CHUNK", "1024");
        std::env::set_var("SLM_STORE_CODEC", "bitpack6");
        assert_eq!(configured_chunk_values(), 1024);
        assert_eq!(configured_chunk_items(100), 10);
        assert_eq!(
            configured_codec(Codec::Raw),
            Codec::Bitpack { bit_depth: 6 }
        );

        std::env::set_var("SLM_STORE_CHUNK", "zero");
        std::env::set_var("SLM_STORE_CODEC", "lzma");
        assert_eq!(configured_chunk_values(), DEFAULT_CHUNK_VALUES);
        assert_eq!(configured_codec(Codec::DeltaRle), Codec::DeltaRle);

        std::env::remove_var("SLM_STORE_CHUNK");
        std::env::remove_var("SLM_STORE_CODEC");
    }
}
