//! Pluggable chunk codecs.
//!
//! Every codec maps a slice of `f32` values to bytes and back
//! **bitwise-losslessly** for the inputs it accepts:
//!
//! * [`Codec::Raw`] — little-endian IEEE-754 bits, any input.
//! * [`Codec::Bitpack`] — `R` bits per value, MSB-first, for values on
//!   the `2^R`-level quantizer grid `k / (2^R − 1)` (the cut-layer
//!   activation alphabet; same packing as the `sl-net` uplink payload).
//!   Off-grid input is a typed encode error.
//! * [`Codec::DeltaRle`] — XOR-delta of each value's bit pattern
//!   against the same position in the *previous item* (lag =
//!   `item_len`; the first item deltas against zero), followed by
//!   byte-level run-length encoding. A static pixel XORs to
//!   `0x00000000` across frames, so mostly-static depth maps become
//!   long zero runs which RLE collapses; NaN/Inf are just bit
//!   patterns, so arbitrary floats round-trip exactly.
//!
//! Encoding and decoding are pure functions of the value slice and the
//! array's item length, so a chunk's encoded bytes never depend on
//! thread count or backend.

use crate::error::StoreError;

/// RLE op code: a run of zero bytes follows (`len: u32 LE`).
const RLE_ZEROS: u8 = 0x00;
/// RLE op code: a literal byte run follows (`len: u32 LE`, then bytes).
const RLE_LITERAL: u8 = 0x01;

/// A chunk codec (see the module docs for the catalogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Little-endian `f32` bits, 4 bytes per value.
    Raw,
    /// MSB-first `R`-bit level packing of quantizer-grid values.
    Bitpack {
        /// Bits per value, `1..=16`.
        bit_depth: usize,
    },
    /// XOR-delta against the previous item's bit patterns + byte RLE.
    DeltaRle,
}

impl Codec {
    /// The manifest / knob spelling of this codec.
    pub fn name(&self) -> String {
        match self {
            Codec::Raw => "raw".to_string(),
            Codec::Bitpack { bit_depth } => format!("bitpack{bit_depth}"),
            Codec::DeltaRle => "delta+rle".to_string(),
        }
    }

    /// Parses a codec name (`raw`, `bitpack<R>`, `delta+rle`); the
    /// inverse of [`Codec::name`]. `bitpack` alone means `bitpack8`.
    pub fn parse(name: &str) -> Result<Codec, String> {
        let name = name.trim();
        match name {
            "raw" => return Ok(Codec::Raw),
            "delta+rle" | "delta-rle" => return Ok(Codec::DeltaRle),
            "bitpack" => return Ok(Codec::Bitpack { bit_depth: 8 }),
            _ => {}
        }
        if let Some(digits) = name.strip_prefix("bitpack") {
            if let Ok(r) = digits.parse::<usize>() {
                if (1..=16).contains(&r) {
                    return Ok(Codec::Bitpack { bit_depth: r });
                }
                return Err(format!("bitpack depth {r} out of range 1..=16"));
            }
        }
        Err(format!(
            "unknown codec {name:?} (expected raw, bitpack<R> or delta+rle)"
        ))
    }

    /// Encodes `values` (a whole number of `item_len`-value items) into
    /// this codec's byte representation.
    pub fn encode(&self, values: &[f32], item_len: usize) -> Result<Vec<u8>, StoreError> {
        match self {
            Codec::Raw => Ok(encode_raw(values)),
            Codec::Bitpack { bit_depth } => encode_bitpack(values, *bit_depth),
            Codec::DeltaRle => Ok(encode_delta_rle(values, item_len.max(1))),
        }
    }

    /// Decodes exactly `count` values back out of `bytes`. Structural
    /// problems (wrong length, truncated stream, invalid op) are typed
    /// [`StoreError::Corrupt`] errors.
    pub fn decode(
        &self,
        bytes: &[u8],
        count: usize,
        item_len: usize,
    ) -> Result<Vec<f32>, StoreError> {
        match self {
            Codec::Raw => decode_raw(bytes, count),
            Codec::Bitpack { bit_depth } => decode_bitpack(bytes, count, *bit_depth),
            Codec::DeltaRle => decode_delta_rle(bytes, count, item_len.max(1)),
        }
    }
}

fn encode_raw(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_raw(bytes: &[u8], count: usize) -> Result<Vec<f32>, StoreError> {
    if bytes.len() != count * 4 {
        return Err(StoreError::Corrupt(format!(
            "raw chunk: got {} bytes, want {} for {count} values",
            bytes.len(),
            count * 4
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Recovers the integer level `k` with `k / max == q` **bitwise**, for
/// `q` on the quantizer grid (same neighbour search as the `sl-net`
/// uplink packer: `round(q·max)` can land one off after the division
/// round-trip, so the three candidates are checked against the exact bit
/// pattern).
fn level_of(q: f32, max: u32, bit_depth: usize) -> Result<u32, StoreError> {
    if !q.is_finite() || !(0.0..=1.0).contains(&q) {
        return Err(StoreError::OffGrid {
            value: q,
            bit_depth,
        });
    }
    let maxf = max as f32;
    let k0 = (q * maxf).round() as i64;
    for dk in [0i64, -1, 1] {
        let k = k0 + dk;
        if !(0..=max as i64).contains(&k) {
            continue;
        }
        if ((k as f32) / maxf).to_bits() == q.to_bits() {
            return Ok(k as u32);
        }
    }
    Err(StoreError::OffGrid {
        value: q,
        bit_depth,
    })
}

fn encode_bitpack(values: &[f32], bit_depth: usize) -> Result<Vec<u8>, StoreError> {
    debug_assert!((1..=16).contains(&bit_depth));
    let max = (1u32 << bit_depth) - 1;
    let mut out = vec![0u8; (values.len() * bit_depth).div_ceil(8)];
    let mut bit = 0usize;
    for &q in values {
        let k = level_of(q, max, bit_depth)?;
        for i in (0..bit_depth).rev() {
            if (k >> i) & 1 == 1 {
                out[bit / 8] |= 1 << (7 - bit % 8);
            }
            bit += 1;
        }
    }
    Ok(out)
}

fn decode_bitpack(bytes: &[u8], count: usize, bit_depth: usize) -> Result<Vec<f32>, StoreError> {
    let need = (count * bit_depth).div_ceil(8);
    if bytes.len() != need {
        return Err(StoreError::Corrupt(format!(
            "bitpack chunk: got {} bytes, want {need} for {count} x {bit_depth}-bit values",
            bytes.len()
        )));
    }
    let maxf = ((1u32 << bit_depth) - 1) as f32;
    let mut out = Vec::with_capacity(count);
    let mut bit = 0usize;
    for _ in 0..count {
        let mut k = 0u32;
        for _ in 0..bit_depth {
            k = (k << 1) | ((bytes[bit / 8] >> (7 - bit % 8)) & 1) as u32;
            bit += 1;
        }
        out.push(k as f32 / maxf);
    }
    Ok(out)
}

fn encode_delta_rle(values: &[f32], lag: usize) -> Vec<u8> {
    // Stage 1: XOR-delta against the same position in the previous item
    // (the first item deltas against zero). A static pixel XORs to
    // 0x00000000, so depth frames become mostly zero bytes.
    let mut stream = Vec::with_capacity(values.len() * 4);
    for (i, &v) in values.iter().enumerate() {
        let prev = if i >= lag {
            values[i - lag].to_bits()
        } else {
            0
        };
        stream.extend_from_slice(&(v.to_bits() ^ prev).to_le_bytes());
    }
    // Stage 2: byte RLE over the delta stream. Zero runs shorter than
    // the 5-byte op overhead stay literal.
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < stream.len() {
        if stream[i] == 0 {
            let mut j = i;
            while j < stream.len() && stream[j] == 0 {
                j += 1;
            }
            if j - i > 5 {
                out.push(RLE_ZEROS);
                out.extend_from_slice(&((j - i) as u32).to_le_bytes());
                i = j;
                continue;
            }
        }
        // Literal run: up to the next zero run worth collapsing.
        let start = i;
        while i < stream.len() {
            if stream[i] == 0 {
                let mut j = i;
                while j < stream.len() && stream[j] == 0 {
                    j += 1;
                }
                if j - i > 5 {
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        out.push(RLE_LITERAL);
        out.extend_from_slice(&((i - start) as u32).to_le_bytes());
        out.extend_from_slice(&stream[start..i]);
    }
    out
}

fn decode_delta_rle(bytes: &[u8], count: usize, lag: usize) -> Result<Vec<f32>, StoreError> {
    let want = count * 4;
    let mut stream = Vec::with_capacity(want);
    let mut i = 0usize;
    while i < bytes.len() {
        let op = bytes[i];
        if i + 5 > bytes.len() {
            return Err(StoreError::Corrupt("delta+rle: truncated op header".into()));
        }
        let len =
            u32::from_le_bytes([bytes[i + 1], bytes[i + 2], bytes[i + 3], bytes[i + 4]]) as usize;
        i += 5;
        match op {
            RLE_ZEROS => stream.resize(stream.len() + len, 0),
            RLE_LITERAL => {
                if i + len > bytes.len() {
                    return Err(StoreError::Corrupt(
                        "delta+rle: truncated literal run".into(),
                    ));
                }
                stream.extend_from_slice(&bytes[i..i + len]);
                i += len;
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "delta+rle: invalid op code {other:#04x}"
                )))
            }
        }
        if stream.len() > want {
            return Err(StoreError::Corrupt(format!(
                "delta+rle: stream overruns {want} bytes"
            )));
        }
    }
    if stream.len() != want {
        return Err(StoreError::Corrupt(format!(
            "delta+rle: decoded {} bytes, want {want} for {count} values",
            stream.len()
        )));
    }
    let mut out: Vec<f32> = Vec::with_capacity(count);
    for (i, c) in stream.chunks_exact(4).enumerate() {
        let prev = if i >= lag { out[i - lag].to_bits() } else { 0 };
        let bits = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ prev;
        out.push(f32::from_bits(bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn names_round_trip_through_parse() {
        for codec in [
            Codec::Raw,
            Codec::Bitpack { bit_depth: 8 },
            Codec::Bitpack { bit_depth: 3 },
            Codec::DeltaRle,
        ] {
            assert_eq!(Codec::parse(&codec.name()), Ok(codec));
        }
        assert_eq!(Codec::parse("bitpack"), Ok(Codec::Bitpack { bit_depth: 8 }));
        assert!(Codec::parse("bitpack0").is_err());
        assert!(Codec::parse("bitpack17").is_err());
        assert!(Codec::parse("zstd").is_err());
    }

    #[test]
    fn raw_round_trips_special_values() {
        let vals = [0.0, -0.0, 1.5, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE];
        let enc = Codec::Raw.encode(&vals, 1).unwrap();
        let dec = Codec::Raw.decode(&enc, vals.len(), 1).unwrap();
        assert!(bits_eq(&vals, &dec));
        assert!(Codec::Raw
            .decode(&enc[..enc.len() - 1], vals.len(), 1)
            .is_err());
    }

    #[test]
    fn bitpack_round_trips_grid_values() {
        for bit_depth in [1usize, 3, 8, 12] {
            let max = (1u32 << bit_depth) - 1;
            let vals: Vec<f32> = (0..=max).map(|k| k as f32 / max as f32).collect();
            let codec = Codec::Bitpack { bit_depth };
            let enc = codec.encode(&vals, 1).unwrap();
            assert_eq!(enc.len(), (vals.len() * bit_depth).div_ceil(8));
            let dec = codec.decode(&enc, vals.len(), 1).unwrap();
            assert!(bits_eq(&vals, &dec), "bit depth {bit_depth}");
        }
    }

    #[test]
    fn bitpack_rejects_off_grid_input() {
        let codec = Codec::Bitpack { bit_depth: 8 };
        assert!(matches!(
            codec.encode(&[0.1234567], 1),
            Err(StoreError::OffGrid { .. })
        ));
        assert!(matches!(
            codec.encode(&[f32::NAN], 1),
            Err(StoreError::OffGrid { .. })
        ));
    }

    #[test]
    fn delta_rle_compresses_static_frames() {
        // Four nearly-identical 1024-pixel "frames": with lag =
        // item_len, every repeated frame deltas to zeros, so the
        // encoding must be far smaller than raw.
        let mut vals: Vec<f32> = (0..1024).map(|i| (i % 7) as f32 * 0.125).collect();
        for _ in 0..3 {
            vals.extend_from_within(..1024);
        }
        vals[1500] += 1.0; // one "moving pixel" in frame 2
        let enc = Codec::DeltaRle.encode(&vals, 1024).unwrap();
        assert!(
            enc.len() * 2 < vals.len() * 4,
            "no compression: {} vs {}",
            enc.len(),
            vals.len() * 4
        );
        let dec = Codec::DeltaRle.decode(&enc, vals.len(), 1024).unwrap();
        assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn delta_rle_lag_changes_the_bytes_but_not_the_values() {
        let vals: Vec<f32> = (0..64).map(|i| (i / 8) as f32).collect();
        let a = Codec::DeltaRle.encode(&vals, 8).unwrap();
        let b = Codec::DeltaRle.encode(&vals, 1).unwrap();
        assert_ne!(a, b);
        assert!(bits_eq(
            &vals,
            &Codec::DeltaRle.decode(&a, vals.len(), 8).unwrap()
        ));
        assert!(bits_eq(
            &vals,
            &Codec::DeltaRle.decode(&b, vals.len(), 1).unwrap()
        ));
    }

    #[test]
    fn delta_rle_round_trips_adversarial_bits() {
        let vals: Vec<f32> = [
            0x0000_0000u32,
            0x8000_0000,
            0x7fc0_0001, // NaN payload
            0x7f80_0000, // +inf
            0xff80_0000, // -inf
            0x0000_0001, // subnormal
            0xdead_beef,
        ]
        .iter()
        .map(|&b| f32::from_bits(b))
        .collect();
        let enc = Codec::DeltaRle.encode(&vals, 1).unwrap();
        let dec = Codec::DeltaRle.decode(&enc, vals.len(), 1).unwrap();
        assert!(bits_eq(&vals, &dec));
    }

    #[test]
    fn delta_rle_rejects_malformed_streams() {
        // Truncated op header.
        assert!(matches!(
            Codec::DeltaRle.decode(&[RLE_ZEROS, 1], 4, 1),
            Err(StoreError::Corrupt(_))
        ));
        // Literal run longer than the buffer.
        assert!(matches!(
            Codec::DeltaRle.decode(&[RLE_LITERAL, 200, 0, 0, 0], 4, 1),
            Err(StoreError::Corrupt(_))
        ));
        // Invalid op code.
        assert!(matches!(
            Codec::DeltaRle.decode(&[0x7f, 4, 0, 0, 0], 1, 1),
            Err(StoreError::Corrupt(_))
        ));
        // Wrong decoded length.
        let enc = Codec::DeltaRle.encode(&[1.0, 2.0], 1).unwrap();
        assert!(matches!(
            Codec::DeltaRle.decode(&enc, 3, 1),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_input_round_trips_everywhere() {
        for codec in [Codec::Raw, Codec::Bitpack { bit_depth: 8 }, Codec::DeltaRle] {
            let enc = codec.encode(&[], 1).unwrap();
            assert!(codec.decode(&enc, 0, 1).unwrap().is_empty());
        }
    }
}
