//! Store counters and their telemetry publication.

use sl_telemetry::Telemetry;

/// Counters accumulated by store operations. Callers thread one of
/// these through writes/reads and [`StoreMetrics::publish`] the totals
/// into a [`Telemetry`] handle (draining, so repeated publishes never
/// double-count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Arrays committed (manifest written).
    pub arrays_written: u64,
    /// Arrays (or ranges) read back.
    pub arrays_read: u64,
    /// Chunks encoded and stored.
    pub chunks_written: u64,
    /// Chunks checksum-verified and decoded.
    pub chunks_read: u64,
    /// Raw (decoded) bytes represented by written arrays.
    pub bytes_raw: u64,
    /// Encoded bytes written to storage.
    pub bytes_encoded: u64,
    /// Activation-log append batches.
    pub log_appends: u64,
}

impl StoreMetrics {
    /// Overall write-side compression ratio (`raw / encoded`; 0 when
    /// nothing was written).
    pub fn ratio(&self) -> f64 {
        if self.bytes_encoded == 0 {
            0.0
        } else {
            self.bytes_raw as f64 / self.bytes_encoded as f64
        }
    }

    /// Publishes the accumulated counters under `store.*` and resets
    /// them to zero, so the next publish reports only new work.
    pub fn publish(&mut self, tele: &mut Telemetry) {
        if !tele.is_enabled() {
            return;
        }
        tele.add("store.arrays.written", self.arrays_written);
        tele.add("store.arrays.read", self.arrays_read);
        tele.add("store.chunks.written", self.chunks_written);
        tele.add("store.chunks.read", self.chunks_read);
        tele.add("store.bytes.raw", self.bytes_raw);
        tele.add("store.bytes.encoded", self.bytes_encoded);
        tele.add("store.log.appends", self.log_appends);
        *self = StoreMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_drains_the_counters() {
        let mut m = StoreMetrics {
            arrays_written: 2,
            bytes_raw: 800,
            bytes_encoded: 200,
            ..StoreMetrics::default()
        };
        assert_eq!(m.ratio(), 4.0);
        let mut tele = Telemetry::summary();
        m.publish(&mut tele);
        assert_eq!(m, StoreMetrics::default());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.arrays.written"), 2);
        assert_eq!(snap.counter("store.bytes.raw"), 800);
        // Second publish adds nothing.
        m.publish(&mut tele);
        assert_eq!(tele.snapshot().counter("store.bytes.raw"), 800);
    }

    #[test]
    fn disabled_telemetry_keeps_the_counters() {
        let mut m = StoreMetrics {
            chunks_written: 5,
            ..StoreMetrics::default()
        };
        m.publish(&mut Telemetry::disabled());
        assert_eq!(m.chunks_written, 5);
    }
}
