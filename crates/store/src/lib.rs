//! # `sl-store` — chunked, checksummed, codec-compressed array store
//!
//! The workspace's persistence layer for large `f32` streams: depth
//! frames (`sl-scene`), quantized cut-layer activations (the privacy
//! audit log) and model/optimizer state (`sl-core` checkpoints). The
//! whole-file formats (`.slt`, `.slw`) are fine at the paper's 13k-frame
//! scale; this crate is the ROADMAP's chunked store for everything
//! beyond it — streaming frame-range reads, resumable checkpoints and
//! append-only logs, all std-only and deterministic.
//!
//! An **array** is a flat `f32` buffer of `items × item_len` values
//! split into fixed-size chunks (ragged for append-logs). Each chunk is
//! encoded by a pluggable [`Codec`]:
//!
//! * [`Codec::Raw`] — LE IEEE-754 bits,
//! * [`Codec::Bitpack`] — `R`-bit level packing of quantizer-grid values
//!   (the `sl-net` uplink payload layout),
//! * [`Codec::DeltaRle`] — XOR-delta + byte RLE, built for
//!   mostly-static depth maps; lossless for arbitrary bit patterns.
//!
//! A checksummed [`Manifest`] (`<name>.manifest.json` + one
//! `<name>.chunk-NNNNNN.slc` per chunk, written last as the commit
//! point) makes corruption a *typed error* ([`StoreError`]) instead of
//! garbage data. Chunk codec work fans out on the shared
//! [`sl_tensor::ComputePool`] and merges in ascending chunk order, so
//! encoded bytes and decoded values are **bitwise identical at any
//! `SLM_THREADS` / `SLM_BACKEND`** — the same determinism contract as
//! the tensor kernels, enforced end-to-end by the `store-bitwise` verify
//! stage.
//!
//! Knobs: `SLM_STORE_CHUNK` (target values per chunk) and
//! `SLM_STORE_CODEC` (codec override) — see README § Environment knobs.
//!
//! ```
//! use sl_store::{read_array, write_array, Codec, MemStorage, StoreMetrics};
//! use sl_tensor::ComputePool;
//!
//! let mut storage = MemStorage::new();
//! let mut metrics = StoreMetrics::default();
//! let frames: Vec<f32> = vec![0.25; 4 * 16]; // 4 frames of 16 pixels
//! let pool = ComputePool::global();
//! write_array(&mut storage, "frames", 16, &frames, 2, Codec::DeltaRle, pool, &mut metrics)
//!     .unwrap();
//! let (manifest, back) = read_array(&storage, "frames", pool, &mut metrics).unwrap();
//! assert_eq!(manifest.items, 4);
//! assert_eq!(back, frames);
//! assert!(metrics.ratio() > 1.0); // constant frames collapse under delta+rle
//! ```

mod array;
mod codec;
mod error;
mod knobs;
mod log;
mod manifest;
mod metrics;
mod storage;

pub use array::{read_array, read_items, read_manifest, write_array};
pub use codec::Codec;
pub use error::StoreError;
pub use knobs::{
    configured_chunk_items, configured_chunk_values, configured_codec, DEFAULT_CHUNK_VALUES,
};
pub use log::ActivationLog;
pub use manifest::{fnv1a_64, ChunkInfo, Manifest, MANIFEST_VERSION};
pub use metrics::StoreMetrics;
pub use storage::{DirStorage, MemStorage, StorageRead, StorageWrite};
