//! Sync storage backends behind read/write traits.
//!
//! The array layer addresses *flat named objects* (a manifest and its
//! chunk files); a backend maps names to bytes. Two implementations:
//!
//! * [`DirStorage`] — one file per object inside a root directory (the
//!   on-disk layout the verify gate `cmp`s byte-for-byte),
//! * [`MemStorage`] — a `BTreeMap`, for tests and corruption injection.
//!
//! Object names are restricted to a flat, portable alphabet so a
//! manifest can never address files outside its directory.

use std::collections::BTreeMap;
use std::fs;
use std::io::{ErrorKind, Write};
use std::path::PathBuf;

use crate::error::StoreError;

/// Checks that `name` is a flat object name: non-empty, no path
/// separators, no leading dot (so no `..` traversal and no hidden
/// files).
fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::Manifest(format!(
            "invalid object name {name:?} (flat [A-Za-z0-9._-] names only)"
        )))
    }
}

/// Read access to named byte objects.
pub trait StorageRead {
    /// Reads the full contents of `name`. A missing object is
    /// [`StoreError::Missing`].
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;
}

/// Write access to named byte objects.
pub trait StorageWrite: StorageRead {
    /// Creates or replaces `name` with `bytes`.
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;
}

/// Directory-backed storage: each object is one file under `root`.
#[derive(Debug, Clone)]
pub struct DirStorage {
    root: PathBuf,
}

impl DirStorage {
    /// Opens (creating if needed) the directory at `root`.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirStorage { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

impl StorageRead for DirStorage {
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        validate_name(name)?;
        match fs::read(self.root.join(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == ErrorKind::NotFound => Err(StoreError::Missing(name.into())),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    fn exists(&self, name: &str) -> bool {
        validate_name(name).is_ok() && self.root.join(name).is_file()
    }
}

impl StorageWrite for DirStorage {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        let mut f = fs::File::create(self.root.join(name))?;
        f.write_all(bytes)?;
        Ok(())
    }
}

/// In-memory storage for tests (and for injecting corruption).
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    objects: BTreeMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Mutable access to an object's bytes (tests flip bits through
    /// this).
    pub fn object_mut(&mut self, name: &str) -> Option<&mut Vec<u8>> {
        self.objects.get_mut(name)
    }

    /// All object names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }
}

impl StorageRead for MemStorage {
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        validate_name(name)?;
        self.objects
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::Missing(name.into()))
    }

    fn exists(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }
}

impl StorageWrite for MemStorage {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        self.objects.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        assert!(!s.exists("a.bin"));
        s.put("a.bin", &[1, 2, 3]).unwrap();
        assert!(s.exists("a.bin"));
        assert_eq!(s.get("a.bin").unwrap(), vec![1, 2, 3]);
        assert!(matches!(s.get("b.bin"), Err(StoreError::Missing(_))));
    }

    #[test]
    fn dir_storage_round_trips() {
        let root = std::env::temp_dir().join(format!("slstore_test_{}", std::process::id()));
        let mut s = DirStorage::create(&root).unwrap();
        s.put("x.chunk-000000.slc", &[9, 8]).unwrap();
        assert!(s.exists("x.chunk-000000.slc"));
        assert_eq!(s.get("x.chunk-000000.slc").unwrap(), vec![9, 8]);
        assert!(matches!(s.get("nope"), Err(StoreError::Missing(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn names_are_confined_to_the_directory() {
        let mut s = MemStorage::new();
        for bad in ["", "../evil", "a/b", ".hidden", "a\\b", "name with space"] {
            assert!(s.put(bad, &[0]).is_err(), "accepted {bad:?}");
            assert!(s.get(bad).is_err());
        }
    }
}
