//! Chunked array write/read with pool-parallel codec work.
//!
//! The determinism contract (DESIGN.md §14): chunk boundaries are a pure
//! function of `(items, chunk_items)`, each chunk is encoded/decoded
//! independently by a pure codec, and results are merged in ascending
//! chunk order — so the encoded bytes and the decoded values are bitwise
//! identical at any `SLM_THREADS` / `SLM_BACKEND` setting. The
//! [`ComputePool`] only changes *when* a chunk is processed, never
//! *what* it contains.

use std::sync::Mutex;

use sl_tensor::ComputePool;

use crate::codec::Codec;
use crate::error::StoreError;
use crate::manifest::{fnv1a_64, ChunkInfo, Manifest};
use crate::metrics::StoreMetrics;
use crate::storage::{StorageRead, StorageWrite};

/// Runs `jobs` fallible chunk tasks on the pool and returns their
/// results in ascending job order (the fixed merge order behind the
/// bitwise-determinism contract).
fn run_ordered<T, F>(pool: &ComputePool, jobs: usize, task: F) -> Vec<Result<T, StoreError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, StoreError> + Sync,
{
    let slots: Mutex<Vec<Option<Result<T, StoreError>>>> =
        Mutex::new((0..jobs).map(|_| None).collect());
    pool.run(jobs, |i| {
        let result = task(i);
        let mut guard = slots.lock().unwrap_or_else(|p| p.into_inner());
        guard[i] = Some(result);
    });
    let guard = slots.into_inner().unwrap_or_else(|p| p.into_inner());
    guard
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err(StoreError::Corrupt("chunk job never ran".into()))))
        .collect()
}

/// Writes `values` (a flat array of `items = values.len() / item_len`
/// items) as a chunked, checksummed array called `name`.
///
/// Chunks are encoded in parallel on `pool`, then stored in ascending
/// order; the manifest is written last as the commit point. Returns the
/// manifest. `metrics` accumulates the write counters for later
/// [`StoreMetrics::publish`].
#[allow(clippy::too_many_arguments)] // the full write contract, spelled out
pub fn write_array<S: StorageWrite + ?Sized>(
    storage: &mut S,
    name: &str,
    item_len: usize,
    values: &[f32],
    chunk_items: usize,
    codec: Codec,
    pool: &ComputePool,
    metrics: &mut StoreMetrics,
) -> Result<Manifest, StoreError> {
    assert!(item_len > 0, "write_array: item_len must be positive");
    assert!(chunk_items > 0, "write_array: chunk_items must be positive");
    assert_eq!(
        values.len() % item_len,
        0,
        "write_array: {} values do not tile item_len {item_len}",
        values.len()
    );
    let items = values.len() / item_len;
    let n_chunks = items.div_ceil(chunk_items).max(1);
    let encoded = run_ordered(pool, n_chunks, |i| {
        let lo = (i * chunk_items).min(items);
        let hi = ((i + 1) * chunk_items).min(items);
        codec.encode(&values[lo * item_len..hi * item_len], item_len)
    });

    let mut chunks = Vec::with_capacity(n_chunks);
    for (i, enc) in encoded.into_iter().enumerate() {
        let enc = enc?;
        let lo = (i * chunk_items).min(items);
        let hi = ((i + 1) * chunk_items).min(items);
        let file = Manifest::chunk_name(name, i);
        storage.put(&file, &enc)?;
        metrics.chunks_written += 1;
        metrics.bytes_encoded += enc.len() as u64;
        chunks.push(ChunkInfo {
            file,
            items: hi - lo,
            bytes: enc.len(),
            checksum: fnv1a_64(&enc),
        });
    }
    let manifest = Manifest {
        array: name.to_string(),
        item_len,
        items,
        chunk_items,
        codec,
        chunks,
    };
    storage.put(&Manifest::object_name(name), manifest.to_json().as_bytes())?;
    metrics.arrays_written += 1;
    metrics.bytes_raw += (values.len() * 4) as u64;
    Ok(manifest)
}

/// Loads and validates the manifest of array `name`.
pub fn read_manifest<S: StorageRead + ?Sized>(
    storage: &S,
    name: &str,
) -> Result<Manifest, StoreError> {
    let bytes = storage.get(&Manifest::object_name(name))?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| StoreError::Manifest("manifest is not UTF-8".into()))?;
    let manifest = Manifest::from_json(text)?;
    if manifest.array != name {
        return Err(StoreError::Manifest(format!(
            "manifest names array {:?}, expected {name:?}",
            manifest.array
        )));
    }
    Ok(manifest)
}

/// Verifies one chunk's bytes against its manifest entry and decodes it.
fn decode_chunk(manifest: &Manifest, index: usize, bytes: &[u8]) -> Result<Vec<f32>, StoreError> {
    let info = &manifest.chunks[index];
    if bytes.len() != info.bytes {
        return Err(StoreError::Corrupt(format!(
            "chunk {index}: {} bytes on storage, manifest says {}",
            bytes.len(),
            info.bytes
        )));
    }
    let actual = fnv1a_64(bytes);
    if actual != info.checksum {
        return Err(StoreError::Checksum {
            chunk: index,
            expected: info.checksum,
            actual,
        });
    }
    manifest
        .codec
        .decode(bytes, info.items * manifest.item_len, manifest.item_len)
}

/// Reads the whole array back, checksum-verifying and decoding chunks in
/// parallel and concatenating them in ascending order.
pub fn read_array<S: StorageRead + ?Sized>(
    storage: &S,
    name: &str,
    pool: &ComputePool,
    metrics: &mut StoreMetrics,
) -> Result<(Manifest, Vec<f32>), StoreError> {
    let manifest = read_manifest(storage, name)?;
    let values = read_items(storage, &manifest, 0, manifest.items, pool, metrics)?;
    Ok((manifest, values))
}

/// Reads items `[start, start + count)` of the array described by
/// `manifest`, touching only the chunks that overlap the range — the
/// streaming path for frame-range scene reads.
pub fn read_items<S: StorageRead + ?Sized>(
    storage: &S,
    manifest: &Manifest,
    start: usize,
    count: usize,
    pool: &ComputePool,
    metrics: &mut StoreMetrics,
) -> Result<Vec<f32>, StoreError> {
    let end = start
        .checked_add(count)
        .ok_or_else(|| StoreError::Range("range overflow".into()))?;
    if end > manifest.items {
        return Err(StoreError::Range(format!(
            "items [{start}, {end}) out of bounds for array {:?} of {} items",
            manifest.array, manifest.items
        )));
    }
    if count == 0 {
        return Ok(Vec::new());
    }

    // Chunk spans via the per-chunk item counts (logs may be ragged).
    let mut spans = Vec::with_capacity(manifest.chunks.len());
    let mut base = 0usize;
    for info in &manifest.chunks {
        spans.push((base, base + info.items));
        base += info.items;
    }
    let touched: Vec<usize> = (0..manifest.chunks.len())
        .filter(|&i| spans[i].1 > start && spans[i].0 < end)
        .collect();

    // Storage reads happen serially in ascending order (deterministic
    // I/O order); checksum + decode fan out on the pool.
    let mut raw = Vec::with_capacity(touched.len());
    for &i in &touched {
        raw.push(storage.get(&manifest.chunks[i].file)?);
    }
    let decoded = run_ordered(pool, touched.len(), |j| {
        decode_chunk(manifest, touched[j], &raw[j])
    });

    let mut out = Vec::with_capacity(count * manifest.item_len);
    for (j, result) in decoded.into_iter().enumerate() {
        let values = result?;
        let chunk_index = touched[j];
        let (chunk_start, chunk_end) = spans[chunk_index];
        let lo = start.max(chunk_start) - chunk_start;
        let hi = end.min(chunk_end) - chunk_start;
        out.extend_from_slice(&values[lo * manifest.item_len..hi * manifest.item_len]);
        metrics.chunks_read += 1;
    }
    metrics.arrays_read += 1;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn pool() -> &'static ComputePool {
        ComputePool::global()
    }

    fn values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37) % 101) as f32 * 0.25).collect()
    }

    #[test]
    fn write_read_round_trip_all_codecs() {
        for codec in [Codec::Raw, Codec::DeltaRle] {
            let mut storage = MemStorage::new();
            let mut metrics = StoreMetrics::default();
            let vals = values(1000);
            let m =
                write_array(&mut storage, "a", 10, &vals, 7, codec, pool(), &mut metrics).unwrap();
            assert_eq!(m.items, 100);
            assert_eq!(m.chunks.len(), 15);
            let (m2, back) = read_array(&storage, "a", pool(), &mut metrics).unwrap();
            assert_eq!(m2, m);
            assert_eq!(back, vals);
            assert!(metrics.bytes_encoded > 0);
        }
    }

    #[test]
    fn read_items_matches_full_slice() {
        let mut storage = MemStorage::new();
        let mut metrics = StoreMetrics::default();
        let vals = values(600);
        let m = write_array(
            &mut storage,
            "rng",
            4,
            &vals,
            16,
            Codec::DeltaRle,
            pool(),
            &mut metrics,
        )
        .unwrap();
        for (start, count) in [(0, 150), (0, 1), (149, 1), (10, 33), (140, 10), (5, 0)] {
            let got = read_items(&storage, &m, start, count, pool(), &mut metrics).unwrap();
            assert_eq!(
                got,
                vals[start * 4..(start + count) * 4],
                "[{start}; {count})"
            );
        }
        assert!(matches!(
            read_items(&storage, &m, 100, 51, pool(), &mut metrics),
            Err(StoreError::Range(_))
        ));
    }

    #[test]
    fn flipped_chunk_byte_is_a_checksum_error() {
        let mut storage = MemStorage::new();
        let mut metrics = StoreMetrics::default();
        write_array(
            &mut storage,
            "a",
            1,
            &values(64),
            16,
            Codec::Raw,
            pool(),
            &mut metrics,
        )
        .unwrap();
        storage.object_mut(&Manifest::chunk_name("a", 1)).unwrap()[3] ^= 0x40;
        assert!(matches!(
            read_array(&storage, "a", pool(), &mut metrics),
            Err(StoreError::Checksum { chunk: 1, .. })
        ));
    }

    #[test]
    fn truncated_chunk_is_corrupt_not_a_panic() {
        let mut storage = MemStorage::new();
        let mut metrics = StoreMetrics::default();
        write_array(
            &mut storage,
            "a",
            1,
            &values(64),
            64,
            Codec::DeltaRle,
            pool(),
            &mut metrics,
        )
        .unwrap();
        storage
            .object_mut(&Manifest::chunk_name("a", 0))
            .unwrap()
            .truncate(3);
        assert!(matches!(
            read_array(&storage, "a", pool(), &mut metrics),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_manifest_and_wrong_name_are_typed() {
        let storage = MemStorage::new();
        let mut metrics = StoreMetrics::default();
        assert!(matches!(
            read_array(&storage, "ghost", pool(), &mut metrics),
            Err(StoreError::Missing(_))
        ));
    }

    #[test]
    fn serial_and_parallel_pools_agree_bitwise() {
        let serial = ComputePool::new(1);
        let wide = ComputePool::new(4);
        let vals: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let mut m1 = StoreMetrics::default();
        let mut m4 = StoreMetrics::default();
        let mut s1 = MemStorage::new();
        let mut s4 = MemStorage::new();
        write_array(
            &mut s1,
            "x",
            64,
            &vals,
            5,
            Codec::DeltaRle,
            &serial,
            &mut m1,
        )
        .unwrap();
        write_array(&mut s4, "x", 64, &vals, 5, Codec::DeltaRle, &wide, &mut m4).unwrap();
        assert_eq!(s1.names(), s4.names());
        for name in s1.names() {
            assert_eq!(s1.get(&name).unwrap(), s4.get(&name).unwrap(), "{name}");
        }
        let (_, d1) = read_array(&s1, "x", &wide, &mut m1).unwrap();
        let (_, d4) = read_array(&s4, "x", &serial, &mut m4).unwrap();
        assert!(d1.iter().zip(&d4).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
