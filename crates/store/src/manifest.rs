//! The checksummed chunk manifest.
//!
//! Every stored array is one `"<name>.manifest.json"` object plus one
//! `"<name>.chunk-NNNNNN.slc"` object per chunk. The manifest is the
//! commit point (written last) and the integrity root: it records the
//! codec, the item geometry and, per chunk, the encoded byte count and
//! an FNV-1a 64 checksum. Readers verify every chunk against the
//! manifest before decoding, so flipped bits surface as typed
//! [`StoreError::Checksum`](crate::StoreError::Checksum) errors — never
//! as garbage tensors.
//!
//! The JSON is emitted with a fixed field order and hex-encoded
//! checksums, so a manifest's bytes are a pure function of the array's
//! contents and write parameters.

use sl_telemetry::json::{parse, JsonArray, JsonObject, JsonValue};

use crate::codec::Codec;
use crate::error::StoreError;

/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// FNV-1a 64-bit over `bytes` — the workspace's standard dependency-free
/// hash (`sl-net` frames, `sl-bench` config fingerprints), duplicated so
/// the store stays self-contained at the byte level.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One chunk's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Object name of the chunk (flat, inside the same storage).
    pub file: String,
    /// Items encoded in this chunk.
    pub items: usize,
    /// Encoded byte count.
    pub bytes: usize,
    /// FNV-1a 64 checksum of the encoded bytes.
    pub checksum: u64,
}

/// A stored array's manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Array name (the object-name prefix).
    pub array: String,
    /// `f32` values per item (e.g. pixels per frame); items are the
    /// random-access granularity.
    pub item_len: usize,
    /// Total items across all chunks.
    pub items: usize,
    /// Write-time target items per chunk (0 for append-logs, whose
    /// chunks are sized by whatever each append carried).
    pub chunk_items: usize,
    /// The codec every chunk is encoded with.
    pub codec: Codec,
    /// Per-chunk entries, in array order.
    pub chunks: Vec<ChunkInfo>,
}

impl Manifest {
    /// The manifest object name for an array called `name`.
    pub fn object_name(name: &str) -> String {
        format!("{name}.manifest.json")
    }

    /// The chunk object name for chunk `index` of array `name`.
    pub fn chunk_name(name: &str, index: usize) -> String {
        format!("{name}.chunk-{index:06}.slc")
    }

    /// Serializes to the canonical JSON bytes.
    pub fn to_json(&self) -> String {
        let mut chunks = JsonArray::new();
        for c in &self.chunks {
            chunks.push_raw(
                &JsonObject::new()
                    .str("file", &c.file)
                    .u64("items", c.items as u64)
                    .u64("bytes", c.bytes as u64)
                    .str("fnv1a", &format!("{:016x}", c.checksum))
                    .finish(),
            );
        }
        JsonObject::new()
            .u64("version", MANIFEST_VERSION)
            .str("array", &self.array)
            .u64("item_len", self.item_len as u64)
            .u64("items", self.items as u64)
            .u64("chunk_items", self.chunk_items as u64)
            .str("codec", &self.codec.name())
            .raw("chunks", &chunks.finish())
            .finish()
    }

    /// Parses and validates manifest JSON.
    pub fn from_json(text: &str) -> Result<Manifest, StoreError> {
        let bad = |what: &str| StoreError::Manifest(what.to_string());
        let root = parse(text).map_err(|e| StoreError::Manifest(format!("bad JSON: {e}")))?;
        let field = |key: &str| -> Result<&JsonValue, StoreError> {
            root.get(key)
                .ok_or_else(|| StoreError::Manifest(format!("missing field {key:?}")))
        };
        let version = field("version")?.as_u64().ok_or_else(|| bad("version"))?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::Manifest(format!(
                "unsupported manifest version {version}"
            )));
        }
        let array = field("array")?
            .as_str()
            .ok_or_else(|| bad("array"))?
            .to_string();
        let item_len = field("item_len")?.as_u64().ok_or_else(|| bad("item_len"))? as usize;
        let items = field("items")?.as_u64().ok_or_else(|| bad("items"))? as usize;
        let chunk_items = field("chunk_items")?
            .as_u64()
            .ok_or_else(|| bad("chunk_items"))? as usize;
        let codec = Codec::parse(field("codec")?.as_str().ok_or_else(|| bad("codec"))?)
            .map_err(StoreError::Manifest)?;
        if item_len == 0 {
            return Err(bad("item_len must be positive"));
        }
        let mut chunks = Vec::new();
        for (i, entry) in field("chunks")?
            .as_arr()
            .ok_or_else(|| bad("chunks"))?
            .iter()
            .enumerate()
        {
            let get = |key: &str| -> Result<&JsonValue, StoreError> {
                entry.get(key).ok_or_else(|| {
                    StoreError::Manifest(format!("chunk {i}: missing field {key:?}"))
                })
            };
            let hex = get("fnv1a")?
                .as_str()
                .ok_or_else(|| bad("fnv1a"))?
                .to_string();
            let checksum = u64::from_str_radix(&hex, 16)
                .map_err(|_| StoreError::Manifest(format!("chunk {i}: bad checksum {hex:?}")))?;
            chunks.push(ChunkInfo {
                file: get("file")?
                    .as_str()
                    .ok_or_else(|| bad("file"))?
                    .to_string(),
                items: get("items")?.as_u64().ok_or_else(|| bad("items"))? as usize,
                bytes: get("bytes")?.as_u64().ok_or_else(|| bad("bytes"))? as usize,
                checksum,
            });
        }
        let manifest = Manifest {
            array,
            item_len,
            items,
            chunk_items,
            codec,
            chunks,
        };
        let counted: usize = manifest.chunks.iter().map(|c| c.items).sum();
        if counted != manifest.items {
            return Err(StoreError::Manifest(format!(
                "chunk items sum to {counted}, manifest claims {}",
                manifest.items
            )));
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            array: "frames".into(),
            item_len: 64,
            items: 5,
            chunk_items: 3,
            codec: Codec::DeltaRle,
            chunks: vec![
                ChunkInfo {
                    file: Manifest::chunk_name("frames", 0),
                    items: 3,
                    bytes: 100,
                    checksum: 0xdead_beef_0123_4567,
                },
                ChunkInfo {
                    file: Manifest::chunk_name("frames", 1),
                    items: 2,
                    bytes: 70,
                    checksum: 7,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let m = sample();
        let text = m.to_json();
        let back = Manifest::from_json(&text).unwrap();
        assert_eq!(back, m);
        // Canonical bytes: re-serialization is identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn rejects_inconsistent_and_malformed_manifests() {
        let mut m = sample();
        m.items = 99;
        assert!(matches!(
            Manifest::from_json(&m.to_json()),
            Err(StoreError::Manifest(_))
        ));
        assert!(Manifest::from_json("{").is_err());
        assert!(Manifest::from_json("{}").is_err());
        let wrong_version = sample().to_json().replace("\"version\":1", "\"version\":9");
        assert!(Manifest::from_json(&wrong_version).is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
