//! Received-power model with human-body blockage.
//!
//! 60 GHz links lose 15–25 dB when a human body blocks the first Fresnel
//! zone, with a sharp-but-finite ramp as the body edge sweeps through it
//! (measured in the paper's companion work [3]). We model the attenuation
//! of one pedestrian as a smoothstep of the body-edge distance to the LoS
//! line over a `transition_margin_m` zone, take the maximum over
//! pedestrians (one body already saturates the fade), and add two noise
//! terms: slowly varying AR(1) shadowing and i.i.d. fast fading.

use rand::Rng;

use crate::config::SceneConfig;
use crate::pedestrian::Pedestrian;

/// The deterministic part of the blockage attenuation at time `t`, in dB.
///
/// `0` when no body is near the LoS line, `config.blockage_depth_db` when
/// a body straddles it, smooth in between.
pub fn blockage_attenuation_db(config: &SceneConfig, pedestrians: &[Pedestrian], t: f64) -> f64 {
    let mut worst = 0.0f64;
    for p in pedestrians {
        let Some(edge) = p.edge_distance_to_los(t) else {
            continue;
        };
        // slm-lint: allow(float-cmp) exact sentinel for the degenerate zero-margin config, not arithmetic
        let depth = if config.transition_margin_m == 0.0 {
            // slm-lint: allow(float-cmp) exact geometric boundary of the degenerate case above
            if edge == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            smoothstep(1.0 - (edge / config.transition_margin_m).min(1.0))
        };
        worst = worst.max(depth * config.blockage_depth_db);
    }
    worst
}

/// Cubic smoothstep on `[0, 1]`.
fn smoothstep(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    x * x * (3.0 - 2.0 * x)
}

/// Stateful stochastic power model: LoS baseline − blockage − shadowing
/// + fading.
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: SceneConfig,
    /// Current AR(1) shadowing state in dB.
    shadowing_db: f64,
}

impl PowerModel {
    /// Creates a power model for `config` with zero initial shadowing.
    pub fn new(config: SceneConfig) -> Self {
        config.validate();
        PowerModel {
            config,
            shadowing_db: 0.0,
        }
    }

    /// Advances the model one frame and returns the received power in dBm
    /// at time `t` given the pedestrians in the scene.
    ///
    /// Must be called once per frame in time order: the shadowing term is
    /// an AR(1) process whose state advances per call.
    pub fn sample_dbm(&mut self, pedestrians: &[Pedestrian], t: f64, rng: &mut impl Rng) -> f64 {
        let cfg = &self.config;
        // AR(1): s' = ρ·s + sqrt(1-ρ²)·σ·ε keeps marginal variance σ².
        let innovation = gaussian(rng) * cfg.shadowing_sigma_db;
        self.shadowing_db = cfg.shadowing_rho * self.shadowing_db
            + (1.0 - cfg.shadowing_rho * cfg.shadowing_rho).sqrt() * innovation;
        let fast = gaussian(rng) * cfg.fading_sigma_db;
        cfg.los_power_dbm - blockage_attenuation_db(cfg, pedestrians, t) + self.shadowing_db + fast
    }

    /// The noiseless received power (baseline minus blockage) — used by
    /// tests and by the ground-truth diagnostics.
    pub fn mean_dbm(&self, pedestrians: &[Pedestrian], t: f64) -> f64 {
        self.config.los_power_dbm - blockage_attenuation_db(&self.config, pedestrians, t)
    }
}

/// One standard normal via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn crossing_walker(cfg: &SceneConfig) -> Pedestrian {
        Pedestrian {
            cross_x: 2.0,
            spawn_time_s: 0.0,
            speed_mps: 1.0,
            direction: 1.0,
            width_m: 0.5,
            height_m: 1.8,
            start_y_m: -cfg.corridor_half_m,
            corridor_half_m: cfg.corridor_half_m,
        }
    }

    #[test]
    fn no_pedestrians_no_blockage() {
        let cfg = SceneConfig::paper();
        assert_eq!(blockage_attenuation_db(&cfg, &[], 1.0), 0.0);
    }

    #[test]
    fn full_fade_while_straddling_los() {
        let cfg = SceneConfig::paper();
        let p = crossing_walker(&cfg);
        let t_cross = p.crossing_time_s();
        assert_eq!(
            blockage_attenuation_db(&cfg, std::slice::from_ref(&p), t_cross),
            cfg.blockage_depth_db
        );
        // Far away: zero.
        assert_eq!(
            blockage_attenuation_db(&cfg, std::slice::from_ref(&p), t_cross - 2.0),
            0.0
        );
    }

    #[test]
    fn ramp_is_smooth_and_monotone_on_approach() {
        let cfg = SceneConfig::paper();
        let p = crossing_walker(&cfg);
        let t_cross = p.crossing_time_s();
        // Sample the approach over the transition zone.
        let mut last = -1.0;
        for k in 0..20 {
            // Edge distance shrinks linearly with time before crossing.
            let t = t_cross - 0.37 + 0.37 * k as f64 / 20.0;
            let a = blockage_attenuation_db(&cfg, std::slice::from_ref(&p), t);
            assert!(a >= last - 1e-9, "attenuation not monotone: {last} -> {a}");
            last = a;
        }
        assert!((last - cfg.blockage_depth_db).abs() < 0.5);
    }

    #[test]
    fn two_pedestrians_take_max_not_sum() {
        let cfg = SceneConfig::paper();
        let a = crossing_walker(&cfg);
        let mut b = crossing_walker(&cfg);
        b.cross_x = 3.0;
        let t = a.crossing_time_s();
        let att = blockage_attenuation_db(&cfg, &[a, b], t);
        assert_eq!(att, cfg.blockage_depth_db);
    }

    #[test]
    fn los_power_statistics() {
        let cfg = SceneConfig::paper();
        let mut model = PowerModel::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(31);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| model.sample_dbm(&[], 0.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - cfg.los_power_dbm).abs() < 0.1, "mean {mean}");
        let var = samples
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n as f64;
        let expect = cfg.shadowing_sigma_db.powi(2) + cfg.fading_sigma_db.powi(2);
        assert!((var - expect).abs() < 0.15, "var {var} vs {expect}");
    }

    #[test]
    fn blocked_power_drops_by_blockage_depth() {
        let cfg = SceneConfig::paper();
        let model = PowerModel::new(cfg.clone());
        let p = crossing_walker(&cfg);
        let open = model.mean_dbm(&[], 0.0);
        let blocked = model.mean_dbm(std::slice::from_ref(&p), p.crossing_time_s());
        assert!((open - blocked - cfg.blockage_depth_db).abs() < 1e-9);
    }

    #[test]
    fn shadowing_is_temporally_correlated() {
        let cfg = SceneConfig {
            fading_sigma_db: 0.0, // isolate the AR(1) term
            ..SceneConfig::paper()
        };
        let mut model = PowerModel::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(32);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| model.sample_dbm(&[], 0.0, &mut rng) - cfg.los_power_dbm)
            .collect();
        // Lag-1 autocorrelation should be near ρ.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!((rho - cfg.shadowing_rho).abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(2.0), 1.0);
    }
}
