//! Pinhole depth-camera renderer.
//!
//! Renders Kinect-style normalized depth frames of the corridor scene: a
//! floor plane, a back wall behind the BS, and every active pedestrian as
//! a camera-facing billboard (a depth-image silhouette — the same visual
//! content the paper's Fig. 2(a) raw frames show). Depth is z-depth along
//! the optical axis, normalized to `[0, 1]` between `near_m` and `far_m`.

use sl_tensor::Tensor;

use crate::config::CameraConfig;
use crate::pedestrian::Pedestrian;

/// A depth camera fixed at the UE, looking down the LoS path at the BS.
///
/// Coordinate frame (see [`crate::pedestrian`]): BS at the origin, UE at
/// `(link_distance, 0)`; the camera sits at the UE at `height_m` above the
/// floor and looks in the `-x` direction, with `+y` to image-right and
/// `+z` up.
#[derive(Debug, Clone)]
pub struct DepthCamera {
    config: CameraConfig,
    /// BS–UE distance: the camera's x-coordinate.
    link_distance_m: f64,
    /// Focal length in pixel units.
    focal_px: f64,
    /// Distance from the camera to the back wall behind the BS.
    wall_depth_m: f64,
}

impl DepthCamera {
    /// Creates a camera for a link of `link_distance_m` metres.
    pub fn new(config: CameraConfig, link_distance_m: f64) -> Self {
        assert!(
            link_distance_m > 0.0,
            "DepthCamera: link distance must be positive"
        );
        let focal_px = (config.image_width as f64 / 2.0) / (config.horizontal_fov_rad / 2.0).tan();
        DepthCamera {
            // Back wall 3 m behind the BS (far enough that the floor
            // stays visible in the bottom rows of the ROI-cropped view).
            wall_depth_m: link_distance_m + 3.0,
            config,
            link_distance_m,
            focal_px,
        }
    }

    /// The camera configuration.
    pub fn config(&self) -> &CameraConfig {
        &self.config
    }

    /// Normalizes a z-depth in metres to `[0, 1]`.
    pub fn normalize_depth(&self, depth_m: f64) -> f32 {
        let d = (depth_m - self.config.near_m) / (self.config.far_m - self.config.near_m);
        d.clamp(0.0, 1.0) as f32
    }

    /// Renders the scene at time `t` into a `[H, W]` tensor of normalized
    /// depth. Only pedestrians active at `t` appear.
    pub fn render(&self, pedestrians: &[Pedestrian], t: f64) -> Tensor {
        let (h, w) = (self.config.image_height, self.config.image_width);
        let cx = w as f64 / 2.0 - 0.5;
        let cy = h as f64 / 2.0 - 0.5;

        // Background: back wall everywhere, floor where it is nearer.
        let mut depth = vec![self.wall_depth_m; h * w];
        for row in 0..h {
            let v_slope = (cy - row as f64) / self.focal_px; // >0 above axis
            if v_slope < 0.0 {
                // Ray descends: hits the floor at z-depth cam_h / |slope|.
                let d_floor = self.config.height_m / (-v_slope);
                if d_floor < self.wall_depth_m {
                    for col in 0..w {
                        depth[row * w + col] = d_floor;
                    }
                }
            }
        }

        // Pedestrians as billboards, z-buffered.
        for p in pedestrians {
            let Some(y) = p.y_at(t) else { continue };
            let d = self.link_distance_m - p.cross_x; // z-depth from camera
            if d <= self.config.near_m {
                continue;
            }
            // Horizontal extent: body centre at lateral offset y.
            let u_lo = (y - p.width_m / 2.0) / d * self.focal_px + cx;
            let u_hi = (y + p.width_m / 2.0) / d * self.focal_px + cx;
            // Vertical extent: feet at z = 0, head at z = height.
            let v_feet = (0.0 - self.config.height_m) / d * self.focal_px;
            let v_head = (p.height_m - self.config.height_m) / d * self.focal_px;
            let row_top = (cy - v_head).ceil().max(0.0) as usize;
            let row_bot = (cy - v_feet).floor().min(h as f64 - 1.0);
            let col_lo = u_lo.ceil().max(0.0) as usize;
            let col_hi = u_hi.floor().min(w as f64 - 1.0);
            if row_bot < 0.0 || col_hi < 0.0 {
                continue;
            }
            let (row_bot, col_hi) = (row_bot as usize, col_hi as usize);
            for row in row_top..=row_bot.min(h - 1) {
                for col in col_lo..=col_hi.min(w - 1) {
                    let cell = &mut depth[row * w + col];
                    if d < *cell {
                        *cell = d;
                    }
                }
            }
        }

        // Fill a pre-shaped tensor instead of round-tripping through the
        // fallible constructor: the buffer is h*w by construction, so
        // there is no length-mismatch path to handle.
        let mut img = Tensor::zeros([h, w]);
        for (px, &d) in img.data_mut().iter_mut().zip(&depth) {
            *px = self.normalize_depth(d);
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SceneConfig;

    fn camera() -> DepthCamera {
        DepthCamera::new(CameraConfig::paper(), 4.0)
    }

    fn pedestrian_at(cross_x: f64, y_now: f64) -> Pedestrian {
        // A walker positioned so that y_at(0) == y_now.
        Pedestrian {
            cross_x,
            spawn_time_s: -(y_now + 3.0), // speed 1, dir +1, start -3
            speed_mps: 1.0,
            direction: 1.0,
            width_m: 0.5,
            height_m: 1.8,
            start_y_m: -3.0,
            corridor_half_m: 3.0,
        }
    }

    #[test]
    fn empty_scene_is_floor_and_wall() {
        let cam = camera();
        let img = cam.render(&[], 0.0);
        assert_eq!(img.dims(), &[40, 40]);
        // Top half: back wall at 7 m, clamped to the far plane.
        let wall = cam.normalize_depth(7.0);
        assert!((img.at(&[0, 20]) - wall).abs() < 1e-6);
        // Bottom rows: floor, nearer than the wall.
        assert!(img.at(&[39, 20]) < wall);
        // Depth increases (floor recedes) toward the image centre.
        assert!(img.at(&[39, 20]) < img.at(&[30, 20]));
    }

    #[test]
    fn pedestrian_on_los_appears_centred() {
        let cam = camera();
        let p = pedestrian_at(2.0, 0.0); // 2 m from camera, on the LoS line
        let img = cam.render(&[p], 0.0);
        let person_depth = cam.normalize_depth(2.0);
        // Centre column, mid height: the body.
        assert!((img.at(&[20, 20]) - person_depth).abs() < 1e-6);
        // Far edges: background.
        assert!(img.at(&[20, 0]) > person_depth);
        assert!(img.at(&[20, 39]) > person_depth);
    }

    #[test]
    fn nearer_pedestrian_occludes_farther() {
        let cam = camera();
        let near = pedestrian_at(3.0, 0.0); // 1 m from camera
        let far = pedestrian_at(1.0, 0.0); // 3 m from camera
        let img = cam.render(&[far.clone(), near.clone()], 0.0);
        assert!((img.at(&[20, 20]) - cam.normalize_depth(1.0)).abs() < 1e-6);
        // Order independence.
        let img2 = cam.render(&[near, far], 0.0);
        assert_eq!(img, img2);
    }

    #[test]
    fn off_axis_pedestrian_appears_off_centre() {
        let cam = camera();
        let p = pedestrian_at(2.0, 0.6); // 0.6 m to image-right at 2 m
        let img = cam.render(&[p], 0.0);
        let person = cam.normalize_depth(2.0);
        // Present on the right side, absent at the centre.
        let right_cols: Vec<f32> = (25..40).map(|c| img.at(&[20, c])).collect();
        assert!(right_cols.iter().any(|&v| (v - person).abs() < 1e-6));
        assert!((img.at(&[20, 18]) - person).abs() > 1e-3);
    }

    #[test]
    fn pedestrian_outside_fov_invisible() {
        let cam = camera();
        let p = pedestrian_at(2.0, 2.5); // far outside the 57° FoV at 2 m
        let img = cam.render(&[p], 0.0);
        let empty = cam.render(&[], 0.0);
        assert_eq!(img, empty);
    }

    #[test]
    fn approaching_pedestrian_grows_then_crosses() {
        // The cross-modal timing property: the silhouette appears before
        // the body reaches the LoS line.
        let cam = camera();
        let cfg = SceneConfig::paper();
        let p = Pedestrian {
            cross_x: 2.0,
            spawn_time_s: 0.0,
            speed_mps: 1.0,
            direction: 1.0,
            width_m: 0.5,
            height_m: 1.8,
            start_y_m: -cfg.corridor_half_m,
            corridor_half_m: cfg.corridor_half_m,
        };
        let person = cam.normalize_depth(2.0);
        let count_person = |t: f64| {
            cam.render(std::slice::from_ref(&p), t)
                .data()
                .iter()
                .filter(|&&v| (v - person).abs() < 1e-6)
                .count()
        };
        let early = count_person(1.0); // y = -2: outside FoV
        let nearly = count_person(2.6); // y = -0.4: inside FoV, off the line
        let crossing = count_person(3.0); // y = 0: on the line
        assert_eq!(early, 0);
        assert!(nearly > 0, "camera must see the pedestrian before crossing");
        assert!(crossing > nearly);
    }

    #[test]
    fn depth_normalization_clamps() {
        let cam = camera();
        assert_eq!(cam.normalize_depth(0.1), 0.0);
        assert_eq!(cam.normalize_depth(100.0), 1.0);
        let mid = cam.normalize_depth(3.25); // (3.25-0.5)/5.5 = 0.5
        assert!((mid - 0.5).abs() < 1e-6);
    }
}
