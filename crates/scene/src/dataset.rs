//! Sequence dataset: windowing, train/validation split, normalization.
//!
//! Mirrors §3 of the paper: at time index `k` the RNN is fed the sequence
//! `{s_{k−L+1}, …, s_k}` with `L = 4` and predicts the received power
//! `T = 120 ms` ahead, i.e. `P_{k+T/γ}` with `γ = 33 ms` — `⌈T/γ⌉ = 4`
//! frames. The training set is the first 9,928 indices
//! (`K_train = {L, …, 9928}`), validation the remainder.

use rand::Rng;

use sl_tensor::Tensor;

use crate::trace::MeasurementTrace;

/// The paper's sequence length `L`.
pub const PAPER_SEQ_LEN: usize = 4;
/// The paper's prediction horizon in frames, `⌈T/γ⌉ = ⌈120/33⌉`.
pub const PAPER_HORIZON_FRAMES: usize = 4;
/// The paper's last (1-based) training index.
pub const PAPER_TRAIN_END: usize = 9_928;
/// The paper's dataset size `|K|`.
pub const PAPER_DATASET_LEN: usize = 13_228;

/// Train/validation index sets over a trace.
///
/// Indices are 0-based positions of the *current* sample `k`; an index is
/// usable iff it has `seq_len − 1` history frames before it and
/// `horizon` future frames after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Usable training indices, ascending.
    pub train: Vec<usize>,
    /// Usable validation indices, ascending.
    pub val: Vec<usize>,
}

impl SplitIndices {
    /// Splits `len` samples the way the paper does: the first
    /// `train_end` samples train, the rest validate. For the paper's
    /// 13,228-sample trace use `train_end = PAPER_TRAIN_END`; for scaled
    /// traces pass e.g. `(0.75 * len) as usize`.
    pub fn time_ordered(len: usize, seq_len: usize, horizon: usize, train_end: usize) -> Self {
        assert!(seq_len >= 1, "SplitIndices: sequence length must be ≥ 1");
        assert!(train_end <= len, "SplitIndices: train_end beyond trace");
        let first = seq_len - 1;
        let last = len.saturating_sub(horizon + 1);
        let mut train = Vec::new();
        let mut val = Vec::new();
        for k in first..=last {
            if k < train_end {
                train.push(k);
            } else {
                val.push(k);
            }
        }
        SplitIndices { train, val }
    }

    /// The paper's split for a trace of the paper's length, scaled
    /// proportionally (9928/13228 ≈ 75 %) for other lengths.
    pub fn paper_style(len: usize, seq_len: usize, horizon: usize) -> Self {
        let train_end = if len == PAPER_DATASET_LEN {
            PAPER_TRAIN_END
        } else {
            len * PAPER_TRAIN_END / PAPER_DATASET_LEN
        };
        SplitIndices::time_ordered(len, seq_len, horizon, train_end)
    }
}

/// Z-score normalizer for received powers (dBm ↔ unitless).
///
/// Fitted on training targets only, so validation data never leaks into
/// the statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerNormalizer {
    /// Mean of the fitted powers, dBm.
    pub mean_dbm: f32,
    /// Standard deviation of the fitted powers, dB.
    pub std_db: f32,
}

impl PowerNormalizer {
    /// Fits mean/std on `powers_dbm`.
    ///
    /// # Panics
    /// Panics on an empty slice or zero variance.
    pub fn fit(powers_dbm: &[f32]) -> Self {
        assert!(!powers_dbm.is_empty(), "PowerNormalizer: no samples");
        let n = powers_dbm.len() as f32;
        let mean = powers_dbm.iter().sum::<f32>() / n;
        let var = powers_dbm
            .iter()
            .map(|&p| (p - mean) * (p - mean))
            .sum::<f32>()
            / n;
        let std = var.sqrt();
        assert!(std > 0.0, "PowerNormalizer: zero variance");
        PowerNormalizer {
            mean_dbm: mean,
            std_db: std,
        }
    }

    /// dBm → unitless.
    pub fn normalize(&self, dbm: f32) -> f32 {
        (dbm - self.mean_dbm) / self.std_db
    }

    /// unitless → dBm.
    pub fn denormalize(&self, z: f32) -> f32 {
        z * self.std_db + self.mean_dbm
    }

    /// Converts an RMSE in normalized units back to dB.
    pub fn rmse_to_db(&self, rmse_normalized: f32) -> f32 {
        rmse_normalized * self.std_db
    }
}

/// One supervised sample: `L` history frames + powers, and the
/// `horizon`-ahead target power.
#[derive(Debug, Clone)]
pub struct SequenceSample<'a> {
    /// Depth frames `x_{k−L+1} … x_k`, oldest first.
    pub images: Vec<&'a Tensor>,
    /// Received powers `P_{k−L+1} … P_k` in dBm, oldest first.
    pub powers_dbm: Vec<f32>,
    /// The prediction target `P_{k+horizon}` in dBm.
    pub target_dbm: f32,
    /// The current index `k` (for trace-aligned diagnostics).
    pub index: usize,
}

/// A windowed view over a [`MeasurementTrace`] with the paper's sequence
/// structure, split and normalizer.
#[derive(Debug, Clone)]
pub struct SequenceDataset {
    trace: MeasurementTrace,
    seq_len: usize,
    horizon: usize,
    splits: SplitIndices,
    normalizer: PowerNormalizer,
}

impl SequenceDataset {
    /// Builds a dataset with explicit windowing parameters. The
    /// normalizer is fitted on training-set *target* powers.
    pub fn new(trace: MeasurementTrace, seq_len: usize, horizon: usize) -> Self {
        assert!(seq_len >= 1, "SequenceDataset: sequence length must be ≥ 1");
        assert!(
            trace.len() > seq_len + horizon,
            "SequenceDataset: trace of {} samples too short for L={} and horizon={}",
            trace.len(),
            seq_len,
            horizon
        );
        let splits = SplitIndices::paper_style(trace.len(), seq_len, horizon);
        assert!(
            !splits.train.is_empty() && !splits.val.is_empty(),
            "SequenceDataset: degenerate split"
        );
        let train_targets: Vec<f32> = splits
            .train
            .iter()
            .map(|&k| trace.powers_dbm[k + horizon])
            .collect();
        let normalizer = PowerNormalizer::fit(&train_targets);
        SequenceDataset {
            trace,
            seq_len,
            horizon,
            splits,
            normalizer,
        }
    }

    /// Builds a dataset with the paper's `L = 4` and 4-frame horizon.
    pub fn paper_windowing(trace: MeasurementTrace) -> Self {
        SequenceDataset::new(trace, PAPER_SEQ_LEN, PAPER_HORIZON_FRAMES)
    }

    /// The underlying trace.
    pub fn trace(&self) -> &MeasurementTrace {
        &self.trace
    }

    /// Sequence length `L`.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Prediction horizon in frames.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The fitted power normalizer.
    pub fn normalizer(&self) -> PowerNormalizer {
        self.normalizer
    }

    /// Training indices.
    pub fn train_indices(&self) -> &[usize] {
        &self.splits.train
    }

    /// Validation indices.
    pub fn val_indices(&self) -> &[usize] {
        &self.splits.val
    }

    /// Assembles the sample at index `k`.
    ///
    /// # Panics
    /// Panics when `k` lacks history or future context.
    pub fn sample(&self, k: usize) -> SequenceSample<'_> {
        assert!(
            k + 1 >= self.seq_len && k + self.horizon < self.trace.len(),
            "SequenceDataset: index {k} out of the usable range"
        );
        let start = k + 1 - self.seq_len;
        SequenceSample {
            images: self.trace.frames[start..=k].iter().collect(),
            powers_dbm: self.trace.powers_dbm[start..=k].to_vec(),
            target_dbm: self.trace.powers_dbm[k + self.horizon],
            index: k,
        }
    }

    /// Draws a uniformly-random training minibatch of `batch_size`
    /// indices (with replacement, as the paper's "uniformly randomly
    /// sampled" minibatches imply).
    pub fn sample_train_batch(&self, batch_size: usize, rng: &mut impl Rng) -> Vec<usize> {
        assert!(batch_size > 0, "SequenceDataset: empty batch");
        (0..batch_size)
            .map(|_| self.splits.train[rng.random_range(0..self.splits.train.len())])
            .collect()
    }

    /// SGD steps per epoch at `batch_size`: `⌈|K_train| / B⌉` (the paper's
    /// 156 steps for `B = 64`).
    pub fn steps_per_epoch(&self, batch_size: usize) -> usize {
        self.splits.train.len().div_ceil(batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scene, SceneConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset(seed: u64) -> SequenceDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
        SequenceDataset::paper_windowing(scene.simulate(&mut rng))
    }

    #[test]
    fn paper_split_counts() {
        let s = SplitIndices::time_ordered(
            PAPER_DATASET_LEN,
            PAPER_SEQ_LEN,
            PAPER_HORIZON_FRAMES,
            PAPER_TRAIN_END,
        );
        // K_train = {L, …, 9928} (1-based) has 9925 usable indices.
        assert_eq!(s.train.len(), PAPER_TRAIN_END - PAPER_SEQ_LEN + 1);
        assert_eq!(*s.train.first().unwrap(), PAPER_SEQ_LEN - 1);
        assert_eq!(*s.train.last().unwrap(), PAPER_TRAIN_END - 1);
        // Validation: the rest, minus the horizon tail.
        assert_eq!(
            s.val.len(),
            PAPER_DATASET_LEN - PAPER_TRAIN_END - PAPER_HORIZON_FRAMES
        );
        // The paper's 156 steps/epoch at B = 64.
        assert_eq!(s.train.len().div_ceil(64), 156);
    }

    #[test]
    fn splits_are_disjoint_and_time_ordered() {
        let s = SplitIndices::paper_style(600, 4, 4);
        let last_train = *s.train.last().unwrap();
        let first_val = *s.val.first().unwrap();
        assert!(
            last_train < first_val,
            "validation must follow training in time"
        );
        assert!(s.train.windows(2).all(|w| w[0] < w[1]));
        assert!(s.val.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_structure() {
        let ds = tiny_dataset(41);
        let k = ds.train_indices()[10];
        let s = ds.sample(k);
        assert_eq!(s.images.len(), 4);
        assert_eq!(s.powers_dbm.len(), 4);
        assert_eq!(s.index, k);
        // Target is exactly the trace value horizon frames ahead.
        assert_eq!(s.target_dbm, ds.trace().powers_dbm[k + 4]);
        // Newest image is the trace frame at k.
        assert_eq!(s.images[3], &ds.trace().frames[k]);
        assert_eq!(s.images[0], &ds.trace().frames[k - 3]);
    }

    #[test]
    #[should_panic(expected = "usable range")]
    fn sample_requires_history() {
        let ds = tiny_dataset(42);
        ds.sample(1);
    }

    #[test]
    fn normalizer_round_trip_and_training_only_fit() {
        let ds = tiny_dataset(43);
        let n = ds.normalizer();
        for &p in &[-45.0f32, -20.0, -18.0] {
            assert!((n.denormalize(n.normalize(p)) - p).abs() < 1e-4);
        }
        // Normalized training targets must be ~zero-mean, unit-variance.
        let zs: Vec<f32> = ds
            .train_indices()
            .iter()
            .map(|&k| n.normalize(ds.trace().powers_dbm[k + 4]))
            .collect();
        let mean = zs.iter().sum::<f32>() / zs.len() as f32;
        let var = zs.iter().map(|z| (z - mean) * (z - mean)).sum::<f32>() / zs.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
        assert!((n.rmse_to_db(1.0) - n.std_db).abs() < 1e-6);
    }

    #[test]
    fn batches_draw_from_training_set_only() {
        let ds = tiny_dataset(44);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = ds.sample_train_batch(256, &mut rng);
        assert_eq!(batch.len(), 256);
        let val_start = ds.val_indices()[0];
        assert!(batch.iter().all(|&k| k < val_start));
    }

    #[test]
    fn steps_per_epoch_ceil() {
        let ds = tiny_dataset(45);
        let n = ds.train_indices().len();
        assert_eq!(ds.steps_per_epoch(64), n.div_ceil(64));
        assert_eq!(ds.steps_per_epoch(n), 1);
    }
}
