//! Chunked trace persistence over `sl-store`.
//!
//! The whole-file `.slt` format (see [`crate::TraceIoError`]'s module)
//! loads everything or nothing; beyond the paper's 13k-frame scale that
//! means minutes of IO for a scene when an experiment only needs a
//! window of it. The chunked layout stores a trace as a directory of
//! checksummed `sl-store` arrays:
//!
//! * `meta.json` — height, width, frame count and the frame interval
//!   (as exact IEEE-754 bits, so reloads are bitwise);
//! * `powers` — the received-power series, raw `f32`;
//! * `frames` — one item per depth frame (`item_len = h·w`), default
//!   codec `delta+rle`: consecutive frames differ only where the
//!   pedestrians moved, so the XOR-delta stream is mostly zeros.
//!
//! [`MeasurementTrace::load_frame_range`] reads only the chunks
//! overlapping the requested window — the streaming path. Chunk bytes
//! are bitwise independent of `SLM_THREADS`/`SLM_BACKEND` (the
//! `store-bitwise` verify stage), so chunked scenes can be content-
//! compared across machines.

use std::path::Path;

use sl_store::{
    read_items, read_manifest, write_array, Codec, DirStorage, StorageRead, StorageWrite,
    StoreMetrics,
};
use sl_telemetry::json::{parse, JsonObject};
use sl_tensor::{ComputePool, Tensor};

use crate::io::TraceIoError;
use crate::trace::MeasurementTrace;

const META: &str = "meta.json";
const META_VERSION: u64 = 1;
const POWERS: &str = "powers";
const FRAMES: &str = "frames";

struct TraceMeta {
    h: usize,
    w: usize,
    n: usize,
    interval: f64,
}

fn load_meta<S: StorageRead>(storage: &S) -> Result<TraceMeta, TraceIoError> {
    let bytes = storage.get(META)?;
    let text =
        String::from_utf8(bytes).map_err(|_| TraceIoError::Corrupt("trace meta is not UTF-8"))?;
    let meta = parse(&text).map_err(|_| TraceIoError::Corrupt("trace meta is not JSON"))?;
    let field = |k: &str| -> Result<u64, TraceIoError> {
        meta.get(k)
            .and_then(|v| v.as_u64())
            .ok_or(TraceIoError::Corrupt("trace meta field missing"))
    };
    if field("version")? != META_VERSION {
        return Err(TraceIoError::Corrupt("unsupported trace meta version"));
    }
    let (h, w, n) = (
        field("height")? as usize,
        field("width")? as usize,
        field("frames")? as usize,
    );
    let interval = meta
        .get("interval_bits")
        .and_then(|v| v.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or(TraceIoError::Corrupt("trace meta has no interval"))?;
    if h == 0 || w == 0 || n == 0 {
        return Err(TraceIoError::Corrupt("zero dimension"));
    }
    if !(interval.is_finite() && interval > 0.0) {
        return Err(TraceIoError::Corrupt("bad frame interval"));
    }
    Ok(TraceMeta { h, w, n, interval })
}

impl MeasurementTrace {
    /// Writes the trace into `dir` as chunked, checksummed arrays with
    /// `codec` on the frames array (`Codec::DeltaRle` is the fit for
    /// depth maps; `SLM_STORE_CODEC` callers pass
    /// [`sl_store::configured_codec`]). `metrics` accumulates the write
    /// counters (bytes, chunks, compression).
    pub fn save_chunked(
        &self,
        dir: impl AsRef<Path>,
        codec: Codec,
        metrics: &mut StoreMetrics,
    ) -> Result<(), TraceIoError> {
        assert!(!self.is_empty(), "save_chunked: empty trace");
        let (h, w) = (self.frames[0].dims()[0], self.frames[0].dims()[1]);
        let mut storage = DirStorage::create(dir.as_ref())?;
        let meta = JsonObject::new()
            .u64("version", META_VERSION)
            .u64("height", h as u64)
            .u64("width", w as u64)
            .u64("frames", self.len() as u64)
            .str(
                "interval_bits",
                &format!("{:016x}", self.frame_interval_s.to_bits()),
            )
            .finish();
        storage.put(META, meta.as_bytes())?;

        let pool = ComputePool::global();
        write_array(
            &mut storage,
            POWERS,
            1,
            &self.powers_dbm,
            sl_store::configured_chunk_items(1),
            Codec::Raw,
            pool,
            metrics,
        )?;
        let item_len = h * w;
        let mut pixels = Vec::with_capacity(self.len() * item_len);
        for frame in &self.frames {
            assert_eq!(frame.dims(), &[h, w], "save_chunked: inconsistent frames");
            pixels.extend_from_slice(frame.data());
        }
        write_array(
            &mut storage,
            FRAMES,
            item_len,
            &pixels,
            sl_store::configured_chunk_items(item_len),
            codec,
            pool,
            metrics,
        )?;
        Ok(())
    }

    /// Reads a whole chunked trace back (bitwise identical to what
    /// [`MeasurementTrace::save_chunked`] stored).
    pub fn load_chunked(
        dir: impl AsRef<Path>,
        metrics: &mut StoreMetrics,
    ) -> Result<MeasurementTrace, TraceIoError> {
        let storage = DirStorage::create(dir.as_ref())?;
        let meta = load_meta(&storage)?;
        let pool = ComputePool::global();
        let powers_manifest = read_manifest(&storage, POWERS)?;
        if powers_manifest.items != meta.n {
            return Err(TraceIoError::Corrupt("power count disagrees with meta"));
        }
        let powers_dbm = read_items(&storage, &powers_manifest, 0, meta.n, pool, metrics)?;
        let frames = load_range(&storage, &meta, 0, meta.n, pool, metrics)?;
        Ok(MeasurementTrace {
            frames,
            powers_dbm,
            frame_interval_s: meta.interval,
        })
    }

    /// Streams frames `[start, start + count)` out of a chunked trace,
    /// touching only the chunks that overlap the window — constant
    /// memory in the trace length.
    pub fn load_frame_range(
        dir: impl AsRef<Path>,
        start: usize,
        count: usize,
    ) -> Result<Vec<Tensor>, TraceIoError> {
        let storage = DirStorage::create(dir.as_ref())?;
        let meta = load_meta(&storage)?;
        let mut metrics = StoreMetrics::default();
        load_range(
            &storage,
            &meta,
            start,
            count,
            ComputePool::global(),
            &mut metrics,
        )
    }
}

fn load_range<S: StorageRead>(
    storage: &S,
    meta: &TraceMeta,
    start: usize,
    count: usize,
    pool: &ComputePool,
    metrics: &mut StoreMetrics,
) -> Result<Vec<Tensor>, TraceIoError> {
    let manifest = read_manifest(storage, FRAMES)?;
    if manifest.items != meta.n || manifest.item_len != meta.h * meta.w {
        return Err(TraceIoError::Corrupt("frame array disagrees with meta"));
    }
    let pixels = read_items(storage, &manifest, start, count, pool, metrics)?;
    let item_len = meta.h * meta.w;
    Ok(pixels
        .chunks_exact(item_len)
        .map(|px| Tensor::from_parts([meta.h, meta.w], px.to_vec()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scene, SceneConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_store::StoreError;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slt_chunked_{name}_{}", std::process::id()))
    }

    fn trace(frames: usize, seed: u64) -> MeasurementTrace {
        let cfg = SceneConfig {
            num_frames: frames,
            ..SceneConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        Scene::generate(cfg, &mut rng).simulate(&mut rng)
    }

    #[test]
    fn chunked_round_trip_is_bitwise() {
        let t = trace(30, 500);
        let dir = tmp("round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut metrics = StoreMetrics::default();
        t.save_chunked(&dir, Codec::DeltaRle, &mut metrics).unwrap();
        assert!(metrics.bytes_raw > 0);
        let back = MeasurementTrace::load_chunked(&dir, &mut metrics).unwrap();
        assert_eq!(
            back.frame_interval_s.to_bits(),
            t.frame_interval_s.to_bits()
        );
        assert_eq!(back.powers_dbm.len(), t.powers_dbm.len());
        assert!(back
            .powers_dbm
            .iter()
            .zip(&t.powers_dbm)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        for (a, b) in back.frames.iter().zip(&t.frames) {
            assert_eq!(a, b);
        }
        // Depth frames are mostly static: delta+rle must actually
        // compress (the bench gate asserts the same on the fig3a scene).
        assert!(
            metrics.ratio() > 1.0,
            "no compression: ratio {}",
            metrics.ratio()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_range_streams_the_window() {
        let t = trace(25, 501);
        let dir = tmp("range");
        let _ = std::fs::remove_dir_all(&dir);
        let mut metrics = StoreMetrics::default();
        t.save_chunked(&dir, Codec::DeltaRle, &mut metrics).unwrap();
        let window = MeasurementTrace::load_frame_range(&dir, 7, 9).unwrap();
        assert_eq!(window.len(), 9);
        for (i, f) in window.iter().enumerate() {
            assert_eq!(f, &t.frames[7 + i]);
        }
        // Out-of-bounds windows are typed errors.
        assert!(matches!(
            MeasurementTrace::load_frame_range(&dir, 20, 10),
            Err(TraceIoError::Store(StoreError::Range(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_chunk_is_a_checksum_error() {
        let t = trace(12, 502);
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut metrics = StoreMetrics::default();
        t.save_chunked(&dir, Codec::DeltaRle, &mut metrics).unwrap();
        let chunk = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| {
                let n = e.file_name();
                let n = n.to_string_lossy();
                n.starts_with("frames.chunk") && n.ends_with(".slc")
            })
            .expect("no frame chunks");
        let mut bytes = std::fs::read(chunk.path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(chunk.path(), &bytes).unwrap();
        assert!(matches!(
            MeasurementTrace::load_chunked(&dir, &mut metrics),
            Err(TraceIoError::Store(StoreError::Checksum { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
