//! Scene and camera configuration.

/// Pinhole depth-camera parameters.
///
/// The camera sits at the UE, at `height_m` above the floor, looking
/// straight down the line-of-sight path toward the BS. Depth values are
/// normalized Kinect-style: `0` at `near_m`, `1` at `far_m` and beyond
/// (background).
#[derive(Debug, Clone, PartialEq)]
pub struct CameraConfig {
    /// Image height in pixels (`N_H`).
    pub image_height: usize,
    /// Image width in pixels (`N_W`).
    pub image_width: usize,
    /// Horizontal field of view in radians.
    pub horizontal_fov_rad: f64,
    /// Camera height above the floor in metres.
    pub height_m: f64,
    /// Nearest representable depth in metres.
    pub near_m: f64,
    /// Depth mapped to 1.0 (background) in metres.
    pub far_m: f64,
}

impl CameraConfig {
    /// A Kinect-like camera producing the paper's 40×40 CNN-input frames.
    ///
    /// The raw Kinect has a 57° horizontal FoV, but the source dataset
    /// (Nishio et al. [4]) preprocesses frames to a region of interest
    /// around the link before feeding the CNN; we model that ROI crop as
    /// an effective 24° FoV. This matters for the one-pixel result: with
    /// the crop, "pedestrian in view" is tightly coupled to "blockage
    /// imminent", which is what a single globally-averaged pixel can
    /// encode.
    pub fn paper() -> Self {
        CameraConfig {
            image_height: 40,
            image_width: 40,
            horizontal_fov_rad: 24f64.to_radians(),
            height_m: 1.0,
            near_m: 0.5,
            far_m: 6.0,
        }
    }
}

/// Full synthetic-scene configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Camera intrinsics and placement.
    pub camera: CameraConfig,
    /// Frame interval in seconds (the paper's `γ = 33 ms`).
    pub frame_interval_s: f64,
    /// Number of (image, power) samples to generate (paper: 13,228).
    pub num_frames: usize,
    /// BS–UE distance in metres (`r = 4 m`).
    pub distance_m: f64,
    /// Received power under unobstructed line of sight, in dBm.
    pub los_power_dbm: f64,
    /// Maximum human-body shadowing depth in dB (60 GHz measurements
    /// report 15–25 dB; we default to 22 dB).
    pub blockage_depth_db: f64,
    /// Half-width of the shadowing transition zone around the body edge,
    /// in metres (models the Fresnel-zone ramp as the body enters the
    /// first Fresnel zone).
    pub transition_margin_m: f64,
    /// Mean pedestrian spawn rate in pedestrians per second (Poisson).
    pub pedestrian_rate_hz: f64,
    /// Where trajectories may cross the LoS line, as distances from the
    /// BS in metres. The source testbed [3] funnels pedestrians through
    /// a fixed crossing region near the middle of the link; a narrow
    /// band is also what makes a *one-pixel* image a sufficient
    /// statistic for time-to-blockage.
    pub crossing_band_m: (f64, f64),
    /// Pedestrian walking speed range in m/s.
    pub speed_range_mps: (f64, f64),
    /// Pedestrian shoulder width range in metres.
    pub body_width_range_m: (f64, f64),
    /// Pedestrian height range in metres.
    pub body_height_range_m: (f64, f64),
    /// Corridor half-width: pedestrians walk from `±corridor_half_m` to
    /// the opposite side, crossing the LoS line.
    pub corridor_half_m: f64,
    /// Standard deviation of the slow (AR(1)-correlated) shadowing term,
    /// in dB.
    pub shadowing_sigma_db: f64,
    /// AR(1) coefficient of the slow shadowing term per frame.
    pub shadowing_rho: f64,
    /// Standard deviation of the i.i.d. fast-fading term, in dB.
    pub fading_sigma_db: f64,
}

impl SceneConfig {
    /// The full-scale configuration matching the paper's dataset: 13,228
    /// frames at 33 ms (≈ 7.3 minutes), 40×40 images, 4 m link.
    pub fn paper() -> Self {
        SceneConfig {
            camera: CameraConfig::paper(),
            frame_interval_s: 0.033,
            num_frames: 13_228,
            distance_m: 4.0,
            los_power_dbm: -18.0,
            blockage_depth_db: 22.0,
            // ~2 frames of ramp at walking speed: sharp enough that the
            // RF history alone gives almost no warning of an onset (the
            // paper's premise), while the camera sees the pedestrian
            // approach ~1 s earlier.
            transition_margin_m: 0.05,
            pedestrian_rate_hz: 1.0 / 5.0,
            crossing_band_m: (1.6, 2.4),
            speed_range_mps: (0.6, 1.4),
            body_width_range_m: (0.40, 0.55),
            body_height_range_m: (1.55, 1.90),
            corridor_half_m: 3.0,
            shadowing_sigma_db: 0.4,
            shadowing_rho: 0.95,
            fading_sigma_db: 0.8,
        }
    }

    /// A reduced configuration for fast unit/integration tests: 16×16
    /// frames, a few hundred samples, denser pedestrian traffic so short
    /// traces still contain blockage events.
    pub fn tiny() -> Self {
        SceneConfig {
            camera: CameraConfig {
                image_height: 16,
                image_width: 16,
                ..CameraConfig::paper()
            },
            num_frames: 600,
            pedestrian_rate_hz: 1.0 / 2.5,
            ..SceneConfig::paper()
        }
    }

    /// Total trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.num_frames as f64 * self.frame_interval_s
    }

    /// Validates internal consistency; called by the generators.
    pub fn validate(&self) {
        assert!(self.camera.image_height > 0 && self.camera.image_width > 0);
        assert!(self.camera.near_m > 0.0 && self.camera.far_m > self.camera.near_m);
        assert!(
            self.frame_interval_s > 0.0,
            "frame interval must be positive"
        );
        assert!(self.num_frames > 0, "trace must contain frames");
        assert!(self.distance_m > 0.0, "link distance must be positive");
        assert!(self.blockage_depth_db >= 0.0);
        assert!(self.transition_margin_m >= 0.0);
        assert!(self.pedestrian_rate_hz >= 0.0);
        assert!(
            self.crossing_band_m.0 > 0.0
                && self.crossing_band_m.1 > self.crossing_band_m.0
                && self.crossing_band_m.1 < self.distance_m,
            "crossing band must lie strictly between the BS and the UE"
        );
        assert!(self.speed_range_mps.0 > 0.0 && self.speed_range_mps.1 >= self.speed_range_mps.0);
        assert!(self.body_width_range_m.0 > 0.0);
        assert!(self.body_height_range_m.0 > 0.0);
        assert!(self.corridor_half_m > 0.0);
        assert!((0.0..1.0).contains(&self.shadowing_rho));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_dataset() {
        let cfg = SceneConfig::paper();
        cfg.validate();
        assert_eq!(cfg.num_frames, 13_228);
        assert_eq!(cfg.camera.image_height, 40);
        assert_eq!(cfg.camera.image_width, 40);
        // ≈ 7.3 minutes of trace.
        assert!((cfg.duration_s() - 436.5).abs() < 1.0);
    }

    #[test]
    fn tiny_config_is_valid_and_small() {
        let cfg = SceneConfig::tiny();
        cfg.validate();
        assert!(cfg.num_frames <= 1000);
        assert!(cfg.camera.image_height <= 16);
    }

    #[test]
    #[should_panic(expected = "frames")]
    fn empty_trace_rejected() {
        SceneConfig {
            num_frames: 0,
            ..SceneConfig::tiny()
        }
        .validate();
    }
}
