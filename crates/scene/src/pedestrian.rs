//! Pedestrian trajectories.
//!
//! The scene's coordinate frame: the BS stands at the origin, the UE at
//! `(r, 0)`; the line-of-sight path is the segment of the x-axis between
//! them. Pedestrians walk parallel to the y-axis (perpendicular to the
//! link), crossing it at a fixed `cross_x` somewhere between the
//! endpoints — the geometry of the corridor experiment in the paper's
//! source dataset [3, 4].

use rand::Rng;

use crate::config::SceneConfig;

/// One pedestrian: a vertical box of `width × width × height` metres
/// moving along the y-axis at constant speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Pedestrian {
    /// Where the trajectory crosses the LoS line (distance from the BS,
    /// metres).
    pub cross_x: f64,
    /// Time at which the pedestrian is spawned at `±corridor_half`.
    pub spawn_time_s: f64,
    /// Walking speed in m/s (always positive).
    pub speed_mps: f64,
    /// `+1` walks from `-corridor_half` to `+corridor_half`, `-1` the
    /// reverse.
    pub direction: f64,
    /// Shoulder width in metres (the blocking cross-section).
    pub width_m: f64,
    /// Body height in metres.
    pub height_m: f64,
    /// y-coordinate at spawn (±corridor_half, opposite to `direction`).
    pub start_y_m: f64,
    /// Corridor half-width; the pedestrian despawns on reaching the far
    /// side.
    pub corridor_half_m: f64,
}

impl Pedestrian {
    /// Samples a pedestrian spawning at `spawn_time_s` with geometry and
    /// kinematics drawn from `config`.
    pub fn sample(config: &SceneConfig, spawn_time_s: f64, rng: &mut impl Rng) -> Self {
        let direction = if rng.random::<bool>() { 1.0 } else { -1.0 };
        let (s_lo, s_hi) = config.speed_range_mps;
        let (w_lo, w_hi) = config.body_width_range_m;
        let (h_lo, h_hi) = config.body_height_range_m;
        let (x_lo, x_hi) = config.crossing_band_m;
        Pedestrian {
            cross_x: rng.random_range(x_lo..x_hi),
            spawn_time_s,
            speed_mps: rng.random_range(s_lo..=s_hi),
            direction,
            width_m: rng.random_range(w_lo..=w_hi),
            height_m: rng.random_range(h_lo..=h_hi),
            start_y_m: -direction * config.corridor_half_m,
            corridor_half_m: config.corridor_half_m,
        }
    }

    /// The pedestrian's y-coordinate at absolute time `t`, or `None`
    /// before spawn / after despawn.
    pub fn y_at(&self, t: f64) -> Option<f64> {
        if t < self.spawn_time_s {
            return None;
        }
        let y = self.start_y_m + self.direction * self.speed_mps * (t - self.spawn_time_s);
        if y.abs() > self.corridor_half_m {
            None
        } else {
            Some(y)
        }
    }

    /// `true` when the pedestrian exists in the scene at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.y_at(t).is_some()
    }

    /// Time at which the body *centre* crosses the LoS line (y = 0).
    pub fn crossing_time_s(&self) -> f64 {
        self.spawn_time_s + self.corridor_half_m / self.speed_mps
    }

    /// Shortest distance from the body's blocking edge to the LoS line at
    /// time `t`: `max(0, |y| − width/2)`. Zero means the body straddles
    /// the line. `None` when inactive.
    pub fn edge_distance_to_los(&self, t: f64) -> Option<f64> {
        self.y_at(t)
            .map(|y| (y.abs() - self.width_m / 2.0).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walker() -> Pedestrian {
        Pedestrian {
            cross_x: 2.0,
            spawn_time_s: 10.0,
            speed_mps: 1.0,
            direction: 1.0,
            width_m: 0.5,
            height_m: 1.8,
            start_y_m: -3.0,
            corridor_half_m: 3.0,
        }
    }

    #[test]
    fn inactive_before_spawn_and_after_exit() {
        let p = walker();
        assert!(!p.active_at(9.9));
        assert!(p.active_at(10.0));
        assert!(p.active_at(15.9)); // 6 m at 1 m/s
        assert!(!p.active_at(16.1));
    }

    #[test]
    fn crosses_los_at_predicted_time() {
        let p = walker();
        let tc = p.crossing_time_s();
        assert!((tc - 13.0).abs() < 1e-9);
        assert!(p.y_at(tc).unwrap().abs() < 1e-9);
    }

    #[test]
    fn edge_distance_reaches_zero_during_crossing() {
        let p = walker();
        // At crossing time the centre is on the line -> edge distance 0.
        assert_eq!(p.edge_distance_to_los(p.crossing_time_s()), Some(0.0));
        // 1 s before crossing the centre is 1 m away -> edge 0.75 m.
        let d = p.edge_distance_to_los(p.crossing_time_s() - 1.0).unwrap();
        assert!((d - 0.75).abs() < 1e-9);
        assert_eq!(p.edge_distance_to_los(0.0), None);
    }

    #[test]
    fn sampled_pedestrians_respect_config_ranges() {
        let cfg = SceneConfig::paper();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let p = Pedestrian::sample(&cfg, 5.0, &mut rng);
            assert!(p.cross_x >= cfg.crossing_band_m.0 && p.cross_x <= cfg.crossing_band_m.1);
            assert!(p.speed_mps >= cfg.speed_range_mps.0 && p.speed_mps <= cfg.speed_range_mps.1);
            assert!(p.width_m >= cfg.body_width_range_m.0 && p.width_m <= cfg.body_width_range_m.1);
            assert!(
                p.height_m >= cfg.body_height_range_m.0 && p.height_m <= cfg.body_height_range_m.1
            );
            assert_eq!(p.start_y_m, -p.direction * cfg.corridor_half_m);
        }
    }

    #[test]
    fn reverse_direction_walker_mirrors() {
        let mut p = walker();
        p.direction = -1.0;
        p.start_y_m = 3.0;
        assert!((p.y_at(12.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((p.crossing_time_s() - 13.0).abs() < 1e-9);
    }
}
