//! Trace persistence.
//!
//! Generated traces can be saved and reloaded so that experiments across
//! processes (or future sessions) share the exact same dataset. The
//! format (`.slt`, *s*plit-*l*earning *t*race) is a minimal
//! little-endian binary layout — no external serialization dependency:
//!
//! ```text
//! magic  b"SLTRACE1"                      8 bytes
//! height u32 | width u32 | frames u32     12 bytes
//! frame_interval_s f64                    8 bytes
//! powers  f32 × frames
//! pixels  f32 × frames·height·width       (row-major per frame)
//! ```

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use sl_tensor::Tensor;

use crate::trace::MeasurementTrace;

const MAGIC: &[u8; 8] = b"SLTRACE1";

/// Errors from loading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an `.slt` file (bad magic).
    BadMagic,
    /// Structurally invalid contents.
    Corrupt(&'static str),
    /// The chunked store failed (IO, checksum mismatch, bad range) —
    /// see [`MeasurementTrace::load_chunked`].
    Store(sl_store::StoreError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a SLTRACE1 file"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
            TraceIoError::Store(e) => write!(f, "trace store error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<sl_store::StoreError> for TraceIoError {
    fn from(e: sl_store::StoreError) -> Self {
        TraceIoError::Store(e)
    }
}

impl MeasurementTrace {
    /// Writes the trace to `path` in the `.slt` format.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
        assert!(!self.is_empty(), "save: empty trace");
        let (h, w) = (self.frames[0].dims()[0], self.frames[0].dims()[1]);
        let mut buf = Vec::with_capacity(28 + self.len() * (4 + h * w * 4));
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(h as u32).to_le_bytes());
        buf.extend_from_slice(&(w as u32).to_le_bytes());
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.frame_interval_s.to_le_bytes());
        for &p in &self.powers_dbm {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        for frame in &self.frames {
            assert_eq!(frame.dims(), &[h, w], "save: inconsistent frame sizes");
            for &px in frame.data() {
                buf.extend_from_slice(&px.to_le_bytes());
            }
        }
        let mut file = fs::File::create(path)?;
        file.write_all(&buf)?;
        Ok(())
    }

    /// Reads a trace previously written by [`MeasurementTrace::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<MeasurementTrace, TraceIoError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 28 || &bytes[..8] != MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        // Fixed-width array reads are infallible (header length checked
        // above, payload length checked below) — no unwrap needed.
        let u32_at = |o: usize| {
            u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]) as usize
        };
        let (h, w, n) = (u32_at(8), u32_at(12), u32_at(16));
        let interval = f64::from_le_bytes([
            bytes[20], bytes[21], bytes[22], bytes[23], bytes[24], bytes[25], bytes[26], bytes[27],
        ]);
        if h == 0 || w == 0 || n == 0 {
            return Err(TraceIoError::Corrupt("zero dimension"));
        }
        if !(interval.is_finite() && interval > 0.0) {
            return Err(TraceIoError::Corrupt("bad frame interval"));
        }
        let expected = 28 + n * 4 + n * h * w * 4;
        if bytes.len() != expected {
            return Err(TraceIoError::Corrupt("length mismatch"));
        }
        let f32_at =
            |o: usize| f32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let powers: Vec<f32> = (0..n).map(|i| f32_at(28 + i * 4)).collect();
        let base = 28 + n * 4;
        let frames: Vec<Tensor> = (0..n)
            .map(|i| Tensor::from_fn([h, w], |j| f32_at(base + (i * h * w + j) * 4)))
            .collect();
        Ok(MeasurementTrace {
            frames,
            powers_dbm: powers,
            frame_interval_s: interval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scene, SceneConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slt_test_{name}_{}.slt", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cfg = SceneConfig {
            num_frames: 30,
            ..SceneConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(400);
        let scene = Scene::generate(cfg, &mut rng);
        let trace = scene.simulate(&mut rng);
        let path = tmp("round_trip");
        trace.save(&path).unwrap();
        let loaded = MeasurementTrace::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.len(), trace.len());
        assert_eq!(loaded.powers_dbm, trace.powers_dbm);
        assert_eq!(loaded.frame_interval_s, trace.frame_interval_s);
        for (a, b) in loaded.frames.iter().zip(&trace.frames) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(matches!(
            MeasurementTrace::load(&path),
            Err(TraceIoError::BadMagic)
        ));

        // Valid header, truncated body.
        let cfg = SceneConfig {
            num_frames: 5,
            ..SceneConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(401);
        let scene = Scene::generate(cfg, &mut rng);
        let trace = scene.simulate(&mut rng);
        trace.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MeasurementTrace::load(&path),
            Err(TraceIoError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            MeasurementTrace::load("/nonexistent/path/x.slt"),
            Err(TraceIoError::Io(_))
        ));
    }
}
