//! Scene assembly and measurement-trace generation.

use rand::Rng;

use sl_tensor::Tensor;

use crate::camera::DepthCamera;
use crate::config::SceneConfig;
use crate::pedestrian::Pedestrian;
use crate::power::{blockage_attenuation_db, PowerModel};

/// A fully-instantiated scene: the configuration plus every pedestrian
/// that will walk through the corridor during the trace.
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    pedestrians: Vec<Pedestrian>,
}

impl Scene {
    /// Generates a scene: pedestrian spawns follow a Poisson process of
    /// rate `config.pedestrian_rate_hz` over the trace duration (plus a
    /// lead-in so the trace can *start* mid-blockage).
    pub fn generate(config: SceneConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let mut pedestrians = Vec::new();
        if config.pedestrian_rate_hz > 0.0 {
            // Lead-in long enough for a spawned pedestrian to reach the
            // corridor centre before t = 0.
            let lead_in = config.corridor_half_m / config.speed_range_mps.0;
            let mut t = -lead_in;
            loop {
                // Exponential inter-arrival times.
                let u: f64 = 1.0 - rng.random::<f64>();
                t += -u.ln() / config.pedestrian_rate_hz;
                if t >= config.duration_s() {
                    break;
                }
                pedestrians.push(Pedestrian::sample(&config, t, rng));
            }
        }
        Scene {
            config,
            pedestrians,
        }
    }

    /// A scene with an explicit pedestrian list (tests, figures).
    pub fn with_pedestrians(config: SceneConfig, pedestrians: Vec<Pedestrian>) -> Self {
        config.validate();
        Scene {
            config,
            pedestrians,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// All pedestrians (including not-yet-spawned ones).
    pub fn pedestrians(&self) -> &[Pedestrian] {
        &self.pedestrians
    }

    /// The timestamp of frame `k`.
    pub fn frame_time(&self, k: usize) -> f64 {
        k as f64 * self.config.frame_interval_s
    }

    /// The deterministic blockage attenuation at frame `k`, in dB.
    pub fn blockage_at_frame(&self, k: usize) -> f64 {
        blockage_attenuation_db(&self.config, &self.pedestrians, self.frame_time(k))
    }

    /// Renders and samples the whole trace.
    pub fn simulate(&self, rng: &mut impl Rng) -> MeasurementTrace {
        let camera = DepthCamera::new(self.config.camera.clone(), self.config.distance_m);
        let mut power = PowerModel::new(self.config.clone());
        let mut frames = Vec::with_capacity(self.config.num_frames);
        let mut powers = Vec::with_capacity(self.config.num_frames);
        for k in 0..self.config.num_frames {
            let t = self.frame_time(k);
            frames.push(camera.render(&self.pedestrians, t));
            powers.push(power.sample_dbm(&self.pedestrians, t, rng) as f32);
        }
        MeasurementTrace {
            frames,
            powers_dbm: powers,
            frame_interval_s: self.config.frame_interval_s,
        }
    }
}

/// A time-aligned trace of depth frames and received powers — the
/// synthetic stand-in for the paper's `s_k = (x_k, P_k), k ∈ K` dataset.
#[derive(Debug, Clone)]
pub struct MeasurementTrace {
    /// Normalized `[H, W]` depth frames, one per time index.
    pub frames: Vec<Tensor>,
    /// Received power in dBm, aligned with `frames`.
    pub powers_dbm: Vec<f32>,
    /// Frame interval in seconds (the paper's `γ`).
    pub frame_interval_s: f64,
}

impl MeasurementTrace {
    /// Number of samples `|K|`.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Fraction of samples whose power is more than `threshold_db` below
    /// the trace maximum — a crude blockage-duty-cycle diagnostic.
    pub fn deep_fade_fraction(&self, threshold_db: f32) -> f64 {
        if self.powers_dbm.is_empty() {
            return 0.0;
        }
        let max = self
            .powers_dbm
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let n = self
            .powers_dbm
            .iter()
            .filter(|&&p| p < max - threshold_db)
            .count();
        n as f64 / self.powers_dbm.len() as f64
    }
}

/// Renders a normalized depth frame as ASCII art (dark = near), for the
/// examples and the Fig. 2 harness.
pub fn ascii_frame(frame: &Tensor) -> String {
    const RAMP: &[u8] = b"@%#*+=-:. "; // near .. far
    assert_eq!(frame.shape().rank(), 2, "ascii_frame: frame must be rank-2");
    let (h, w) = (frame.dims()[0], frame.dims()[1]);
    let mut out = String::with_capacity(h * (w + 1));
    for r in 0..h {
        for c in 0..w {
            let v = frame.at(&[r, c]).clamp(0.0, 1.0);
            let idx = (v * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let a = Scene::generate(SceneConfig::tiny(), &mut StdRng::seed_from_u64(1));
        let b = Scene::generate(SceneConfig::tiny(), &mut StdRng::seed_from_u64(1));
        assert_eq!(a.pedestrians(), b.pedestrians());
        let c = Scene::generate(SceneConfig::tiny(), &mut StdRng::seed_from_u64(2));
        assert_ne!(a.pedestrians(), c.pedestrians());
    }

    #[test]
    fn poisson_spawn_count_matches_rate() {
        let cfg = SceneConfig {
            num_frames: 30_000, // ~990 s
            ..SceneConfig::tiny()
        };
        let scene = Scene::generate(cfg.clone(), &mut StdRng::seed_from_u64(3));
        let expect = cfg.duration_s() * cfg.pedestrian_rate_hz;
        let got = scene.pedestrians().len() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.15,
            "spawned {got}, expected ≈{expect}"
        );
    }

    #[test]
    fn trace_has_configured_length_and_finite_values() {
        let cfg = SceneConfig::tiny();
        let mut rng = StdRng::seed_from_u64(4);
        let scene = Scene::generate(cfg.clone(), &mut rng);
        let trace = scene.simulate(&mut rng);
        assert_eq!(trace.len(), cfg.num_frames);
        assert!(!trace.is_empty());
        for f in &trace.frames {
            assert_eq!(f.dims(), &[16, 16]);
            assert!(f.all_finite());
            assert!(f.min() >= 0.0 && f.max() <= 1.0);
        }
        assert!(trace.powers_dbm.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn trace_contains_blockage_events() {
        let cfg = SceneConfig::tiny();
        let mut rng = StdRng::seed_from_u64(5);
        let scene = Scene::generate(cfg.clone(), &mut rng);
        let trace = scene.simulate(&mut rng);
        // With one crossing every ~2.5 s over ~20 s, fades must exist.
        let fades = trace.deep_fade_fraction(10.0);
        assert!(fades > 0.0, "no deep fades in the trace");
        assert!(fades < 0.8, "trace almost always blocked: {fades}");
    }

    #[test]
    fn power_drop_lags_camera_sighting() {
        // The core cross-modal property: at the moment the power first
        // drops 3 dB, the pedestrian must already be visible in the
        // *noiseless* geometry (the camera saw them earlier).
        let cfg = SceneConfig::paper();
        let walker = Pedestrian {
            cross_x: 2.0,
            spawn_time_s: 0.0,
            speed_mps: 1.0,
            direction: 1.0,
            width_m: 0.5,
            height_m: 1.8,
            start_y_m: -cfg.corridor_half_m,
            corridor_half_m: cfg.corridor_half_m,
        };
        let cam = DepthCamera::new(cfg.camera.clone(), cfg.distance_m);
        let scene = Scene::with_pedestrians(
            SceneConfig {
                num_frames: 200,
                ..cfg.clone()
            },
            vec![walker.clone()],
        );
        let mut first_visible = None;
        let mut first_fade = None;
        let empty = cam.render(&[], 0.0);
        for k in 0..200 {
            let t = scene.frame_time(k);
            if first_visible.is_none() && cam.render(scene.pedestrians(), t) != empty {
                first_visible = Some(k);
            }
            if first_fade.is_none() && scene.blockage_at_frame(k) > 3.0 {
                first_fade = Some(k);
            }
        }
        let (vis, fade) = (first_visible.unwrap(), first_fade.unwrap());
        assert!(
            vis + 4 <= fade,
            "camera must lead the fade by ≥ the prediction horizon: visible at {vis}, fade at {fade}"
        );
    }

    #[test]
    fn ascii_frame_renders_grid() {
        let frame = Tensor::from_vec([2, 3], vec![0.0, 0.5, 1.0, 1.0, 0.5, 0.0]).unwrap();
        let art = ascii_frame(&frame);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert_eq!(lines[0].chars().next(), Some('@')); // near
        assert_eq!(lines[0].chars().last(), Some(' ')); // far
    }

    #[test]
    fn zero_rate_scene_is_static() {
        let cfg = SceneConfig {
            pedestrian_rate_hz: 0.0,
            num_frames: 50,
            ..SceneConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let scene = Scene::generate(cfg, &mut rng);
        assert!(scene.pedestrians().is_empty());
        let trace = scene.simulate(&mut rng);
        assert_eq!(trace.deep_fade_fraction(10.0), 0.0);
        // All frames identical (static background).
        for f in &trace.frames[1..] {
            assert_eq!(f, &trace.frames[0]);
        }
    }
}
