//! # `sl-scene` — synthetic mmWave pedestrian-blockage scene
//!
//! The paper evaluates on a private trace of 13,228 time-aligned
//! (depth-image, received-power) samples captured with a Microsoft Kinect
//! and a 60.48 GHz transmitter while pedestrians walked through the link
//! (Nishio et al. [4]). That dataset is not public, so this crate builds
//! the closest synthetic equivalent (see DESIGN.md §1):
//!
//! * a 2-D corridor with a BS and a UE `r = 4 m` apart and pedestrians
//!   crossing the line-of-sight path ([`Pedestrian`], [`SceneConfig`]),
//! * a pinhole **depth camera** at the UE looking toward the BS,
//!   rendering pedestrians into Kinect-style normalized depth frames at
//!   the Kinect frame interval `γ = 33 ms` ([`DepthCamera`]),
//! * a **received-power model**: a line-of-sight baseline with deep
//!   (~20 dB) human-body shadowing ramps when a pedestrian's body
//!   penetrates the Fresnel-zone margin around the LoS segment, plus
//!   temporally-correlated shadowing and fast-fading jitter
//!   ([`PowerModel`]),
//! * trace and dataset assembly with the paper's exact sample count,
//!   sequence length `L = 4`, prediction horizon `⌈T/γ⌉ = 4` frames and
//!   train/validation split indices ([`MeasurementTrace`],
//!   [`SequenceDataset`]).
//!
//! The essential property this preserves is the paper's *cross-modal
//! timing*: the camera sees an approaching pedestrian several frames
//! before the RF power drops, while the RF signal alone gives almost no
//! warning — exactly the signal the multimodal split network exploits.

mod camera;
mod chunked;
mod config;
mod dataset;
mod io;
mod pedestrian;
mod power;
mod trace;

pub use camera::DepthCamera;
pub use config::{CameraConfig, SceneConfig};
pub use dataset::{PowerNormalizer, SequenceDataset, SequenceSample, SplitIndices, PAPER_SEQ_LEN};
pub use io::TraceIoError;
pub use pedestrian::Pedestrian;
pub use power::PowerModel;
pub use trace::{ascii_frame, MeasurementTrace, Scene};
