//! Property-based tests of the scene substrate: geometric and physical
//! invariants that must hold for any pedestrian configuration.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_scene::{DepthCamera, Pedestrian, PowerNormalizer, Scene, SceneConfig, SplitIndices};

fn any_pedestrian() -> impl Strategy<Value = Pedestrian> {
    (
        0.5f64..3.5,   // cross_x
        0.0f64..100.0, // spawn time
        0.5f64..2.0,   // speed
        prop::bool::ANY,
        0.3f64..0.6, // width
        1.5f64..2.0, // height
    )
        .prop_map(|(cross_x, spawn, speed, fwd, width, height)| {
            let direction = if fwd { 1.0 } else { -1.0 };
            Pedestrian {
                cross_x,
                spawn_time_s: spawn,
                speed_mps: speed,
                direction,
                width_m: width,
                height_m: height,
                start_y_m: -direction * 3.0,
                corridor_half_m: 3.0,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pedestrian_trajectory_is_continuous(p in any_pedestrian(), dt in 0.0f64..5.9) {
        let t = p.spawn_time_s + dt;
        if let Some(y) = p.y_at(t) {
            prop_assert!(y.abs() <= 3.0 + 1e-9);
            // Position advances linearly with speed.
            let expected = p.start_y_m + p.direction * p.speed_mps * dt;
            prop_assert!((y - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn crossing_time_has_zero_y(p in any_pedestrian()) {
        let tc = p.crossing_time_s();
        let y = p.y_at(tc).expect("pedestrian active at crossing");
        prop_assert!(y.abs() < 1e-9);
        prop_assert_eq!(p.edge_distance_to_los(tc), Some(0.0));
    }

    #[test]
    fn edge_distance_nonnegative(p in any_pedestrian(), t in 0.0f64..120.0) {
        if let Some(d) = p.edge_distance_to_los(t) {
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn rendered_frames_always_normalized(p in any_pedestrian(), t in 0.0f64..120.0) {
        let cfg = SceneConfig::tiny();
        let cam = DepthCamera::new(cfg.camera.clone(), cfg.distance_m);
        let frame = cam.render(std::slice::from_ref(&p), t);
        prop_assert!(frame.min() >= 0.0 && frame.max() <= 1.0);
        prop_assert!(frame.all_finite());
    }

    #[test]
    fn normalizer_round_trips(powers in proptest::collection::vec(-60.0f32..0.0, 2..50)) {
        // Guard against zero variance.
        let spread = powers.iter().cloned().fold(f32::INFINITY, f32::min)
            != powers.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assume!(spread);
        let n = PowerNormalizer::fit(&powers);
        for &p in &powers {
            prop_assert!((n.denormalize(n.normalize(p)) - p).abs() < 1e-3);
        }
        prop_assert!(n.std_db > 0.0);
    }

    #[test]
    fn split_indices_partition_usable_range(len in 20usize..500, l in 1usize..6, h in 0usize..6) {
        prop_assume!(len > l + h + 4);
        let s = SplitIndices::paper_style(len, l, h);
        // Every usable index appears exactly once across the two sets.
        let mut all: Vec<usize> = s.train.iter().chain(s.val.iter()).copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (l - 1..=len - h - 1).collect();
        prop_assert_eq!(all, expected);
    }

    #[test]
    fn traces_deterministic_per_seed(seed in 0u64..50) {
        let cfg = SceneConfig { num_frames: 40, ..SceneConfig::tiny() };
        let run = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            let scene = Scene::generate(cfg.clone(), &mut rng);
            scene.simulate(&mut rng).powers_dbm
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
