//! Property-based tests of the telemetry substrate: snapshot merging is
//! equivalent to recording the combined stream, counters are monotone,
//! and histogram quantile estimates stay within the log-bucket error
//! bound.

use proptest::prelude::*;

use sl_telemetry::{
    Histogram, MetricsRegistry, SeriesStore, Snapshot, Telemetry, TelemetryMode, BUCKETS_PER_OCTAVE,
};

/// Positive, finite values spanning the histogram's tracked range.
fn any_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1e6, 0..200)
}

fn record_all(values: &[f64]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for &v in values {
        r.observe("h", v);
        r.inc("n");
        r.gauge_set("last", v);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merging_snapshots_equals_recording_combined_stream(
        a in any_values(),
        b in any_values(),
    ) {
        let sa = record_all(&a).snapshot();
        let sb = record_all(&b).snapshot();
        let combined: Vec<f64> = a.iter().chain(&b).copied().collect();
        let sc = record_all(&combined).snapshot();

        let mut merged = sa.clone();
        merged.merge(&sb);

        prop_assert_eq!(merged.counters.clone(), sc.counters.clone());
        // Gauges: last write wins, which is b's last value when b is
        // non-empty, else a's.
        prop_assert_eq!(merged.gauges.clone(), sc.gauges.clone());
        // Histograms: exact equality up to float summation order in `sum`.
        prop_assert_eq!(merged.histograms.len(), sc.histograms.len());
        for (name, hm) in &merged.histograms {
            let hc = &sc.histograms[name];
            prop_assert_eq!(hm.count(), hc.count());
            prop_assert_eq!(hm.min(), hc.min());
            prop_assert_eq!(hm.max(), hc.max());
            prop_assert_eq!(hm.nonzero_buckets(), hc.nonzero_buckets());
            let scale = hc.sum().abs().max(1.0);
            prop_assert!((hm.sum() - hc.sum()).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn counters_are_monotone(increments in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut r = MetricsRegistry::new();
        let mut last = 0u64;
        let mut total = 0u64;
        for &n in &increments {
            r.add("c", n);
            let now = r.counter("c");
            prop_assert!(now >= last, "counter decreased: {last} -> {now}");
            last = now;
            total += n;
        }
        prop_assert_eq!(r.counter("c"), total);
    }

    #[test]
    fn quantile_estimates_within_bucket_error(values in any_values(), q in 0.0f64..=1.0) {
        prop_assume!(!values.is_empty());
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q).unwrap();
        // The estimate lies in the recorded range…
        prop_assert!(est >= h.min().unwrap() && est <= h.max().unwrap());
        // …and within one log-bucket of the true order statistic.
        let tol = (1.0f64 / BUCKETS_PER_OCTAVE as f64).exp2() - 1.0;
        let rel = (est - truth).abs() / truth;
        prop_assert!(rel <= tol + 1e-9, "q={q}: est {est} vs true {truth} (rel {rel})");
    }

    #[test]
    fn scoped_aggregation_is_order_insensitive_at_bucket_level(
        sessions in proptest::collection::vec(any_values(), 1..6),
        order_seed in 0usize..720,
    ) {
        // Absorb the same per-session scoped registries into two parents
        // in different orders: the aggregate histogram's buckets (and
        // counters) must not depend on the merge order.
        let scopes: Vec<_> = sessions
            .iter()
            .enumerate()
            .map(|(id, values)| {
                let tele = Telemetry::summary();
                let mut scope = tele.scoped(&format!("net.session.{id}"));
                scope.add("steps", values.len() as u64);
                for &v in values {
                    scope.observe("latency", v);
                }
                scope
            })
            .collect();
        let mut order: Vec<usize> = (0..scopes.len()).collect();
        // A deterministic non-identity permutation derived from the seed.
        let mut shuffled = order.clone();
        let mut seed = order_seed;
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, seed % (i + 1));
            seed /= i + 1;
        }
        order.sort_unstable();

        let absorb_in = |order: &[usize]| {
            let (sink, _events) = sl_telemetry::MemorySink::new();
            let mut tele = Telemetry::with_sink(TelemetryMode::Summary, Box::new(sink));
            for &i in order {
                tele.absorb(&scopes[i], Some("net.fleet"));
            }
            tele.snapshot()
        };
        let fwd = absorb_in(&order);
        let rev = absorb_in(&shuffled);
        prop_assert_eq!(fwd.counters.clone(), rev.counters.clone());
        let ha = &fwd.histograms["net.fleet.latency"];
        let hb = &rev.histograms["net.fleet.latency"];
        prop_assert_eq!(ha.count(), hb.count());
        prop_assert_eq!(ha.min(), hb.min());
        prop_assert_eq!(ha.max(), hb.max());
        prop_assert_eq!(ha.nonzero_buckets(), hb.nonzero_buckets());

        // And the aggregated snapshot round-trips through its JSON form.
        let back = Snapshot::from_json(&fwd.to_json()).unwrap();
        prop_assert_eq!(back, fwd);
    }

    #[test]
    fn series_exports_round_trip(
        samples in proptest::collection::vec((0.0f64..1e6, -1e6f64..1e6), 0..300),
        capacity in 1usize..64,
    ) {
        let mut store = SeriesStore::new(capacity);
        for (i, &(t, v)) in samples.iter().enumerate() {
            store.push(if i % 3 == 0 { "a" } else { "b" }, t, v);
        }
        // The compact binary is bit-exact.
        let bin = SeriesStore::from_binary(&store.to_binary()).unwrap();
        prop_assert_eq!(bin.to_jsonl(), store.to_jsonl());
        // JSONL re-parses to the same sample stream (shortest-roundtrip
        // float formatting is lossless).
        let text = SeriesStore::from_jsonl(&store.to_jsonl()).unwrap();
        prop_assert_eq!(text.to_jsonl(), store.to_jsonl());
    }

    #[test]
    fn histogram_merge_is_commutative_in_counts(a in any_values(), b in any_values()) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.nonzero_buckets(), ba.nonzero_buckets());
    }
}
