//! Property-based tests of the telemetry substrate: snapshot merging is
//! equivalent to recording the combined stream, counters are monotone,
//! and histogram quantile estimates stay within the log-bucket error
//! bound.

use proptest::prelude::*;

use sl_telemetry::{Histogram, MetricsRegistry, BUCKETS_PER_OCTAVE};

/// Positive, finite values spanning the histogram's tracked range.
fn any_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1e6, 0..200)
}

fn record_all(values: &[f64]) -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for &v in values {
        r.observe("h", v);
        r.inc("n");
        r.gauge_set("last", v);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merging_snapshots_equals_recording_combined_stream(
        a in any_values(),
        b in any_values(),
    ) {
        let sa = record_all(&a).snapshot();
        let sb = record_all(&b).snapshot();
        let combined: Vec<f64> = a.iter().chain(&b).copied().collect();
        let sc = record_all(&combined).snapshot();

        let mut merged = sa.clone();
        merged.merge(&sb);

        prop_assert_eq!(merged.counters.clone(), sc.counters.clone());
        // Gauges: last write wins, which is b's last value when b is
        // non-empty, else a's.
        prop_assert_eq!(merged.gauges.clone(), sc.gauges.clone());
        // Histograms: exact equality up to float summation order in `sum`.
        prop_assert_eq!(merged.histograms.len(), sc.histograms.len());
        for (name, hm) in &merged.histograms {
            let hc = &sc.histograms[name];
            prop_assert_eq!(hm.count(), hc.count());
            prop_assert_eq!(hm.min(), hc.min());
            prop_assert_eq!(hm.max(), hc.max());
            prop_assert_eq!(hm.nonzero_buckets(), hc.nonzero_buckets());
            let scale = hc.sum().abs().max(1.0);
            prop_assert!((hm.sum() - hc.sum()).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn counters_are_monotone(increments in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut r = MetricsRegistry::new();
        let mut last = 0u64;
        let mut total = 0u64;
        for &n in &increments {
            r.add("c", n);
            let now = r.counter("c");
            prop_assert!(now >= last, "counter decreased: {last} -> {now}");
            last = now;
            total += n;
        }
        prop_assert_eq!(r.counter("c"), total);
    }

    #[test]
    fn quantile_estimates_within_bucket_error(values in any_values(), q in 0.0f64..=1.0) {
        prop_assume!(!values.is_empty());
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q).unwrap();
        // The estimate lies in the recorded range…
        prop_assert!(est >= h.min().unwrap() && est <= h.max().unwrap());
        // …and within one log-bucket of the true order statistic.
        let tol = (1.0f64 / BUCKETS_PER_OCTAVE as f64).exp2() - 1.0;
        let rel = (est - truth).abs() / truth;
        prop_assert!(rel <= tol + 1e-9, "q={q}: est {est} vs true {truth} (rel {rel})");
    }

    #[test]
    fn histogram_merge_is_commutative_in_counts(a in any_values(), b in any_values()) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.nonzero_buckets(), ba.nonzero_buckets());
    }
}
