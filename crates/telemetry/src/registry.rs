//! Central telemetry contracts: the declared metric-key namespace and
//! the `SLM_*` environment-knob table.
//!
//! Every key a workspace crate publishes through the [`crate::Telemetry`]
//! / [`crate::MetricsRegistry`] surface must unify with a pattern in
//! [`KEYS`], and every `env::var("SLM_…")` read must name an entry in
//! [`KNOBS`]. `slm-lint --keys` and `slm-lint --knobs` enforce both
//! directions offline: an undeclared publish, a dead declaration, a
//! reader consuming a key nobody produces, or an undocumented knob all
//! fail the lint. The tables are data, not behavior — nothing at
//! runtime consults them — so declaring here is free and drifting from
//! here is loud.
//!
//! Pattern grammar: dot-separated `sub.noun.verb` segments, each
//! `[a-z][a-z0-9_]*`; a `*` segment matches one or more concrete
//! segments (`net.session.*` covers `net.session.3.steps`). Patterns
//! that are *session-relative* (published into a scoped registry and
//! namespaced later by `merge_prefixed`/`absorb`) are declared exactly
//! as the publish site spells them; the runtime keys additionally carry
//! a `net.session.<id>.` or `net.fleet.` prefix.
//!
//! Not listed: `net.sessions.{active,total}` — synthesized directly
//! into snapshots by `sl-net::live`, never routed through a publish
//! method, hence outside the harvestable surface.

/// One declared key family.
#[derive(Debug, Clone, Copy)]
pub struct KeyDecl {
    /// Dot-separated pattern; `*` matches one or more segments.
    pub pattern: &'static str,
    /// Reader binaries expected to consume the family (`report` =
    /// slm-report, `top` = slm-top). Empty = write-only telemetry.
    pub readers: &'static [&'static str],
    /// What the metric means.
    pub doc: &'static str,
}

/// One declared `SLM_*` environment knob.
#[derive(Debug, Clone, Copy)]
pub struct KnobDecl {
    /// Environment variable name.
    pub name: &'static str,
    /// Effective default when unset (human-readable).
    pub default: &'static str,
    /// Accepted value syntax.
    pub parse: &'static str,
    /// Doc anchor: the section documenting the knob.
    pub doc: &'static str,
}

const fn key(
    pattern: &'static str,
    readers: &'static [&'static str],
    doc: &'static str,
) -> KeyDecl {
    KeyDecl {
        pattern,
        readers,
        doc,
    }
}

/// The declared metric-key namespace, grouped by subsystem.
pub const KEYS: &[KeyDecl] = &[
    // -- training loop (sl-core / sl-net trainers) ----------------------
    key("train.val_rmse_db", &["report"], "validation RMSE in dB"),
    key("train.loss", &[], "per-step training loss histogram"),
    key(
        "train.steps.applied",
        &["report"],
        "optimizer steps applied",
    ),
    key(
        "train.steps.voided",
        &["report"],
        "steps voided by non-finite guards",
    ),
    key(
        "train.nonfinite.loss",
        &["report"],
        "non-finite loss occurrences",
    ),
    key(
        "train.nonfinite.grad",
        &["report"],
        "non-finite gradient occurrences",
    ),
    key("train.grad_norm.ue", &[], "UE-side gradient norm histogram"),
    key("train.grad_norm.bs", &[], "BS-side gradient norm histogram"),
    key(
        "train.step.host_s",
        &["report"],
        "host wall-clock per training step",
    ),
    key(
        "train.model.host_s",
        &["report"],
        "host wall-clock per model pass",
    ),
    key(
        "train.uplink.*",
        &[],
        "uplink link-sim stats during training (transfers, delivered, …)",
    ),
    key(
        "train.downlink.*",
        &[],
        "downlink link-sim stats during training",
    ),
    // -- simulated time (paper's compute/airtime split) -----------------
    key("sim.compute_s", &["report"], "simulated compute seconds"),
    key("sim.airtime_s", &["report"], "simulated airtime seconds"),
    // -- sl-net transport (client/server connection metrics) -----------
    key("net.frames.sent", &[], "wire frames sent"),
    key("net.frames.received", &["top"], "wire frames received"),
    key("net.bytes.sent", &[], "payload bytes sent"),
    key("net.bytes.received", &["top"], "payload bytes received"),
    key("net.retries", &[], "frame retransmission attempts"),
    key("net.timeouts", &[], "read deadlines missed"),
    key(
        "net.handshakes",
        &[],
        "completed Hello/ConfigAck handshakes",
    ),
    key("net.deadline_miss", &[], "deployment frames past deadline"),
    key("net.nacks.sent", &["top"], "Nack frames sent"),
    key("net.nacks.received", &["top"], "Nack frames received"),
    key(
        "net.faults.frames",
        &[],
        "frames inspected by fault injection",
    ),
    key(
        "net.faults.dropped",
        &[],
        "frames dropped by fault injection",
    ),
    key(
        "net.faults.corrupted",
        &[],
        "frames corrupted by fault injection",
    ),
    key(
        "net.faults.delayed",
        &[],
        "frames delayed by fault injection",
    ),
    key(
        "net.faults.delay_slots",
        &[],
        "total injected delay in slots",
    ),
    // -- per-session scope (bare names inside a scoped registry; the
    //    runtime key is net.session.<id>.<name>, sums land under
    //    net.fleet.<name> / net.<name>) --------------------------------
    key(
        "net.session.*",
        &["top"],
        "per-session live counters/gauges (steps, evals, loss_ema, up, …)",
    ),
    key(
        "net.fleet.*",
        &[],
        "cross-session sums of the session scope",
    ),
    key(
        "nacks.sent",
        &[],
        "session-relative Nack-sent counter (scoped publish)",
    ),
    key(
        "nacks.received",
        &[],
        "session-relative Nack-received counter (scoped publish)",
    ),
    key(
        "frames.received",
        &[],
        "session-relative frames-received counter (scoped publish)",
    ),
    key(
        "bytes.received",
        &[],
        "session-relative bytes-received counter (scoped publish)",
    ),
    // -- deployment-phase simulation (sl-core::deploy) ------------------
    key(
        "deploy.deadline_miss",
        &[],
        "deployment frames missing the prediction deadline",
    ),
    key(
        "deploy.feature_age_frames",
        &[],
        "age of the freshest delivered feature",
    ),
    key("deploy.frames", &[], "deployment frames simulated"),
    key("deploy.miss_rate", &[], "deadline miss rate gauge"),
    key(
        "deploy.uplink.*",
        &[],
        "uplink link-sim stats during deployment",
    ),
    key(
        "deploy.proactive.*",
        &[],
        "proactive-handover report (switches, outage_rate, …)",
    ),
    // -- sl-tensor compute pool / kernels -------------------------------
    key("tensor.pool.threads", &[], "compute-pool worker count"),
    key("tensor.pool.jobs", &[], "parallel jobs executed"),
    key(
        "tensor.pool.steal_idle_s",
        &[],
        "cumulative worker idle/steal time",
    ),
    key("tensor.kernel.*.calls", &[], "per-kernel invocation count"),
    key(
        "tensor.kernel.*.host_s",
        &[],
        "per-kernel host time histogram",
    ),
    key(
        "tensor.backend",
        &[],
        "selected compute backend (0 = scalar, 1 = pooled, 2 = simd)",
    ),
    // -- per-layer profiler (sl-telemetry::Profiler via sl-nn) ----------
    key(
        "nn.ue.layer.*",
        &[],
        "UE stack per-layer profile (fwd/bwd host_s, flops, params)",
    ),
    key("nn.bs.layer.*", &[], "BS stack per-layer profile"),
    // -- chunked array store (sl-store) ---------------------------------
    key("store.arrays.written", &[], "chunked arrays committed"),
    key("store.arrays.read", &[], "chunked arrays (or ranges) read"),
    key("store.chunks.written", &[], "chunks encoded and stored"),
    key(
        "store.chunks.read",
        &[],
        "chunks checksum-verified and decoded",
    ),
    key("store.bytes.raw", &[], "raw f32 bytes represented"),
    key("store.bytes.encoded", &[], "encoded bytes on storage"),
    key("store.log.appends", &[], "activation-log append batches"),
];

/// The declared `SLM_*` environment-knob table.
pub const KNOBS: &[KnobDecl] = &[
    KnobDecl {
        name: "SLM_THREADS",
        default: "available parallelism (≤ 64)",
        parse: "usize in 1..=64",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_TELEMETRY",
        default: "summary",
        parse: "off | summary | jsonl",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_TELEMETRY_PATH",
        default: "results/<experiment>/ (harness) or results/telemetry",
        parse: "directory path",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_SAMPLE_EVERY",
        default: "8",
        parse: "u64 ≥ 1",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_TRACE",
        default: "off",
        parse: "on | 1 | true",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_HEALTH",
        default: "warn",
        parse: "off | warn | strict[:window]",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_PROFILE",
        default: "quick",
        parse: "smoke | quick | full",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_BACKEND",
        default: "auto (SIMD when the host supports it, else pooled)",
        parse: "auto | scalar | pooled | simd",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_STORE_CHUNK",
        default: "65536",
        parse: "usize ≥ 1 (target f32 values per chunk)",
        doc: "README.md § Environment knobs",
    },
    KnobDecl {
        name: "SLM_STORE_CODEC",
        default: "per-array (delta+rle frames, raw weights)",
        parse: "raw | bitpack[1..=16] | delta+rle",
        doc: "README.md § Environment knobs",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_patterns_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for k in KEYS {
            assert!(seen.insert(k.pattern), "duplicate pattern {}", k.pattern);
            assert!(
                k.pattern.contains('.'),
                "single-segment pattern {}",
                k.pattern
            );
            for seg in k.pattern.split('.') {
                assert!(
                    seg == "*"
                        || (seg.starts_with(|c: char| c.is_ascii_lowercase())
                            && seg
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')),
                    "bad segment '{seg}' in {}",
                    k.pattern
                );
            }
            for r in k.readers {
                assert!(matches!(*r, "report" | "top"), "unknown reader {r}");
            }
        }
    }

    #[test]
    fn declared_knobs_are_unique_slm_names_with_docs() {
        let mut seen = std::collections::BTreeSet::new();
        for k in KNOBS {
            assert!(seen.insert(k.name), "duplicate knob {}", k.name);
            assert!(k.name.starts_with("SLM_"), "non-SLM knob {}", k.name);
            assert!(!k.default.is_empty() && !k.parse.is_empty() && !k.doc.is_empty());
        }
    }
}
