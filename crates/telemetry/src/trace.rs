//! Deterministic distributed span tracing (DESIGN.md §10).
//!
//! A [`Tracer`] produces causally linked [`SpanRecord`]s: every span
//! carries a trace id, a span id, its parent's span id, a category, a
//! start and duration on **both** clocks (host wall time for humans,
//! simulated microseconds for the determinism gates) and typed
//! key/value attributes. Span ids come from a per-run counter — never
//! from wall clocks or ambient RNG — so two runs of the same
//! configuration produce bit-identical ids, and the exported timeline
//! (which carries only simulated time) is byte-identical under the
//! `SLM_THREADS=1` double-run verify gate.
//!
//! Spans journal losslessly through the existing JSONL event stream as
//! `"span"` events and can be parsed back ([`SpanRecord::from_json`]),
//! merged across processes (the UE and BS sides journal independently;
//! BS span ids live in [`BS_SPAN_NAMESPACE`] so the merged id space
//! stays collision-free), checked for well-formedness ([`check_spans`])
//! and exported as Chrome trace-event JSON ([`chrome_trace_json`]) that
//! loads directly in Perfetto or `chrome://tracing`.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use crate::events::{Event, Value};
use crate::json::{JsonArray, JsonObject, JsonValue};
use crate::{EventBuilder, Telemetry};

/// High bit OR-ed into every BS-side span id so UE (counter from 1) and
/// BS (counter from `BS_SPAN_NAMESPACE | 1`) ids never collide inside
/// one merged trace.
pub const BS_SPAN_NAMESPACE: u64 = 1 << 63;

/// FNV-1a (64-bit) — the workspace's dependency-free stable hash; used
/// here to derive a trace id from a run's configuration fingerprint.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The run this span belongs to (shared across the wire).
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id; `0` marks a root span.
    pub parent_id: u64,
    /// Span name, e.g. `"train.step"`, `"uplink.transfer"`.
    pub name: String,
    /// Category (`"step"`, `"ue"`, `"bs"`, `"link"`, `"net"`).
    pub cat: String,
    /// Timeline track: which side recorded it (`"ue"` / `"bs"`).
    pub track: String,
    /// Host start, seconds since the recording [`Tracer`] was created.
    pub t_host_s: f64,
    /// Host duration in seconds (0 for spans recorded after the fact).
    pub host_dur_s: f64,
    /// Simulated-clock start, microseconds.
    pub sim_start_us: u64,
    /// Simulated-clock duration, microseconds.
    pub sim_dur_us: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(String, Value)>,
}

/// Prefix distinguishing attribute fields inside a `"span"` event.
const ATTR_PREFIX: &str = "a.";

impl SpanRecord {
    /// Simulated end, microseconds.
    pub fn sim_end_us(&self) -> u64 {
        self.sim_start_us.saturating_add(self.sim_dur_us)
    }

    /// The attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Renders the span as a `"span"` journal event. Ids are serialized
    /// as fixed-width hex strings: the JSON number path would round-trip
    /// them through `f64` and corrupt ids above 2^53.
    pub fn to_event(&self) -> EventBuilder {
        let mut b = EventBuilder::new("span")
            .str("trace", &format!("{:016x}", self.trace_id))
            .str("span", &format!("{:016x}", self.span_id))
            .str("parent", &format!("{:016x}", self.parent_id))
            .str("name", &self.name)
            .str("cat", &self.cat)
            .str("track", &self.track)
            .f64("t_start_s", self.t_host_s)
            .f64("host_s", self.host_dur_s)
            .u64("sim_us", self.sim_start_us)
            .u64("sim_dur_us", self.sim_dur_us);
        for (k, v) in &self.attrs {
            let key = format!("{ATTR_PREFIX}{k}");
            b = match v {
                Value::U64(x) => b.u64(&key, *x),
                Value::I64(x) => b.i64(&key, *x),
                Value::F64(x) => b.f64(&key, *x),
                Value::Bool(x) => b.bool(&key, *x),
                Value::Str(x) => b.str(&key, x),
            };
        }
        b
    }

    /// Parses a span back out of an in-memory journal [`Event`];
    /// `None` when the event is not a well-formed `"span"` event.
    pub fn from_event(event: &Event) -> Option<SpanRecord> {
        if event.kind != "span" {
            return None;
        }
        let hex = |name: &str| match event.field(name) {
            Some(Value::Str(s)) => u64::from_str_radix(s, 16).ok(),
            _ => None,
        };
        let text = |name: &str| match event.field(name) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let num = |name: &str| match event.field(name) {
            Some(Value::U64(x)) => Some(*x),
            _ => None,
        };
        let float = |name: &str| match event.field(name) {
            Some(Value::F64(x)) => Some(*x),
            _ => None,
        };
        let attrs = event
            .fields
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(ATTR_PREFIX)
                    .map(|name| (name.to_string(), v.clone()))
            })
            .collect();
        Some(SpanRecord {
            trace_id: hex("trace")?,
            span_id: hex("span")?,
            parent_id: hex("parent")?,
            name: text("name")?,
            cat: text("cat")?,
            track: text("track")?,
            t_host_s: float("t_start_s")?,
            host_dur_s: float("host_s")?,
            sim_start_us: num("sim_us")?,
            sim_dur_us: num("sim_dur_us")?,
            attrs,
        })
    }

    /// Parses a span out of one parsed JSONL journal line; `None` when
    /// the line is not a `"span"` event.
    pub fn from_json(v: &JsonValue) -> Option<SpanRecord> {
        if v.get("event").and_then(JsonValue::as_str) != Some("span") {
            return None;
        }
        let obj = v.as_obj()?;
        let hex = |name: &str| {
            obj.get(name)
                .and_then(JsonValue::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        };
        let text = |name: &str| {
            obj.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        // BTreeMap iteration is key-sorted, which is stable enough for
        // attributes (they are compared and rendered by name anyway).
        let attrs = obj
            .iter()
            .filter_map(|(k, v)| {
                let name = k.strip_prefix(ATTR_PREFIX)?;
                let value = match v {
                    JsonValue::Bool(b) => Value::Bool(*b),
                    JsonValue::Str(s) => Value::Str(s.clone()),
                    JsonValue::Num(n) => Value::F64(*n),
                    _ => return None,
                };
                Some((name.to_string(), value))
            })
            .collect();
        Some(SpanRecord {
            trace_id: hex("trace")?,
            span_id: hex("span")?,
            parent_id: hex("parent")?,
            name: text("name")?,
            cat: text("cat")?,
            track: text("track")?,
            t_host_s: obj.get("t_start_s").and_then(JsonValue::as_f64)?,
            host_dur_s: obj.get("host_s").and_then(JsonValue::as_f64)?,
            sim_start_us: obj.get("sim_us").and_then(JsonValue::as_u64)?,
            sim_dur_us: obj.get("sim_dur_us").and_then(JsonValue::as_u64)?,
            attrs,
        })
    }
}

/// Every span parsed out of a JSONL journal's text (non-span events and
/// unparseable lines are skipped — the journal may interleave freely).
pub fn spans_from_jsonl(text: &str) -> Vec<SpanRecord> {
    text.lines()
        .filter_map(|line| crate::json::parse(line).ok())
        .filter_map(|v| SpanRecord::from_json(&v))
        .collect()
}

/// An open span handle returned by [`Tracer::begin`]; close it with
/// [`Tracer::end`] / [`Tracer::end_with`].
#[derive(Debug)]
pub struct OpenSpan {
    span_id: u64,
    parent_id: u64,
    name: String,
    cat: String,
    host_t0: f64,
    sim_start_us: u64,
}

impl OpenSpan {
    /// The span's id (pass as the parent of remote or out-of-band
    /// children).
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

/// Produces causally linked spans with deterministic counter-derived
/// ids, buffering them until [`Tracer::drain_into`] hands them to a
/// [`Telemetry`] journal (so recording needs no `&mut Telemetry` in
/// scope — the net client records retry spans deep inside its
/// request loop).
#[derive(Debug)]
pub struct Tracer {
    trace_id: u64,
    track: String,
    namespace: u64,
    next: u64,
    origin: Instant,
    stack: Vec<u64>,
    spans: Vec<SpanRecord>,
}

impl Tracer {
    /// A tracer for trace `trace_id` recording on `track` (`"ue"`).
    pub fn new(trace_id: u64, track: &str) -> Self {
        Self::with_namespace(trace_id, track, 0)
    }

    /// A tracer whose span ids are all OR-ed with `namespace` (the BS
    /// side passes [`BS_SPAN_NAMESPACE`]).
    pub fn with_namespace(trace_id: u64, track: &str, namespace: u64) -> Self {
        Tracer {
            trace_id,
            track: track.to_string(),
            namespace,
            next: 0,
            origin: Instant::now(),
            stack: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// A tracer whose trace id is the FNV-1a hash of `key` (e.g. the
    /// `Debug` rendering of an experiment config) — deterministic, and
    /// identical for the in-process and networked run of one config.
    /// The id is forced nonzero because `0` means "tracing off" on the
    /// wire.
    pub fn for_run(key: &str, track: &str) -> Self {
        let h = fnv1a_64(key.as_bytes());
        Self::new(if h == 0 { 1 } else { h }, track)
    }

    /// The trace id (crosses the wire in the session handshake).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Closed spans buffered so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no closed spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn next_id(&mut self) -> u64 {
        self.next += 1;
        self.namespace | self.next
    }

    /// Opens a span starting at simulated time `sim_start_us`. Its
    /// parent is the innermost span still open (`0` → root). Nested
    /// `begin`/`end` pairs must close innermost-first.
    pub fn begin(&mut self, name: &str, cat: &str, sim_start_us: u64) -> OpenSpan {
        let span_id = self.next_id();
        let parent_id = self.stack.last().copied().unwrap_or(0);
        self.stack.push(span_id);
        OpenSpan {
            span_id,
            parent_id,
            name: name.to_string(),
            cat: cat.to_string(),
            host_t0: self.origin.elapsed().as_secs_f64(),
            sim_start_us,
        }
    }

    /// Closes `open` at simulated time `sim_end_us`.
    pub fn end(&mut self, open: OpenSpan, sim_end_us: u64) {
        self.end_with(open, sim_end_us, Vec::new());
    }

    /// Closes `open` at simulated time `sim_end_us` with attributes.
    pub fn end_with(&mut self, open: OpenSpan, sim_end_us: u64, attrs: Vec<(String, Value)>) {
        assert!(
            sim_end_us >= open.sim_start_us,
            "Tracer: span {:?} ends before it starts ({} < {})",
            open.name,
            sim_end_us,
            open.sim_start_us
        );
        debug_assert_eq!(
            self.stack.last().copied(),
            Some(open.span_id),
            "Tracer: spans must close innermost-first"
        );
        self.stack.pop();
        let t_host_s = open.host_t0;
        let host_dur_s = (self.origin.elapsed().as_secs_f64() - open.host_t0).max(0.0);
        self.spans.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
            name: open.name,
            cat: open.cat,
            track: self.track.clone(),
            t_host_s,
            host_dur_s,
            sim_start_us: open.sim_start_us,
            sim_dur_us: sim_end_us - open.sim_start_us,
            attrs,
        });
    }

    /// Records a complete span under the innermost open span (`0` →
    /// root) without host bracketing; returns its id.
    pub fn record(
        &mut self,
        name: &str,
        cat: &str,
        sim_start_us: u64,
        sim_dur_us: u64,
        attrs: Vec<(String, Value)>,
    ) -> u64 {
        let parent = self.stack.last().copied().unwrap_or(0);
        self.record_under(parent, name, cat, sim_start_us, sim_dur_us, attrs)
    }

    /// Records a complete span under an explicit parent id (the BS side
    /// parents its spans to ids received over the wire; the client
    /// parents retry spans to the transfer spans that caused them).
    pub fn record_under(
        &mut self,
        parent_id: u64,
        name: &str,
        cat: &str,
        sim_start_us: u64,
        sim_dur_us: u64,
        attrs: Vec<(String, Value)>,
    ) -> u64 {
        let span_id = self.next_id();
        self.spans.push(SpanRecord {
            trace_id: self.trace_id,
            span_id,
            parent_id,
            name: name.to_string(),
            cat: cat.to_string(),
            track: self.track.clone(),
            t_host_s: self.origin.elapsed().as_secs_f64(),
            host_dur_s: 0.0,
            sim_start_us,
            sim_dur_us,
            attrs,
        });
        span_id
    }

    /// Takes every buffered closed span.
    pub fn drain(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans)
    }

    /// Journals and clears every buffered span as `"span"` events.
    pub fn drain_into(&mut self, tele: &mut Telemetry) {
        for span in self.drain() {
            tele.emit(span.to_event());
        }
    }
}

/// Summary statistics returned by a passing [`check_spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total spans checked.
    pub spans: usize,
    /// Distinct trace ids.
    pub traces: usize,
    /// Root spans (parent id 0).
    pub roots: usize,
}

/// Well-formedness check over a (merged) span set:
///
/// * span ids unique within each trace;
/// * no orphan parents — every nonzero parent id resolves within the
///   same trace;
/// * no negative or non-finite host durations;
/// * every child's simulated window is contained in its parent's;
/// * per `(trace, track)`, spans in id order have monotone
///   non-decreasing simulated starts (ids are recording order).
pub fn check_spans(spans: &[SpanRecord]) -> Result<TraceStats, Vec<String>> {
    let mut errors = Vec::new();
    let mut ids: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut by_id: BTreeMap<(u64, u64), &SpanRecord> = BTreeMap::new();
    for s in spans {
        if !ids.insert((s.trace_id, s.span_id)) {
            errors.push(format!(
                "duplicate span id {:016x} in trace {:016x}",
                s.span_id, s.trace_id
            ));
        }
        by_id.insert((s.trace_id, s.span_id), s);
        if !s.host_dur_s.is_finite() || s.host_dur_s < 0.0 {
            errors.push(format!(
                "span {} ({:016x}) has invalid host duration {}",
                s.name, s.span_id, s.host_dur_s
            ));
        }
    }
    let mut roots = 0usize;
    for s in spans {
        if s.parent_id == 0 {
            roots += 1;
            continue;
        }
        match by_id.get(&(s.trace_id, s.parent_id)) {
            None => errors.push(format!(
                "span {} ({:016x}) has orphan parent {:016x} in trace {:016x}",
                s.name, s.span_id, s.parent_id, s.trace_id
            )),
            Some(p) => {
                if s.sim_start_us < p.sim_start_us || s.sim_end_us() > p.sim_end_us() {
                    errors.push(format!(
                        "span {} [{}, {}] us escapes parent {} [{}, {}] us",
                        s.name,
                        s.sim_start_us,
                        s.sim_end_us(),
                        p.name,
                        p.sim_start_us,
                        p.sim_end_us()
                    ));
                }
            }
        }
    }
    let mut tracks: BTreeMap<(u64, &str), Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans {
        tracks
            .entry((s.trace_id, s.track.as_str()))
            .or_default()
            .push((s.span_id, s.sim_start_us));
    }
    for ((trace, track), mut items) in tracks {
        items.sort_unstable();
        for w in items.windows(2) {
            if w[1].1 < w[0].1 {
                errors.push(format!(
                    "trace {trace:016x} track {track}: sim time not monotone \
                     (span {:016x} at {} us after span {:016x} at {} us)",
                    w[1].0, w[1].1, w[0].0, w[0].1
                ));
            }
        }
    }
    if errors.is_empty() {
        let traces: BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
        Ok(TraceStats {
            spans: spans.len(),
            traces: traces.len(),
            roots,
        })
    } else {
        Err(errors)
    }
}

/// Renders a merged span set as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` form Perfetto and `chrome://tracing` load
/// directly).
///
/// The export is **deterministic**: only simulated-clock microseconds
/// appear as timestamps (host wall times stay in the JSONL journal),
/// spans are sorted by `(track, trace, sim start, span id)`, and
/// track/session numbering is derived by sorting — so a double run at
/// `SLM_THREADS=1` produces byte-identical files.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut tracks: Vec<&str> = spans.iter().map(|s| s.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let pid_of = |track: &str| -> u64 {
        tracks
            .iter()
            .position(|t| *t == track)
            .map_or(0, |i| i as u64 + 1)
    };
    let mut traces: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
    traces.sort_unstable();
    traces.dedup();
    let tid_of = |trace: u64| -> u64 {
        traces
            .iter()
            .position(|t| *t == trace)
            .map_or(0, |i| i as u64 + 1)
    };

    let mut events = JsonArray::new();
    for track in &tracks {
        events.push_raw(
            &JsonObject::new()
                .str("ph", "M")
                .str("name", "process_name")
                .u64("pid", pid_of(track))
                .u64("tid", 0)
                .raw("args", &JsonObject::new().str("name", track).finish())
                .finish(),
        );
    }
    for (i, trace) in traces.iter().enumerate() {
        // Thread name: the session label when any span carries one,
        // else the trace id.
        let label = spans
            .iter()
            .filter(|s| s.trace_id == *trace)
            .find_map(|s| match s.attr("session") {
                Some(Value::Str(l)) => Some(l.clone()),
                _ => None,
            })
            .unwrap_or_else(|| format!("trace {trace:016x}"));
        for track in &tracks {
            events.push_raw(
                &JsonObject::new()
                    .str("ph", "M")
                    .str("name", "thread_name")
                    .u64("pid", pid_of(track))
                    .u64("tid", i as u64 + 1)
                    .raw("args", &JsonObject::new().str("name", &label).finish())
                    .finish(),
            );
        }
    }

    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        (a.track.as_str(), a.trace_id, a.sim_start_us, a.span_id).cmp(&(
            b.track.as_str(),
            b.trace_id,
            b.sim_start_us,
            b.span_id,
        ))
    });
    for s in ordered {
        let mut args = JsonObject::new()
            .str("trace", &format!("{:016x}", s.trace_id))
            .str("span", &format!("{:016x}", s.span_id))
            .str("parent", &format!("{:016x}", s.parent_id));
        for (k, v) in &s.attrs {
            args = match v {
                Value::U64(x) => args.u64(k, *x),
                Value::I64(x) => args.i64(k, *x),
                Value::F64(x) => args.f64(k, *x),
                Value::Bool(x) => args.bool(k, *x),
                Value::Str(x) => args.str(k, x),
            };
        }
        events.push_raw(
            &JsonObject::new()
                .str("ph", "X")
                .str("name", &s.name)
                .str("cat", &s.cat)
                .u64("ts", s.sim_start_us)
                .u64("dur", s.sim_dur_us)
                .u64("pid", pid_of(&s.track))
                .u64("tid", tid_of(s.trace_id))
                .raw("args", &args.finish())
                .finish(),
        );
    }
    JsonObject::new()
        .raw("traceEvents", &events.finish())
        .finish()
}

/// One row of the per-step latency breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total simulated microseconds.
    pub total_us: u64,
    /// Maximum simulated microseconds of one span.
    pub max_us: u64,
}

impl LatencyRow {
    /// Mean simulated microseconds per span.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Aggregates a span set by name into latency rows, ordered by total
/// simulated time descending (name as tie-break, so the table is
/// deterministic).
pub fn latency_breakdown(spans: &[SpanRecord]) -> Vec<LatencyRow> {
    let mut by_name: BTreeMap<&str, LatencyRow> = BTreeMap::new();
    for s in spans {
        let row = by_name
            .entry(s.name.as_str())
            .or_insert_with(|| LatencyRow {
                name: s.name.clone(),
                count: 0,
                total_us: 0,
                max_us: 0,
            });
        row.count += 1;
        row.total_us += s.sim_dur_us;
        row.max_us = row.max_us.max(s.sim_dur_us);
    }
    let mut rows: Vec<LatencyRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    rows
}

/// Converts simulated seconds (the `SimClock` unit) to the trace's
/// microsecond grid. Rounding makes the mapping deterministic for any
/// given `f64` bit pattern.
pub fn sim_us(seconds: f64) -> u64 {
    (seconds * 1e6).round() as u64
}

/// `true` when `SLM_TRACE` requests tracing (`on` / `1` / `true`).
pub fn trace_env_enabled() -> bool {
    matches!(
        std::env::var("SLM_TRACE").ok().as_deref(),
        Some("on" | "1" | "true")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        let mut tr = Tracer::new(0xabc, "ue");
        let root = tr.begin("train.step", "step", 0);
        tr.record("ue.forward", "ue", 0, 40, vec![]);
        tr.record(
            "uplink.transfer",
            "link",
            40,
            60,
            vec![("bits".into(), Value::U64(4096))],
        );
        tr.end_with(root, 100, vec![("step".into(), Value::U64(0))]);
        tr.drain()
    }

    #[test]
    fn ids_are_counter_derived_and_parented() {
        let spans = sample_spans();
        assert_eq!(spans.len(), 3);
        // record() children got ids 2 and 3 under root id 1.
        assert_eq!(spans[0].span_id, 2);
        assert_eq!(spans[0].parent_id, 1);
        assert_eq!(spans[1].span_id, 3);
        assert_eq!(spans[2].span_id, 1);
        assert_eq!(spans[2].parent_id, 0);
        assert_eq!(spans[2].sim_dur_us, 100);
    }

    #[test]
    fn namespaced_ids_carry_the_high_bit() {
        let mut tr = Tracer::with_namespace(7, "bs", BS_SPAN_NAMESPACE);
        let id = tr.record_under(42, "bs.step", "bs", 10, 5, vec![]);
        assert_eq!(id, BS_SPAN_NAMESPACE | 1);
        let spans = tr.drain();
        assert_eq!(spans[0].parent_id, 42);
        assert_eq!(spans[0].track, "bs");
    }

    #[test]
    fn trace_id_for_run_is_stable_and_nonzero() {
        let a = Tracer::for_run("cfg-a", "ue");
        let b = Tracer::for_run("cfg-a", "ue");
        let c = Tracer::for_run("cfg-b", "ue");
        assert_eq!(a.trace_id(), b.trace_id());
        assert_ne!(a.trace_id(), c.trace_id());
        assert_ne!(a.trace_id(), 0);
    }

    #[test]
    fn event_round_trip_preserves_ids_and_attrs() {
        let spans = sample_spans();
        for s in &spans {
            let event = s.to_event().build(1.0);
            let back = SpanRecord::from_event(&event).expect("span event parses");
            assert_eq!(&back, s);
        }
    }

    #[test]
    fn jsonl_round_trip_survives_big_ids() {
        let mut tr = Tracer::with_namespace(u64::MAX - 3, "bs", BS_SPAN_NAMESPACE);
        tr.record("x", "bs", 1, 2, vec![("k".into(), Value::Str("v".into()))]);
        let spans = tr.drain();
        let line = spans[0].to_event().build(0.5).to_json();
        let parsed = spans_from_jsonl(&line);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].trace_id, u64::MAX - 3);
        assert_eq!(parsed[0].span_id, BS_SPAN_NAMESPACE | 1);
        assert_eq!(parsed[0].attr("k"), Some(&Value::Str("v".into())));
    }

    #[test]
    fn checker_accepts_well_formed_spans() {
        let spans = sample_spans();
        let stats = check_spans(&spans).expect("well-formed");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.traces, 1);
        assert_eq!(stats.roots, 1);
    }

    #[test]
    fn checker_flags_orphans_escapes_and_nonmonotone() {
        let mut spans = sample_spans();
        spans[0].parent_id = 999; // orphan
        let errs = check_spans(&spans).expect_err("orphan parent");
        assert!(errs.iter().any(|e| e.contains("orphan")), "{errs:?}");

        let mut spans = sample_spans();
        spans[1].sim_dur_us = 10_000; // escapes the root window
        let errs = check_spans(&spans).expect_err("escaping child");
        assert!(errs.iter().any(|e| e.contains("escapes")), "{errs:?}");

        let mut spans = sample_spans();
        spans[1].sim_start_us = 0;
        spans[0].sim_start_us = 50; // id 2 at 50, id 3 at 0: not monotone
        let errs = check_spans(&spans).expect_err("nonmonotone");
        assert!(errs.iter().any(|e| e.contains("monotone")), "{errs:?}");
    }

    #[test]
    fn chrome_export_is_deterministic_and_host_free() {
        let spans = sample_spans();
        let a = chrome_trace_json(&spans);
        let b = chrome_trace_json(&spans);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"train.step\""));
        assert!(a.contains("\"ts\":40"));
        // Host times never reach the export.
        assert!(!a.contains("host"));
        let parsed = crate::json::parse(&a).expect("export is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        // 1 process_name + 1 thread_name + 3 spans.
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn export_reorders_to_a_stable_order() {
        let mut spans = sample_spans();
        spans.reverse();
        assert_eq!(
            chrome_trace_json(&spans),
            chrome_trace_json(&sample_spans())
        );
    }

    #[test]
    fn latency_rows_aggregate_by_name() {
        let mut spans = sample_spans();
        spans.extend(sample_spans());
        let rows = latency_breakdown(&spans);
        assert_eq!(rows[0].name, "train.step");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_us, 200);
        assert_eq!(rows[0].max_us, 100);
        assert!((rows[0].mean_us() - 100.0).abs() < 1e-12);
        let uplink = rows.iter().find(|r| r.name == "uplink.transfer").unwrap();
        assert_eq!(uplink.total_us, 120);
    }

    #[test]
    fn sim_us_rounds_deterministically() {
        assert_eq!(sim_us(0.0), 0);
        assert_eq!(sim_us(1.25), 1_250_000);
        assert_eq!(sim_us(0.000_000_4), 0);
        assert_eq!(sim_us(0.000_000_6), 1);
    }

    #[test]
    fn drain_into_journals_span_events() {
        let (sink, events) = crate::MemorySink::new();
        let mut tele = Telemetry::with_sink(crate::TelemetryMode::Jsonl, Box::new(sink));
        let mut tr = Tracer::new(5, "ue");
        tr.record("x", "ue", 0, 1, vec![]);
        tr.drain_into(&mut tele);
        assert!(tr.is_empty());
        let evs = events.borrow();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "span");
        assert!(SpanRecord::from_event(&evs[0]).is_some());
    }
}
