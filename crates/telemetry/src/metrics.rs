//! Counters, gauges and log-bucketed histograms.
//!
//! The registry is a plain name → metric map with no locking or global
//! state: whoever owns the [`crate::Telemetry`] owns its metrics. All
//! recording paths are allocation-free once a metric name exists, so the
//! instrumented trainer hot loop pays one `BTreeMap` lookup per metric
//! update.

use std::collections::BTreeMap;

use crate::snapshot::Snapshot;

/// Log-spaced sub-buckets per factor-of-two of value range. Eight per
/// octave bounds the relative quantile-estimation error by
/// `2^(1/8) − 1 ≈ 9.1 %`.
pub const BUCKETS_PER_OCTAVE: usize = 8;

/// Smallest tracked value: `2^MIN_EXP` (≈ 1 ns when values are seconds).
const MIN_EXP: i32 = -30;

/// Largest tracked value: `2^MAX_EXP` (≈ 1.7e10). Values beyond land in
/// the overflow bucket.
const MAX_EXP: i32 = 34;

/// Tracked octaves.
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;

/// Bucket 0 is the underflow bucket (`v < 2^MIN_EXP`, including zero);
/// the last bucket is the overflow bucket (`v ≥ 2^MAX_EXP`).
const NUM_BUCKETS: usize = OCTAVES * BUCKETS_PER_OCTAVE + 2;

/// Lower bound of bucket `i ∈ [1, NUM_BUCKETS-1]`.
fn bucket_lower(i: usize) -> f64 {
    debug_assert!((1..NUM_BUCKETS).contains(&i));
    let octaves = (i - 1) as f64 / BUCKETS_PER_OCTAVE as f64;
    (octaves + MIN_EXP as f64).exp2()
}

/// The bucket index for `v` (non-negative, finite).
fn bucket_index(v: f64) -> usize {
    let min = (MIN_EXP as f64).exp2();
    if v < min {
        return 0;
    }
    let i = 1 + ((v.log2() - MIN_EXP as f64) * BUCKETS_PER_OCTAVE as f64).floor() as usize;
    i.min(NUM_BUCKETS - 1)
}

/// A log-bucketed histogram of non-negative values.
///
/// Tracks exact `count`, `sum`, `min` and `max`; quantiles are estimated
/// from the buckets with ≤ 9.1 % relative error (and are exact when all
/// recorded values are equal, since estimates are clamped to
/// `[min, max]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Values must be finite and non-negative (the
    /// telemetry layer records durations, sizes and counts).
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite() && v >= 0.0, "Histogram: bad value {v}");
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "Histogram: quantile {q} out of range"
        );
        if self.count == 0 {
            return None;
        }
        // The extremes are tracked exactly.
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // 1-based rank of the order statistic the quantile falls on.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = self.bucket_bounds(i);
                // Midpoint-convention interpolation within the bucket,
                // clamped to the exactly-tracked extrema.
                let frac = ((rank - cum) as f64 - 0.5) / c as f64;
                return Some((lo + (hi - lo) * frac).clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Value range covered by bucket `i`, clamped to observed extrema at
    /// the open ends.
    fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, bucket_lower(1))
        } else if i == NUM_BUCKETS - 1 {
            (bucket_lower(i), self.max.max(bucket_lower(i)))
        } else {
            (bucket_lower(i), bucket_lower(i + 1))
        }
    }

    /// Folds `other` into `self`. Equivalent (up to float-summation
    /// rounding in `sum`) to having recorded both value streams into one
    /// histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs. Together with
    /// `sum`/`min`/`max` this is the histogram's full state, so snapshots
    /// can serialize it and [`Histogram::from_parts`] can rebuild the
    /// exact histogram (same quantile estimates) on the way back in.
    pub fn indexed_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuilds a histogram from serialized parts: the sparse
    /// `(bucket_index, count)` pairs plus the exactly-tracked `sum`,
    /// `min` and `max`. The inverse of [`Histogram::indexed_buckets`];
    /// `count` is recovered as the bucket total. Returns `Err` on
    /// out-of-range bucket indices or stats inconsistent with emptiness.
    pub fn from_parts(
        buckets: &[(usize, u64)],
        sum: f64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            if i >= NUM_BUCKETS {
                return Err(format!(
                    "Histogram::from_parts: bucket index {i} out of range"
                ));
            }
            h.buckets[i] += c;
            h.count += c;
        }
        if h.count == 0 {
            return Ok(h);
        }
        let (min, max) = match (min, max) {
            (Some(lo), Some(hi)) if lo.is_finite() && hi.is_finite() && lo <= hi => (lo, hi),
            _ => {
                return Err("Histogram::from_parts: non-empty histogram needs min ≤ max".into());
            }
        };
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs (for debugging
    /// and tests; JSON snapshots serialize the summary statistics plus
    /// the sparse indexed buckets).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0.0 } else { bucket_lower(i) }, c))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Named counters, gauges and histograms.
///
/// * **Counters** are monotone `u64` totals (steps, slots, misses).
/// * **Gauges** are last-written / accumulated `f64` values (rates,
///   simulated-seconds totals).
/// * **Histograms** are value distributions (per-step loss, slot counts,
///   host-time scopes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        assert!(v.is_finite(), "MetricsRegistry: bad gauge value {v}");
        self.gauges.insert(name.to_string(), v);
    }

    /// Adds `dv` to gauge `name` (creating it at zero). Used for `f64`
    /// totals that must accumulate across runs, e.g. simulated seconds.
    pub fn gauge_add(&mut self, name: &str, dv: f64) {
        assert!(dv.is_finite(), "MetricsRegistry: bad gauge delta {dv}");
        if let Some(g) = self.gauges.get_mut(name) {
            *g += dv;
        } else {
            self.gauges.insert(name.to_string(), dv);
        }
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merges a standalone histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.merge(other);
        } else {
            self.histograms.insert(name.to_string(), other.clone());
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (it is the later registry), histograms bucket-merge.
    /// Merging registries in one fixed order is the scoped-registry
    /// aggregation path (DESIGN.md §11), and the counter/histogram part
    /// is order-insensitive by construction.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_set(k, *v);
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k, h);
        }
    }

    /// [`MetricsRegistry::merge_from`] with every metric name rewritten
    /// to `<prefix>.<name>` — how a scoped registry's bare names land
    /// under its namespace in the parent.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(&format!("{prefix}.{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_set(&format!("{prefix}.{k}"), *v);
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(&format!("{prefix}.{k}"), h);
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Exact powers of two sit on bucket lower bounds: bucket index
        // advances by BUCKETS_PER_OCTAVE per octave.
        let i1 = bucket_index(1.0);
        let i2 = bucket_index(2.0);
        let i4 = bucket_index(4.0);
        assert_eq!(i2 - i1, BUCKETS_PER_OCTAVE);
        assert_eq!(i4 - i2, BUCKETS_PER_OCTAVE);
        // The lower bound of the bucket holding 1.0 is exactly 1.0.
        assert_eq!(bucket_lower(i1), 1.0);
        // A value epsilon below a boundary lands one bucket lower.
        assert_eq!(bucket_index(2.0 - 1e-12), i2 - 1);
        // Zero and sub-minimum values land in the underflow bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e-12), 0);
        // The minimum tracked value is the first real bucket.
        assert_eq!(bucket_index((MIN_EXP as f64).exp2()), 1);
        // Huge values land in (and never exceed) the overflow bucket.
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.mean(), Some(2.5));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let tol = (1.0f64 / BUCKETS_PER_OCTAVE as f64).exp2() - 1.0; // ≈ 0.091
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q).unwrap();
            let rel = (est - expect).abs() / expect;
            assert!(rel <= tol + 1e-9, "q{q}: est {est} vs {expect} (rel {rel})");
        }
        // Extremes are exact thanks to min/max clamping.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn constant_stream_has_exact_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..57 {
            h.record(0.125);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.125), "q = {q}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = [0.001, 0.5, 3.0, 3.0, 100.0];
        let b = [0.25, 7.5, 0.0];
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hab = Histogram::new();
        for &v in &a {
            ha.record(v);
            hab.record(v);
        }
        for &v in &b {
            hb.record(v);
            hab.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hab.count());
        assert_eq!(ha.min(), hab.min());
        assert_eq!(ha.max(), hab.max());
        assert!((ha.sum() - hab.sum()).abs() < 1e-9);
        assert_eq!(ha.nonzero_buckets(), hab.nonzero_buckets());
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn rejects_negative_values() {
        Histogram::new().record(-1.0);
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0.0, 1e-12, 0.25, 3.0, 3.0, 1e300] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(&h.indexed_buckets(), h.sum(), h.min(), h.max()).unwrap();
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
        // Empty histograms round-trip too.
        let empty = Histogram::new();
        let rebuilt = Histogram::from_parts(&[], 0.0, None, None).unwrap();
        assert_eq!(rebuilt, empty);
    }

    #[test]
    fn from_parts_rejects_bad_input() {
        assert!(Histogram::from_parts(&[(usize::MAX, 1)], 0.0, Some(0.0), Some(0.0)).is_err());
        assert!(Histogram::from_parts(&[(1, 1)], 1.0, None, None).is_err());
        assert!(Histogram::from_parts(&[(1, 1)], 1.0, Some(2.0), Some(1.0)).is_err());
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.inc("steps");
        r.add("steps", 4);
        assert_eq!(r.counter("steps"), 5);
        assert_eq!(r.counter("absent"), 0);
        r.gauge_set("rate", 0.5);
        r.gauge_set("rate", 0.75); // last write wins
        assert_eq!(r.gauge("rate"), Some(0.75));
        r.gauge_add("sim_s", 1.5);
        r.gauge_add("sim_s", 0.25);
        assert_eq!(r.gauge("sim_s"), Some(1.75));
        r.observe("loss", 2.0);
        r.observe("loss", 4.0);
        assert_eq!(r.histogram("loss").unwrap().count(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_from_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("steps", 3);
        a.gauge_set("rate", 0.25);
        a.observe("loss", 1.0);
        let mut b = MetricsRegistry::new();
        b.add("steps", 2);
        b.gauge_set("rate", 0.75);
        b.observe("loss", 4.0);
        a.merge_from(&b);
        assert_eq!(a.counter("steps"), 5);
        assert_eq!(a.gauge("rate"), Some(0.75)); // later registry wins
        assert_eq!(a.histogram("loss").unwrap().count(), 2);
        assert_eq!(a.histogram("loss").unwrap().max(), Some(4.0));
    }

    #[test]
    fn merge_prefixed_namespaces_every_metric() {
        let mut scope = MetricsRegistry::new();
        scope.add("steps", 7);
        scope.gauge_set("loss_ema", 2.5);
        scope.observe("latency", 0.125);
        let mut parent = MetricsRegistry::new();
        parent.merge_prefixed("net.session.0", &scope);
        assert_eq!(parent.counter("net.session.0.steps"), 7);
        assert_eq!(parent.gauge("net.session.0.loss_ema"), Some(2.5));
        assert_eq!(
            parent.histogram("net.session.0.latency").unwrap().count(),
            1
        );
        assert_eq!(parent.counter("steps"), 0);
    }

    #[test]
    fn registry_merge_histogram() {
        let mut r = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(2.0);
        r.merge_histogram("slots", &h);
        r.merge_histogram("slots", &h);
        assert_eq!(r.histogram("slots").unwrap().count(), 4);
    }
}
