//! Deterministic time-series store: fixed-capacity ring buffers of
//! `(sim_time, value)` samples per metric.
//!
//! The store is the live half of the observability stack: where the
//! [`crate::MetricsRegistry`] keeps end-of-run totals, the series store
//! keeps a bounded time-resolved record of how each metric evolved. Two
//! properties make it reproducible:
//!
//! * **Simulated-time axis.** Sample timestamps are the trainer's
//!   [`SimClock`](../sl_core) seconds, never host wall clock, so two
//!   runs of the same config produce identical `(t, v)` pairs at any
//!   thread count.
//! * **Step-keyed cadence.** Callers sample on a step-count cadence
//!   (`Telemetry::should_sample`, `SLM_SAMPLE_EVERY`) — a property of
//!   the deterministic training loop, not of elapsed host time.
//!
//! Exports are a one-line-per-metric `series.jsonl` (byte-stable:
//! `verify.sh` literally `cmp`s two runs) and a delta-encoded compact
//! binary (`series.bin`): consecutive samples XOR their `f64` bit
//! patterns and LEB128-encode the difference, which collapses the
//! slowly-varying high bits of neighbouring floats to a few bytes.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;

use crate::json::{self, JsonArray, JsonObject, JsonValue};

/// Default ring capacity per metric: enough for every step of a smoke
/// or quick run at the default cadence, bounded for long-running
/// servers.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Magic prefix of the compact binary export.
const BINARY_MAGIC: &[u8; 4] = b"SLS1";

/// One metric's ring buffer of `(sim_time_s, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    samples: VecDeque<(f64, f64)>,
    dropped: u64,
}

impl Series {
    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring (oldest-first) since the start.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.samples.back().copied()
    }

    /// Smallest retained value.
    pub fn min_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Largest retained value.
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

/// A set of named [`Series`] rings sharing one capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStore {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl SeriesStore {
    /// An empty store; each metric retains at most `capacity` samples
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SeriesStore {
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// Per-metric ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one sample to metric `name`, evicting the oldest sample
    /// once the ring is full. Timestamps and values must be finite —
    /// the time axis is simulated seconds and non-finite training
    /// values are counted separately (`train.nonfinite.*`), never
    /// sampled.
    pub fn push(&mut self, name: &str, sim_time_s: f64, value: f64) {
        assert!(
            sim_time_s.is_finite() && value.is_finite(),
            "SeriesStore: bad sample ({sim_time_s}, {value})"
        );
        let s = self.series.entry(name.to_string()).or_default();
        if s.samples.len() == self.capacity {
            s.samples.pop_front();
            s.dropped += 1;
        }
        s.samples.push_back((sim_time_s, value));
    }

    /// `true` when no metric has any sample.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Metric names, sorted (BTreeMap order).
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The series for `name`, `None` when never sampled.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Serializes the store as JSONL: one line per metric, metrics in
    /// sorted order, no host timestamps — byte-identical across runs of
    /// the same config.
    ///
    /// ```json
    /// {"metric":"train.loss","dropped":0,"samples":[[0.125,3.5],...]}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, s) in &self.series {
            let mut samples = JsonArray::new();
            for (t, v) in s.iter() {
                let mut pair = String::from("[");
                json::push_f64(t, &mut pair);
                pair.push(',');
                json::push_f64(v, &mut pair);
                pair.push(']');
                samples.push_raw(&pair);
            }
            out.push_str(
                &JsonObject::new()
                    .str("metric", name)
                    .u64("dropped", s.dropped)
                    .raw("samples", &samples.finish())
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Parses a store serialized by [`SeriesStore::to_jsonl`]. The
    /// result has `capacity` = max(retained length, 1) per the whole
    /// store — enough for tools (`slm-top --series`) that only read.
    pub fn from_jsonl(text: &str) -> Result<SeriesStore, String> {
        let mut cap = 1;
        let mut series = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("series line {}: {e}", lineno + 1))?;
            let name = v
                .get("metric")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("series line {}: no metric name", lineno + 1))?
                .to_string();
            let dropped = v.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
            let mut s = Series {
                samples: VecDeque::new(),
                dropped,
            };
            let samples = v
                .get("samples")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("series line {}: no samples array", lineno + 1))?;
            for pair in samples {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("series {name:?}: bad sample pair"))?;
                let t = pair[0]
                    .as_f64()
                    .ok_or_else(|| format!("series {name:?}: bad timestamp"))?;
                let val = pair[1]
                    .as_f64()
                    .ok_or_else(|| format!("series {name:?}: bad value"))?;
                s.samples.push_back((t, val));
            }
            cap = cap.max(s.samples.len());
            series.insert(name, s);
        }
        Ok(SeriesStore {
            capacity: cap,
            series,
        })
    }

    /// Serializes the store as a compact delta-encoded binary.
    ///
    /// Layout (all integers little-endian): magic `SLS1`, `u32` metric
    /// count, then per metric (sorted order): `u32` name length + UTF-8
    /// name, `u64` dropped, `u32` sample count, first sample as two raw
    /// `f64` bit patterns, and each later sample as two LEB128 varints
    /// holding the XOR of its `f64` bits with the previous sample's.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BINARY_MAGIC);
        out.extend_from_slice(&(self.series.len() as u32).to_le_bytes());
        for (name, s) in &self.series {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&s.dropped.to_le_bytes());
            out.extend_from_slice(&(s.samples.len() as u32).to_le_bytes());
            let mut prev = (0u64, 0u64);
            for (i, (t, v)) in s.iter().enumerate() {
                let bits = (t.to_bits(), v.to_bits());
                if i == 0 {
                    out.extend_from_slice(&bits.0.to_le_bytes());
                    out.extend_from_slice(&bits.1.to_le_bytes());
                } else {
                    push_leb128(bits.0 ^ prev.0, &mut out);
                    push_leb128(bits.1 ^ prev.1, &mut out);
                }
                prev = bits;
            }
        }
        out
    }

    /// Parses a store serialized by [`SeriesStore::to_binary`] —
    /// the exact inverse (bit-exact samples).
    pub fn from_binary(bytes: &[u8]) -> Result<SeriesStore, String> {
        let mut r = BinReader { bytes, pos: 0 };
        if r.take(4)? != BINARY_MAGIC {
            return Err("series binary: bad magic".into());
        }
        let num_series = r.u32()? as usize;
        let mut cap = 1;
        let mut series = BTreeMap::new();
        for _ in 0..num_series {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| "series binary: bad metric name".to_string())?
                .to_string();
            let dropped = r.u64()?;
            let count = r.u32()? as usize;
            let mut s = Series {
                samples: VecDeque::with_capacity(count),
                dropped,
            };
            let mut prev = (0u64, 0u64);
            for i in 0..count {
                let bits = if i == 0 {
                    (r.u64()?, r.u64()?)
                } else {
                    (r.leb128()? ^ prev.0, r.leb128()? ^ prev.1)
                };
                s.samples
                    .push_back((f64::from_bits(bits.0), f64::from_bits(bits.1)));
                prev = bits;
            }
            cap = cap.max(s.samples.len());
            series.insert(name, s);
        }
        if r.pos != bytes.len() {
            return Err("series binary: trailing bytes".into());
        }
        Ok(SeriesStore {
            capacity: cap,
            series,
        })
    }

    /// Writes the JSONL export to `path`.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes the binary export to `path`.
    pub fn write_binary(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_binary())
    }
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::new(DEFAULT_SERIES_CAPACITY)
    }
}

/// Appends `v` as an unsigned LEB128 varint.
fn push_leb128(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "series binary: truncated".to_string())?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn leb128(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 63 && byte > 1 {
                return Err("series binary: varint overflow".into());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> SeriesStore {
        let mut s = SeriesStore::new(8);
        for i in 0..5 {
            s.push("train.loss", 0.125 * i as f64, 3.5 - 0.25 * i as f64);
        }
        s.push("net.retries", 0.5, 2.0);
        s
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut s = SeriesStore::new(3);
        for i in 0..5 {
            s.push("m", i as f64, (10 + i) as f64);
        }
        let m = s.get("m").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dropped(), 2);
        let kept: Vec<(f64, f64)> = m.iter().collect();
        assert_eq!(kept, vec![(2.0, 12.0), (3.0, 13.0), (4.0, 14.0)]);
        assert_eq!(m.last(), Some((4.0, 14.0)));
        assert_eq!(m.min_value(), Some(12.0));
        assert_eq!(m.max_value(), Some(14.0));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut s = SeriesStore::new(0);
        s.push("m", 0.0, 1.0);
        s.push("m", 1.0, 2.0);
        assert_eq!(s.get("m").unwrap().len(), 1);
        assert_eq!(s.get("m").unwrap().dropped(), 1);
    }

    #[test]
    fn jsonl_is_sorted_and_round_trips() {
        let s = sample_store();
        let text = s.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // BTreeMap order: net.* before train.*.
        assert!(lines[0].starts_with("{\"metric\":\"net.retries\""));
        assert!(lines[1].starts_with("{\"metric\":\"train.loss\""));
        let back = SeriesStore::from_jsonl(&text).unwrap();
        assert_eq!(back.series, s.series);
        // Empty stores serialize to nothing and parse back empty.
        assert_eq!(SeriesStore::new(4).to_jsonl(), "");
        assert!(SeriesStore::from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(SeriesStore::from_jsonl("not json").is_err());
        assert!(SeriesStore::from_jsonl("{\"metric\":\"m\"}").is_err());
        assert!(SeriesStore::from_jsonl("{\"samples\":[[0,1]]}").is_err());
        assert!(SeriesStore::from_jsonl("{\"metric\":\"m\",\"samples\":[[0]]}").is_err());
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let mut s = sample_store();
        // Awkward values: denormals-adjacent, negatives, huge exponents.
        s.push("edge", 1e-300, -1e300);
        s.push("edge", 2e-300, -0.0);
        let bytes = s.to_binary();
        let back = SeriesStore::from_binary(&bytes).unwrap();
        assert_eq!(back.series, s.series);
        // Deterministic: same store, same bytes.
        assert_eq!(s.to_binary(), bytes);
    }

    #[test]
    fn binary_delta_is_compact_for_smooth_series() {
        let mut s = SeriesStore::new(1024);
        for i in 0..1000 {
            s.push("m", i as f64, 3.5);
        }
        // Constant values XOR to zero (1 byte each); raw encoding would
        // be 16 bytes per sample.
        assert!(s.to_binary().len() < 1000 * 10);
    }

    #[test]
    fn binary_rejects_malformed_input() {
        assert!(SeriesStore::from_binary(b"").is_err());
        assert!(SeriesStore::from_binary(b"BAD!").is_err());
        let mut ok = sample_store().to_binary();
        ok.push(0); // trailing byte
        assert!(SeriesStore::from_binary(&ok).is_err());
        let truncated = &sample_store().to_binary()[..10];
        assert!(SeriesStore::from_binary(truncated).is_err());
    }

    #[test]
    #[should_panic(expected = "bad sample")]
    fn rejects_non_finite_samples() {
        SeriesStore::new(4).push("m", 0.0, f64::NAN);
    }
}
