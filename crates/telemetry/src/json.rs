//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds with zero external crates, so instead of serde
//! this module provides just enough of a writer to serialize metric
//! snapshots, event-journal lines and run manifests: objects, arrays,
//! and the five scalar kinds the telemetry layer uses. Output is always
//! a single line (JSONL-friendly); non-finite floats become `null`.

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_str_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out`; NaN and infinities serialize as `null` (JSON has
/// no representation for them).
pub fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting; always parseable back.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Incremental JSON object writer.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(name, &mut self.buf);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        push_str_escaped(v, &mut self.buf);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, name: &str, v: i64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        push_f64(v, &mut self.buf);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, name: &str, json: &str) -> Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Incremental JSON array writer (elements are pre-serialized values).
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends a pre-serialized JSON value.
    pub fn push_raw(&mut self, json: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(json);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, v: &str) {
        let mut s = String::new();
        push_str_escaped(v, &mut s);
        self.push_raw(&s);
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_escaped("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_fields_in_order() {
        let j = JsonObject::new()
            .str("name", "x")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .i64("d", -2)
            .finish();
        assert_eq!(j, "{\"name\":\"x\",\"n\":3,\"v\":1.5,\"ok\":true,\"d\":-2}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = JsonObject::new()
            .f64("a", f64::NAN)
            .f64("b", f64::INFINITY)
            .finish();
        assert_eq!(j, "{\"a\":null,\"b\":null}");
    }

    #[test]
    fn nested_raw_and_arrays() {
        let mut arr = JsonArray::new();
        arr.push_raw(&JsonObject::new().u64("k", 1).finish());
        arr.push_str("two");
        let j = JsonObject::new().raw("items", &arr.finish()).finish();
        assert_eq!(j, "{\"items\":[{\"k\":1},\"two\"]}");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
