//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace builds with zero external crates, so instead of serde
//! this module provides just enough of a writer to serialize metric
//! snapshots, event-journal lines and run manifests: objects, arrays,
//! and the five scalar kinds the telemetry layer uses. Output is always
//! a single line (JSONL-friendly); non-finite floats become `null`.
//!
//! The companion [`parse`] function is a recursive-descent reader for the
//! same dialect, used by `slm-report` to load snapshots, manifests and
//! journal lines back off disk. Numbers are parsed as `f64`, which is
//! lossless for every value the writer emits (shortest-roundtrip floats
//! and integers below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_str_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out`; NaN and infinities serialize as `null` (JSON has
/// no representation for them).
pub fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting; always parseable back.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Incremental JSON object writer.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(name, &mut self.buf);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        push_str_escaped(v, &mut self.buf);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, name: &str, v: i64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.key(name);
        push_f64(v, &mut self.buf);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, name: &str, json: &str) -> Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Incremental JSON array writer (elements are pre-serialized values).
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends a pre-serialized JSON value.
    pub fn push_raw(&mut self, json: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(json);
    }

    /// Appends a string element.
    pub fn push_str(&mut self, v: &str) {
        let mut s = String::new();
        push_str_escaped(v, &mut s);
        self.push_raw(&s);
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what the writer emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field by key, `None` when not an object or absent.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, `None` for other kinds.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, `None` for other kinds or
    /// negative / fractional values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, `None` for other kinds.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, `None` for other kinds.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, `None` for other kinds.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, `None` for other kinds.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // The matched bytes are all ASCII, so UTF-8 conversion cannot
        // fail — but route any surprise through the parse error anyway.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_escaped("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_fields_in_order() {
        let j = JsonObject::new()
            .str("name", "x")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .i64("d", -2)
            .finish();
        assert_eq!(j, "{\"name\":\"x\",\"n\":3,\"v\":1.5,\"ok\":true,\"d\":-2}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = JsonObject::new()
            .f64("a", f64::NAN)
            .f64("b", f64::INFINITY)
            .finish();
        assert_eq!(j, "{\"a\":null,\"b\":null}");
    }

    #[test]
    fn nested_raw_and_arrays() {
        let mut arr = JsonArray::new();
        arr.push_raw(&JsonObject::new().u64("k", 1).finish());
        arr.push_str("two");
        let j = JsonObject::new().raw("items", &arr.finish()).finish();
        assert_eq!(j, "{\"items\":[{\"k\":1},\"two\"]}");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-2.5e3").unwrap(), JsonValue::Num(-2500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":true}}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}ü€";
        let mut encoded = String::new();
        push_str_escaped(original, &mut encoded);
        assert_eq!(parse(&encoded).unwrap().as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            parse("\"\\u0041\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A\u{1F600}")
        );
    }

    #[test]
    fn writer_output_parses_back() {
        let mut arr = JsonArray::new();
        arr.push_raw("1.25");
        arr.push_str("two");
        let j = JsonObject::new()
            .str("name", "x")
            .u64("n", 3)
            .f64("v", -0.125)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .raw("items", &arr.finish())
            .finish();
        let v = parse(&j).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(-0.125));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
