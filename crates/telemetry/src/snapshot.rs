//! Point-in-time metric snapshots and their JSON serialization.

use std::collections::BTreeMap;

use crate::json::{self, JsonArray, JsonObject, JsonValue};
use crate::metrics::Histogram;

/// A copy of every metric in a [`crate::MetricsRegistry`] at one moment.
///
/// Snapshots keep the full histogram buckets (not just summaries) so two
/// snapshots can be merged losslessly: merging equals recording the
/// combined value streams (up to float-summation rounding in histogram
/// sums).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotone counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Full histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Snapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Folds `other` into `self`: counters add, histograms merge, and
    /// gauges take `other`'s value (it is the later snapshot).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter total (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a single-line JSON object:
    ///
    /// ```json
    /// {"counters":{"train.steps.applied":120},
    ///  "gauges":{"sim.compute_s":1.25},
    ///  "histograms":{"train.loss":{"count":120,"sum":...,"min":...,
    ///                "max":...,"mean":...,"p50":...,"p90":...,"p99":...,
    ///                "buckets":[[idx,count],...]}}}
    /// ```
    ///
    /// The quantile fields are derived conveniences for humans; the
    /// sparse `buckets` array plus `sum`/`min`/`max` is the histogram's
    /// full state, so [`Snapshot::from_json`] rebuilds the exact
    /// [`Histogram`] and tools can call [`Histogram::quantile`] on it.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = JsonObject::new();
        for (k, v) in &self.gauges {
            gauges = gauges.f64(k, *v);
        }
        let mut hists = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new()
                .u64("count", h.count())
                .f64("sum", h.sum());
            if let (Some(min), Some(max), Some(mean), Some(p50), Some(p90), Some(p99)) = (
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ) {
                o = o
                    .f64("min", min)
                    .f64("max", max)
                    .f64("mean", mean)
                    .f64("p50", p50)
                    .f64("p90", p90)
                    .f64("p99", p99);
            }
            let mut buckets = JsonArray::new();
            for (i, c) in h.indexed_buckets() {
                buckets.push_raw(&format!("[{i},{c}]"));
            }
            o = o.raw("buckets", &buckets.finish());
            hists = hists.raw(k, &o.finish());
        }
        JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }

    /// Parses a snapshot serialized by [`Snapshot::to_json`], rebuilding
    /// full histograms from their sparse buckets. Gauges that serialized
    /// as `null` (non-finite) are dropped.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = json::parse(text).map_err(|e| e.to_string())?;
        let mut snap = Snapshot::empty();
        let section = |name: &str| -> Result<BTreeMap<String, JsonValue>, String> {
            match root.get(name) {
                Some(JsonValue::Obj(m)) => Ok(m.clone()),
                Some(_) => Err(format!("snapshot: \"{name}\" is not an object")),
                None => Ok(BTreeMap::new()),
            }
        };
        for (k, v) in section("counters")? {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("snapshot: counter {k:?} is not a u64"))?;
            snap.counters.insert(k, n);
        }
        for (k, v) in section("gauges")? {
            match v {
                JsonValue::Null => {}
                _ => {
                    let f = v
                        .as_f64()
                        .ok_or_else(|| format!("snapshot: gauge {k:?} is not a number"))?;
                    snap.gauges.insert(k, f);
                }
            }
        }
        for (k, v) in section("histograms")? {
            let buckets = match v.get("buckets") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| format!("snapshot: bad bucket in {k:?}"))?;
                        let i = pair[0]
                            .as_u64()
                            .ok_or_else(|| format!("snapshot: bad bucket index in {k:?}"))?;
                        let c = pair[1]
                            .as_u64()
                            .ok_or_else(|| format!("snapshot: bad bucket count in {k:?}"))?;
                        Ok((i as usize, c))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => return Err(format!("snapshot: histogram {k:?} has no buckets array")),
            };
            let sum = v.get("sum").and_then(JsonValue::as_f64).unwrap_or(0.0);
            let min = v.get("min").and_then(JsonValue::as_f64);
            let max = v.get("max").and_then(JsonValue::as_f64);
            let h = Histogram::from_parts(&buckets, sum, min, max)
                .map_err(|e| format!("snapshot: histogram {k:?}: {e}"))?;
            snap.histograms.insert(k, h);
        }
        Ok(snap)
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn registry_with(values: &[f64], steps: u64, rate: f64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add("steps", steps);
        r.gauge_set("rate", rate);
        for &v in values {
            r.observe("loss", v);
        }
        r
    }

    #[test]
    fn merge_matches_combined_stream() {
        let a = registry_with(&[1.0, 2.0], 3, 0.5).snapshot();
        let b = registry_with(&[4.0], 2, 0.9).snapshot();
        let combined = registry_with(&[1.0, 2.0, 4.0], 5, 0.9).snapshot();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, combined);
    }

    #[test]
    fn counter_and_gauge_access() {
        let s = registry_with(&[], 7, 0.25).snapshot();
        assert_eq!(s.counter("steps"), 7);
        assert_eq!(s.counter("absent"), 0);
        assert_eq!(s.gauge("rate"), Some(0.25));
        assert_eq!(s.gauge("absent"), None);
    }

    #[test]
    fn json_shape() {
        let s = registry_with(&[2.0, 2.0], 1, 0.5).snapshot();
        let j = s.to_json();
        assert!(j.starts_with("{\"counters\":{\"steps\":1}"), "{j}");
        assert!(j.contains("\"gauges\":{\"rate\":0.5}"), "{j}");
        assert!(j.contains("\"loss\":{\"count\":2,\"sum\":4"), "{j}");
        assert!(j.contains("\"p50\":2"), "{j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = Snapshot::empty();
        assert!(s.is_empty());
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = registry_with(&[0.001, 2.0, 2.0, 1e6], 42, 0.125);
        r.observe("other", 7.5);
        let s = r.snapshot();
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Reconstructed histograms expose the full quantile API.
        let h = &back.histograms["loss"];
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.5), s.histograms["loss"].quantile(0.5));
        // Empty snapshots round-trip too.
        assert_eq!(
            Snapshot::from_json(&Snapshot::empty().to_json()).unwrap(),
            Snapshot::empty()
        );
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"counters\":{\"a\":-1}}").is_err());
        assert!(
            Snapshot::from_json("{\"histograms\":{\"h\":{\"count\":1,\"sum\":1}}}").is_err(),
            "histogram without buckets must be rejected"
        );
    }
}
