//! Point-in-time metric snapshots and their JSON serialization.

use std::collections::BTreeMap;

use crate::json::JsonObject;
use crate::metrics::Histogram;

/// A copy of every metric in a [`crate::MetricsRegistry`] at one moment.
///
/// Snapshots keep the full histogram buckets (not just summaries) so two
/// snapshots can be merged losslessly: merging equals recording the
/// combined value streams (up to float-summation rounding in histogram
/// sums).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotone counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Full histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Snapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Folds `other` into `self`: counters add, histograms merge, and
    /// gauges take `other`'s value (it is the later snapshot).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter total (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a single-line JSON object:
    ///
    /// ```json
    /// {"counters":{"train.steps.applied":120},
    ///  "gauges":{"sim.compute_s":1.25},
    ///  "histograms":{"train.loss":{"count":120,"sum":...,"min":...,
    ///                "max":...,"mean":...,"p50":...,"p90":...,"p99":...}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = JsonObject::new();
        for (k, v) in &self.gauges {
            gauges = gauges.f64(k, *v);
        }
        let mut hists = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new()
                .u64("count", h.count())
                .f64("sum", h.sum());
            if let (Some(min), Some(max), Some(mean)) = (h.min(), h.max(), h.mean()) {
                o = o
                    .f64("min", min)
                    .f64("max", max)
                    .f64("mean", mean)
                    .f64("p50", h.quantile(0.5).unwrap())
                    .f64("p90", h.quantile(0.9).unwrap())
                    .f64("p99", h.quantile(0.99).unwrap());
            }
            hists = hists.raw(k, &o.finish());
        }
        JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn registry_with(values: &[f64], steps: u64, rate: f64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add("steps", steps);
        r.gauge_set("rate", rate);
        for &v in values {
            r.observe("loss", v);
        }
        r
    }

    #[test]
    fn merge_matches_combined_stream() {
        let a = registry_with(&[1.0, 2.0], 3, 0.5).snapshot();
        let b = registry_with(&[4.0], 2, 0.9).snapshot();
        let combined = registry_with(&[1.0, 2.0, 4.0], 5, 0.9).snapshot();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, combined);
    }

    #[test]
    fn counter_and_gauge_access() {
        let s = registry_with(&[], 7, 0.25).snapshot();
        assert_eq!(s.counter("steps"), 7);
        assert_eq!(s.counter("absent"), 0);
        assert_eq!(s.gauge("rate"), Some(0.25));
        assert_eq!(s.gauge("absent"), None);
    }

    #[test]
    fn json_shape() {
        let s = registry_with(&[2.0, 2.0], 1, 0.5).snapshot();
        let j = s.to_json();
        assert!(j.starts_with("{\"counters\":{\"steps\":1}"), "{j}");
        assert!(j.contains("\"gauges\":{\"rate\":0.5}"), "{j}");
        assert!(j.contains("\"loss\":{\"count\":2,\"sum\":4"), "{j}");
        assert!(j.contains("\"p50\":2"), "{j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = Snapshot::empty();
        assert!(s.is_empty());
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
