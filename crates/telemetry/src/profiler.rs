//! Per-layer host-time and FLOP profiling.
//!
//! A [`Profiler`] is owned by whatever executes layers in order (in this
//! workspace, `sl-nn::Sequential`): the executor calls
//! [`Profiler::record_fwd`] / [`Profiler::record_bwd`] around each layer
//! with the measured wall-clock seconds and a modelled FLOP count. The
//! profiler accumulates a [`Histogram`] per layer and direction plus
//! FLOP/parameter totals, then [`Profiler::publish_to`] folds everything
//! into a [`Telemetry`] handle under
//! `{prefix}.layer.<idx>.<name>.{fwd,bwd}.host_s` (histograms) and
//! `{prefix}.layer.<idx>.<name>.{flops,params}` (gauges).
//!
//! Profilers start disabled; a disabled profiler is a no-op and the
//! executor is expected to guard its `Instant::now()` calls on
//! [`Profiler::is_enabled`], so un-profiled hot loops pay one branch.

use crate::metrics::Histogram;
use crate::Telemetry;

/// One layer's accumulated profile.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Layer name as reported by the executor (e.g. `conv2d`).
    pub name: String,
    /// Forward-pass host seconds, one sample per call.
    pub fwd: Histogram,
    /// Backward-pass host seconds, one sample per call.
    pub bwd: Histogram,
    /// Accumulated modelled FLOPs (forward + backward).
    pub flops: f64,
    /// Trainable parameter count.
    pub params: u64,
    /// FLOPs of the most recent forward call, used to charge the
    /// backward pass (modelled at 2× forward: one pass for input
    /// gradients, one for parameter gradients).
    last_fwd_flops: f64,
}

impl LayerProfile {
    fn new(name: &str) -> Self {
        LayerProfile {
            name: name.to_string(),
            fwd: Histogram::new(),
            bwd: Histogram::new(),
            flops: 0.0,
            params: 0,
            last_fwd_flops: 0.0,
        }
    }

    /// Total host seconds spent in this layer (forward + backward).
    pub fn host_s(&self) -> f64 {
        self.fwd.sum() + self.bwd.sum()
    }
}

/// Accumulates per-layer timing/FLOP statistics for one layer stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profiler {
    enabled: bool,
    layers: Vec<Option<LayerProfile>>,
}

impl Profiler {
    /// A disabled profiler (every call is a no-op).
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// Turns profiling on (keeps any stats already accumulated).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns profiling off (keeps accumulated stats for publishing).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// `true` when recording; executors guard their timing code on this.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// `true` when no samples or parameter counts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.layers.iter().all(Option::is_none)
    }

    fn slot(&mut self, idx: usize, name: &str) -> &mut LayerProfile {
        if idx >= self.layers.len() {
            self.layers.resize(idx + 1, None);
        }
        self.layers[idx].get_or_insert_with(|| LayerProfile::new(name))
    }

    /// Records the trainable parameter count of layer `idx`.
    pub fn set_params(&mut self, idx: usize, name: &str, params: u64) {
        if self.enabled {
            self.slot(idx, name).params = params;
        }
    }

    /// Records one forward pass through layer `idx`: measured host
    /// `seconds` and the modelled `flops` for the input it saw.
    pub fn record_fwd(&mut self, idx: usize, name: &str, seconds: f64, flops: f64) {
        if !self.enabled {
            return;
        }
        let slot = self.slot(idx, name);
        slot.fwd.record(seconds.max(0.0));
        slot.flops += flops;
        slot.last_fwd_flops = flops;
    }

    /// Records one backward pass through layer `idx`. FLOPs are charged
    /// at 2× the layer's most recent forward pass.
    pub fn record_bwd(&mut self, idx: usize, name: &str, seconds: f64) {
        if !self.enabled {
            return;
        }
        let slot = self.slot(idx, name);
        slot.bwd.record(seconds.max(0.0));
        slot.flops += 2.0 * slot.last_fwd_flops;
    }

    /// The accumulated per-layer profiles, in layer order.
    pub fn layers(&self) -> impl Iterator<Item = (usize, &LayerProfile)> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p)))
    }

    /// Total host seconds across all layers and both directions.
    pub fn total_host_s(&self) -> f64 {
        self.layers().map(|(_, p)| p.host_s()).sum()
    }

    /// Folds every layer's stats into `tele` under
    /// `{prefix}.layer.<idx>.<name>.*` and clears the accumulated stats
    /// (the enabled flag is untouched). Histograms merge, so repeated
    /// publishes across a run accumulate instead of double-counting.
    pub fn publish_to(&mut self, tele: &mut Telemetry, prefix: &str) {
        for (idx, p) in self.layers.iter().enumerate() {
            let Some(p) = p else { continue };
            let base = format!("{prefix}.layer.{idx}.{}", p.name);
            tele.merge_histogram(&format!("{base}.fwd.host_s"), &p.fwd);
            tele.merge_histogram(&format!("{base}.bwd.host_s"), &p.bwd);
            tele.gauge_add(&format!("{base}.flops"), p.flops);
            tele.gauge_set(&format!("{base}.params"), p.params as f64);
        }
        self.layers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, TelemetryMode};

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.record_fwd(0, "conv2d", 0.25, 100.0);
        p.record_bwd(0, "conv2d", 0.5);
        p.set_params(0, "conv2d", 7);
        assert!(p.is_empty());
        assert_eq!(p.total_host_s(), 0.0);
    }

    #[test]
    fn accumulates_per_layer_stats() {
        let mut p = Profiler::disabled();
        p.enable();
        p.set_params(0, "conv2d", 80);
        p.record_fwd(0, "conv2d", 0.25, 100.0);
        p.record_bwd(0, "conv2d", 0.5);
        p.record_fwd(2, "dense", 0.125, 10.0);
        let layers: Vec<_> = p.layers().collect();
        assert_eq!(layers.len(), 2);
        let (idx, conv) = layers[0];
        assert_eq!(idx, 0);
        assert_eq!(conv.name, "conv2d");
        assert_eq!(conv.params, 80);
        assert_eq!(conv.fwd.count(), 1);
        assert_eq!(conv.bwd.count(), 1);
        // Backward charged at 2× the last forward's FLOPs.
        assert_eq!(conv.flops, 100.0 + 200.0);
        assert_eq!(conv.host_s(), 0.75);
        assert_eq!(layers[1].0, 2);
        assert_eq!(p.total_host_s(), 0.875);
    }

    #[test]
    fn publish_emits_metrics_and_resets() {
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        let mut p = Profiler::disabled();
        p.enable();
        p.set_params(1, "dense", 33);
        p.record_fwd(1, "dense", 0.25, 8.0);
        p.record_bwd(1, "dense", 0.75);
        p.publish_to(&mut tele, "nn.ue");
        let s = tele.snapshot();
        let fwd = &s.histograms["nn.ue.layer.1.dense.fwd.host_s"];
        assert_eq!(fwd.count(), 1);
        assert_eq!(fwd.sum(), 0.25);
        assert_eq!(s.histograms["nn.ue.layer.1.dense.bwd.host_s"].sum(), 0.75);
        assert_eq!(s.gauge("nn.ue.layer.1.dense.flops"), Some(24.0));
        assert_eq!(s.gauge("nn.ue.layer.1.dense.params"), Some(33.0));
        // Stats reset after publish; a second publish adds nothing.
        assert!(p.is_empty());
        assert!(p.is_enabled());
        p.publish_to(&mut tele, "nn.ue");
        assert_eq!(
            tele.snapshot().histograms["nn.ue.layer.1.dense.fwd.host_s"].count(),
            1
        );
    }
}
