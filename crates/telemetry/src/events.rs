//! The structured event journal: events, field values and sinks.
//!
//! Every notable occurrence (an epoch finishing, a profile warning, a
//! progress message) is an [`Event`]: a kind, a host-relative timestamp
//! and a flat list of typed fields. Events flow into a [`Sink`] chosen at
//! startup — dropped (`off`), summarized on stderr (`summary`), or
//! appended as JSON lines to a file (`jsonl`) — so experiment stdout
//! stays reserved for paper-comparable result rows.

use std::cell::RefCell;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::json::JsonObject;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds since the owning [`crate::Telemetry`] was created.
    pub t_host_s: f64,
    /// Event kind, e.g. `"epoch"`, `"warn"`, `"progress"`.
    pub kind: String,
    /// Typed fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The `msg` field as a string (progress and warn events carry one).
    pub fn message(&self) -> Option<&str> {
        match self.field("msg") {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// One JSONL line:
    /// `{"t_host_s":1.25,"event":"epoch","epoch":3,"val_rmse_db":4.1}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new()
            .f64("t_host_s", self.t_host_s)
            .str("event", &self.kind);
        for (k, v) in &self.fields {
            o = match v {
                Value::U64(x) => o.u64(k, *x),
                Value::I64(x) => o.i64(k, *x),
                Value::F64(x) => o.f64(k, *x),
                Value::Bool(x) => o.bool(k, *x),
                Value::Str(x) => o.str(k, x),
            };
        }
        o.finish()
    }
}

/// Builder for an [`Event`] (the timestamp is stamped on emission).
#[derive(Debug, Clone)]
pub struct EventBuilder {
    kind: String,
    fields: Vec<(String, Value)>,
}

impl EventBuilder {
    /// Starts an event of `kind`.
    pub fn new(kind: &str) -> Self {
        EventBuilder {
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.fields.push((name.to_string(), Value::U64(v)));
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, name: &str, v: i64) -> Self {
        self.fields.push((name.to_string(), Value::I64(v)));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.fields.push((name.to_string(), Value::F64(v)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.fields.push((name.to_string(), Value::Bool(v)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.fields
            .push((name.to_string(), Value::Str(v.to_string())));
        self
    }

    /// Finalizes with the given timestamp.
    pub fn build(self, t_host_s: f64) -> Event {
        Event {
            t_host_s,
            kind: self.kind,
            fields: self.fields,
        }
    }
}

/// Where events go.
pub trait Sink {
    /// Consumes one event.
    fn emit(&mut self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Drops everything (`SLM_TELEMETRY=off`).
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// Human-readable progress on stderr (`SLM_TELEMETRY=summary`).
///
/// Prints progress chatter and end-of-run summaries; per-step and
/// per-epoch structured events are deliberately skipped so long runs do
/// not flood the terminal. Warnings are printed by the telemetry facade
/// itself in every mode and are therefore skipped here too.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        match event.kind.as_str() {
            "progress" => {
                if let Some(msg) = event.message() {
                    eprintln!("[sl] {msg}");
                }
            }
            "train_end" | "run_end" | "deploy_end" => {
                let fields: Vec<String> = event
                    .fields
                    .iter()
                    .map(|(k, v)| match v {
                        Value::U64(x) => format!("{k}={x}"),
                        Value::I64(x) => format!("{k}={x}"),
                        Value::F64(x) => format!("{k}={x:.4}"),
                        Value::Bool(x) => format!("{k}={x}"),
                        Value::Str(x) => format!("{k}={x}"),
                    })
                    .collect();
                eprintln!("[sl] {} {}", event.kind, fields.join(" "));
            }
            _ => {}
        }
    }
}

/// Appends every event as one JSON line (`SLM_TELEMETRY=jsonl`).
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the journal file, making parent directories
    /// as needed.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            path: path.to_path_buf(),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // Journal writes are best-effort: an unwritable disk must not
        // abort a long experiment.
        let _ = writeln!(self.writer, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Collects events in memory (tests).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// Creates a sink plus a shared handle to the collected events.
    pub fn new() -> (Self, Rc<RefCell<Vec<Event>>>) {
        let events = Rc::new(RefCell::new(Vec::new()));
        (
            MemorySink {
                events: Rc::clone(&events),
            },
            events,
        )
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_line() {
        let e = EventBuilder::new("epoch")
            .u64("epoch", 3)
            .f64("val_rmse_db", 4.5)
            .str("scheme", "Img+RF")
            .build(1.25);
        assert_eq!(
            e.to_json(),
            "{\"t_host_s\":1.25,\"event\":\"epoch\",\"epoch\":3,\
             \"val_rmse_db\":4.5,\"scheme\":\"Img+RF\"}"
        );
    }

    #[test]
    fn field_lookup() {
        let e = EventBuilder::new("warn")
            .str("msg", "bad profile")
            .build(0.0);
        assert_eq!(e.message(), Some("bad profile"));
        assert_eq!(e.field("absent"), None);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("sl_telemetry_test_jsonl");
        let path = dir.join("stream.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.emit(&EventBuilder::new("a").u64("n", 1).build(0.0));
        sink.emit(&EventBuilder::new("b").build(0.5));
        sink.flush();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"a\""));
        assert!(lines[1].contains("\"event\":\"b\""));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_collects() {
        let (mut sink, events) = MemorySink::new();
        sink.emit(&EventBuilder::new("x").build(0.0));
        assert_eq!(events.borrow().len(), 1);
        assert_eq!(events.borrow()[0].kind, "x");
    }
}
