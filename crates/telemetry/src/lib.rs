//! # `sl-telemetry` — metrics and structured events, on std alone
//!
//! The paper's headline result (Fig. 3a) is a *time* claim: one-pixel
//! pooling wins because cheaper cut-layer transfers buy more SGD steps
//! per second. Proving that — and proving that future optimizations
//! don't regress it — needs observability: where do simulated and host
//! time actually go? This crate provides the substrate every other
//! workspace crate instruments against:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log-bucketed
//!   [`Histogram`]s (count/sum/min/max/p50/p90/p99).
//! * [`Stopwatch`] / [`SimSpan`] — scope timers for host wall-clock and
//!   for `sl-core`'s simulated compute/airtime split.
//! * [`Profiler`] — per-layer forward/backward host-time histograms and
//!   FLOP/parameter counts, threaded through `sl-nn::Sequential` and
//!   published under `nn.{ue,bs}.layer.<idx>.<name>.*`.
//! * [`Event`] journal with pluggable [`Sink`]s — dropped, summarized on
//!   stderr, or appended as JSON lines — selected by the
//!   `SLM_TELEMETRY` environment variable (`off` | `summary` | `jsonl`,
//!   default `summary`); `SLM_TELEMETRY_PATH` picks the JSONL directory.
//! * [`Snapshot`] — a serializable (hand-rolled JSON, no serde) copy of
//!   all metrics; snapshots merge losslessly.
//!
//! Everything funnels through one owned [`Telemetry`] value — no global
//! state, no locks, no external crates — and every recording call
//! no-ops when the mode is `off`, so instrumented hot loops cost one
//! branch when observability is disabled.

mod events;
pub mod json;
mod metrics;
mod profiler;
mod snapshot;
mod timer;
pub mod trace;

pub use events::{Event, EventBuilder, JsonlSink, MemorySink, NullSink, Sink, StderrSink, Value};
pub use metrics::{Histogram, MetricsRegistry, BUCKETS_PER_OCTAVE};
pub use profiler::{LayerProfile, Profiler};
pub use snapshot::Snapshot;
pub use timer::{SimSpan, Stopwatch};
pub use trace::{
    check_spans, chrome_trace_json, latency_breakdown, sim_us, spans_from_jsonl, trace_env_enabled,
    LatencyRow, OpenSpan, SpanRecord, TraceStats, Tracer, BS_SPAN_NAMESPACE,
};

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which observability mode the process runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Record nothing, emit nothing (hot paths skip instrumentation).
    Off,
    /// Record metrics; progress and end-of-run events go to stderr.
    Summary,
    /// Record metrics; every event appends to a JSONL journal file.
    Jsonl,
}

impl TelemetryMode {
    /// Parses an `SLM_TELEMETRY` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(TelemetryMode::Off),
            "summary" => Some(TelemetryMode::Summary),
            "jsonl" => Some(TelemetryMode::Jsonl),
            _ => None,
        }
    }
}

/// The telemetry handle: one metrics registry plus one event sink.
pub struct Telemetry {
    mode: TelemetryMode,
    origin: Instant,
    registry: MetricsRegistry,
    sink: Box<dyn Sink>,
    events_path: Option<PathBuf>,
    tracing: bool,
}

impl Telemetry {
    /// A disabled handle: every call is a cheap no-op.
    pub fn disabled() -> Self {
        Telemetry::with_sink(TelemetryMode::Off, Box::new(NullSink))
    }

    /// A summary-mode handle (metrics in memory, progress on stderr).
    pub fn summary() -> Self {
        Telemetry::with_sink(TelemetryMode::Summary, Box::new(StderrSink))
    }

    /// A handle with an explicit mode and sink (tests use [`MemorySink`]).
    pub fn with_sink(mode: TelemetryMode, sink: Box<dyn Sink>) -> Self {
        Telemetry {
            mode,
            origin: Instant::now(),
            registry: MetricsRegistry::new(),
            sink,
            events_path: None,
            tracing: false,
        }
    }

    /// Builds a handle from `SLM_TELEMETRY` / `SLM_TELEMETRY_PATH`.
    ///
    /// * unset → `summary`;
    /// * `off` / `summary` / `jsonl` → that mode;
    /// * anything else → `summary`, plus a `warn` event (silent
    ///   misconfiguration is an observability bug);
    /// * `jsonl` journals to `<SLM_TELEMETRY_PATH>/<stream>.jsonl`
    ///   (default directory `results/telemetry`). If the journal file
    ///   cannot be created the handle falls back to `summary` with a
    ///   warning rather than aborting the run.
    pub fn from_env(stream: &str) -> Self {
        let raw = std::env::var("SLM_TELEMETRY").ok();
        let dir = std::env::var("SLM_TELEMETRY_PATH")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/telemetry"));
        let mut tele = Telemetry::from_settings(raw.as_deref(), &dir, stream);
        tele.set_tracing(trace::trace_env_enabled());
        tele
    }

    /// [`Telemetry::from_env`] with the environment made explicit (so it
    /// is testable without mutating process state).
    pub fn from_settings(mode_value: Option<&str>, jsonl_dir: &Path, stream: &str) -> Self {
        let (mode, bad_mode) = match mode_value {
            None => (TelemetryMode::Summary, None),
            Some(s) => match TelemetryMode::parse(s) {
                Some(m) => (m, None),
                None => (TelemetryMode::Summary, Some(s.to_string())),
            },
        };
        let mut tele = match mode {
            TelemetryMode::Off => Telemetry::disabled(),
            TelemetryMode::Summary => Telemetry::summary(),
            TelemetryMode::Jsonl => {
                let path = jsonl_dir.join(format!("{stream}.jsonl"));
                match JsonlSink::create(&path) {
                    Ok(sink) => {
                        let mut t = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
                        t.events_path = Some(path);
                        t
                    }
                    Err(e) => {
                        let mut t = Telemetry::summary();
                        t.warn(&format!(
                            "cannot create event journal {}: {e}; falling back to summary",
                            path.display()
                        ));
                        t
                    }
                }
            }
        };
        if let Some(bad) = bad_mode {
            tele.warn(&format!(
                "unrecognized SLM_TELEMETRY value {bad:?} (expected off|summary|jsonl); \
                 using summary"
            ));
        }
        tele
    }

    /// The active mode.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// `false` only in [`TelemetryMode::Off`] — callers guard hot-loop
    /// instrumentation on this.
    pub fn is_enabled(&self) -> bool {
        self.mode != TelemetryMode::Off
    }

    /// Requests (or drops) span tracing. [`Telemetry::from_env`] reads
    /// the request from `SLM_TRACE`; tests set it directly.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// `true` when span tracing was requested *and* events have
    /// somewhere to go — trainers create a [`Tracer`] only then.
    pub fn trace_enabled(&self) -> bool {
        self.tracing && self.is_enabled()
    }

    /// The JSONL journal path, when journaling to a file.
    pub fn events_path(&self) -> Option<&Path> {
        self.events_path.as_deref()
    }

    /// Seconds since this handle was created (the event timestamp base).
    pub fn uptime_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Read access to the metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    // ---- metric recording (no-ops when off) -----------------------------

    /// Increments counter `name`.
    pub fn inc(&mut self, name: &str) {
        if self.is_enabled() {
            self.registry.inc(name);
        }
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        if self.is_enabled() {
            self.registry.add(name, n);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if self.is_enabled() {
            self.registry.gauge_set(name, v);
        }
    }

    /// Adds `dv` to gauge `name`.
    pub fn gauge_add(&mut self, name: &str, dv: f64) {
        if self.is_enabled() {
            self.registry.gauge_add(name, dv);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        if self.is_enabled() {
            self.registry.observe(name, v);
        }
    }

    /// Merges a standalone histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if self.is_enabled() {
            self.registry.merge_histogram(name, h);
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    // ---- event journal ---------------------------------------------------

    /// Emits a structured event (timestamped now).
    pub fn emit(&mut self, event: EventBuilder) {
        if !self.is_enabled() {
            return;
        }
        let e = event.build(self.uptime_s());
        self.sink.emit(&e);
    }

    /// Emits a progress message (chatter that must stay off stdout).
    pub fn progress(&mut self, msg: &str) {
        self.emit(EventBuilder::new("progress").str("msg", msg));
    }

    /// Emits a warning. Warnings are always printed to stderr — even in
    /// `off` mode — because they signal misconfiguration; they enter the
    /// journal like any other event when a sink is active.
    pub fn warn(&mut self, msg: &str) {
        eprintln!("[sl][warn] {msg}");
        self.emit(EventBuilder::new("warn").str("msg", msg));
    }

    /// Flushes the event sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("mode", &self.mode)
            .field("events_path", &self.events_path)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        tele.inc("c");
        tele.add("c", 5);
        tele.gauge_set("g", 1.0);
        tele.gauge_add("g", 1.0);
        tele.observe("h", 2.0);
        tele.emit(EventBuilder::new("e"));
        assert!(tele.registry().is_empty());
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn enabled_records_metrics_and_events() {
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        tele.inc("steps");
        tele.observe("loss", 1.5);
        tele.gauge_set("rate", 0.5);
        tele.progress("working");
        tele.emit(EventBuilder::new("epoch").u64("epoch", 1));
        let s = tele.snapshot();
        assert_eq!(s.counter("steps"), 1);
        assert_eq!(s.gauge("rate"), Some(0.5));
        let evs = events.borrow();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "progress");
        assert_eq!(evs[0].message(), Some("working"));
        assert_eq!(evs[1].kind, "epoch");
        assert!(evs[1].t_host_s >= evs[0].t_host_s);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(TelemetryMode::parse("off"), Some(TelemetryMode::Off));
        assert_eq!(
            TelemetryMode::parse("summary"),
            Some(TelemetryMode::Summary)
        );
        assert_eq!(TelemetryMode::parse("jsonl"), Some(TelemetryMode::Jsonl));
        assert_eq!(TelemetryMode::parse("verbose"), None);
        assert_eq!(TelemetryMode::parse("OFF"), None);
    }

    #[test]
    fn from_settings_selects_modes() {
        let dir = std::env::temp_dir().join("sl_telemetry_test_settings");
        let t = Telemetry::from_settings(None, &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Summary);
        let t = Telemetry::from_settings(Some("off"), &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Off);
        // Unknown value falls back to summary (and warns, which we can't
        // capture here — the warn path is covered via MemorySink tests).
        let t = Telemetry::from_settings(Some("bogus"), &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Summary);
        // jsonl creates the journal file under the directory.
        let t = Telemetry::from_settings(Some("jsonl"), &dir, "stream");
        assert_eq!(t.mode(), TelemetryMode::Jsonl);
        let path = t.events_path().unwrap().to_path_buf();
        assert!(path.ends_with("stream.jsonl"));
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_journal_round_trip() {
        let dir = std::env::temp_dir().join("sl_telemetry_test_roundtrip");
        let mut tele = Telemetry::from_settings(Some("jsonl"), &dir, "run");
        tele.progress("phase 1");
        tele.emit(EventBuilder::new("epoch").u64("epoch", 2).f64("rmse", 3.5));
        tele.flush();
        let text = std::fs::read_to_string(tele.events_path().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"progress\""));
        assert!(lines[0].contains("\"msg\":\"phase 1\""));
        assert!(lines[1].contains("\"epoch\":2"));
        assert!(lines[1].contains("\"rmse\":3.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
