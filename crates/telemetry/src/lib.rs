//! # `sl-telemetry` — metrics and structured events, on std alone
//!
//! The paper's headline result (Fig. 3a) is a *time* claim: one-pixel
//! pooling wins because cheaper cut-layer transfers buy more SGD steps
//! per second. Proving that — and proving that future optimizations
//! don't regress it — needs observability: where do simulated and host
//! time actually go? This crate provides the substrate every other
//! workspace crate instruments against:
//!
//! * [`MetricsRegistry`] — named counters, gauges and log-bucketed
//!   [`Histogram`]s (count/sum/min/max/p50/p90/p99).
//! * [`Stopwatch`] / [`SimSpan`] — scope timers for host wall-clock and
//!   for `sl-core`'s simulated compute/airtime split.
//! * [`Profiler`] — per-layer forward/backward host-time histograms and
//!   FLOP/parameter counts, threaded through `sl-nn::Sequential` and
//!   published under `nn.{ue,bs}.layer.<idx>.<name>.*`.
//! * [`Event`] journal with pluggable [`Sink`]s — dropped, summarized on
//!   stderr, or appended as JSON lines — selected by the
//!   `SLM_TELEMETRY` environment variable (`off` | `summary` | `jsonl`,
//!   default `summary`); `SLM_TELEMETRY_PATH` picks the JSONL directory.
//! * [`Snapshot`] — a serializable (hand-rolled JSON, no serde) copy of
//!   all metrics; snapshots merge losslessly.
//!
//! Everything funnels through one owned [`Telemetry`] value — no global
//! state, no locks, no external crates — and every recording call
//! no-ops when the mode is `off`, so instrumented hot loops cost one
//! branch when observability is disabled.

mod events;
pub mod json;
mod metrics;
mod profiler;
pub mod registry;
mod series;
mod snapshot;
mod timer;
pub mod trace;

pub use events::{Event, EventBuilder, JsonlSink, MemorySink, NullSink, Sink, StderrSink, Value};
pub use metrics::{Histogram, MetricsRegistry, BUCKETS_PER_OCTAVE};
pub use profiler::{LayerProfile, Profiler};
pub use series::{Series, SeriesStore, DEFAULT_SERIES_CAPACITY};
pub use snapshot::Snapshot;
pub use timer::{SimSpan, Stopwatch};
pub use trace::{
    check_spans, chrome_trace_json, latency_breakdown, sim_us, spans_from_jsonl, trace_env_enabled,
    LatencyRow, OpenSpan, SpanRecord, TraceStats, Tracer, BS_SPAN_NAMESPACE,
};

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which observability mode the process runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Record nothing, emit nothing (hot paths skip instrumentation).
    Off,
    /// Record metrics; progress and end-of-run events go to stderr.
    Summary,
    /// Record metrics; every event appends to a JSONL journal file.
    Jsonl,
}

impl TelemetryMode {
    /// Parses an `SLM_TELEMETRY` value; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(TelemetryMode::Off),
            "summary" => Some(TelemetryMode::Summary),
            "jsonl" => Some(TelemetryMode::Jsonl),
            _ => None,
        }
    }
}

/// Default sampling cadence: one time-series sample every 8 training
/// steps (overridden by `SLM_SAMPLE_EVERY`).
pub const DEFAULT_SAMPLE_EVERY: u64 = 8;

/// Parses an `SLM_SAMPLE_EVERY` value: a positive step count. `None`
/// (unset) selects the default; an unparseable or zero value is an
/// `Err` carrying it so the caller can warn.
pub fn parse_sample_every(value: Option<&str>) -> Result<u64, String> {
    match value {
        None => Ok(DEFAULT_SAMPLE_EVERY),
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(s.to_string()),
        },
    }
}

/// The telemetry handle: one metrics registry plus one event sink.
pub struct Telemetry {
    mode: TelemetryMode,
    origin: Instant,
    registry: MetricsRegistry,
    series: SeriesStore,
    sample_every: u64,
    sink: Box<dyn Sink>,
    events_path: Option<PathBuf>,
    tracing: bool,
    /// Warn rate-limiting: the last warned message plus how many exact
    /// repeats arrived since it was printed. Flushed (as one collapsed
    /// event with a `repeats` count) at the next sample-window boundary,
    /// at the next different warning, or at `flush()`.
    pending_warn: Option<(String, u64)>,
}

impl Telemetry {
    /// A disabled handle: every call is a cheap no-op.
    pub fn disabled() -> Self {
        Telemetry::with_sink(TelemetryMode::Off, Box::new(NullSink))
    }

    /// A summary-mode handle (metrics in memory, progress on stderr).
    pub fn summary() -> Self {
        Telemetry::with_sink(TelemetryMode::Summary, Box::new(StderrSink))
    }

    /// A handle with an explicit mode and sink (tests use [`MemorySink`]).
    pub fn with_sink(mode: TelemetryMode, sink: Box<dyn Sink>) -> Self {
        Telemetry {
            mode,
            origin: Instant::now(),
            registry: MetricsRegistry::new(),
            series: SeriesStore::default(),
            sample_every: DEFAULT_SAMPLE_EVERY,
            sink,
            events_path: None,
            tracing: false,
            pending_warn: None,
        }
    }

    /// Builds a handle from `SLM_TELEMETRY` / `SLM_TELEMETRY_PATH`.
    ///
    /// * unset → `summary`;
    /// * `off` / `summary` / `jsonl` → that mode;
    /// * anything else → `summary`, plus a `warn` event (silent
    ///   misconfiguration is an observability bug);
    /// * `jsonl` journals to `<SLM_TELEMETRY_PATH>/<stream>.jsonl`
    ///   (default directory `results/telemetry`). If the journal file
    ///   cannot be created the handle falls back to `summary` with a
    ///   warning rather than aborting the run.
    pub fn from_env(stream: &str) -> Self {
        let raw = std::env::var("SLM_TELEMETRY").ok();
        let dir = std::env::var("SLM_TELEMETRY_PATH")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/telemetry"));
        let mut tele = Telemetry::from_settings(raw.as_deref(), &dir, stream);
        tele.set_tracing(trace::trace_env_enabled());
        let every = std::env::var("SLM_SAMPLE_EVERY").ok();
        match parse_sample_every(every.as_deref()) {
            Ok(n) => tele.set_sample_every(n),
            Err(bad) => tele.warn(&format!(
                "unrecognized SLM_SAMPLE_EVERY value {bad:?} (expected a positive \
                 step count); using {DEFAULT_SAMPLE_EVERY}"
            )),
        }
        tele
    }

    /// [`Telemetry::from_env`] with the environment made explicit (so it
    /// is testable without mutating process state).
    pub fn from_settings(mode_value: Option<&str>, jsonl_dir: &Path, stream: &str) -> Self {
        let (mode, bad_mode) = match mode_value {
            None => (TelemetryMode::Summary, None),
            Some(s) => match TelemetryMode::parse(s) {
                Some(m) => (m, None),
                None => (TelemetryMode::Summary, Some(s.to_string())),
            },
        };
        let mut tele = match mode {
            TelemetryMode::Off => Telemetry::disabled(),
            TelemetryMode::Summary => Telemetry::summary(),
            TelemetryMode::Jsonl => {
                let path = jsonl_dir.join(format!("{stream}.jsonl"));
                match JsonlSink::create(&path) {
                    Ok(sink) => {
                        let mut t = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
                        t.events_path = Some(path);
                        t
                    }
                    Err(e) => {
                        let mut t = Telemetry::summary();
                        t.warn(&format!(
                            "cannot create event journal {}: {e}; falling back to summary",
                            path.display()
                        ));
                        t
                    }
                }
            }
        };
        if let Some(bad) = bad_mode {
            tele.warn(&format!(
                "unrecognized SLM_TELEMETRY value {bad:?} (expected off|summary|jsonl); \
                 using summary"
            ));
        }
        tele
    }

    /// The active mode.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// `false` only in [`TelemetryMode::Off`] — callers guard hot-loop
    /// instrumentation on this.
    pub fn is_enabled(&self) -> bool {
        self.mode != TelemetryMode::Off
    }

    /// Requests (or drops) span tracing. [`Telemetry::from_env`] reads
    /// the request from `SLM_TRACE`; tests set it directly.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// `true` when span tracing was requested *and* events have
    /// somewhere to go — trainers create a [`Tracer`] only then.
    pub fn trace_enabled(&self) -> bool {
        self.tracing && self.is_enabled()
    }

    /// The JSONL journal path, when journaling to a file.
    pub fn events_path(&self) -> Option<&Path> {
        self.events_path.as_deref()
    }

    /// Seconds since this handle was created (the event timestamp base).
    pub fn uptime_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Read access to the metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    // ---- metric recording (no-ops when off) -----------------------------

    /// Increments counter `name`.
    pub fn inc(&mut self, name: &str) {
        if self.is_enabled() {
            self.registry.inc(name);
        }
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        if self.is_enabled() {
            self.registry.add(name, n);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if self.is_enabled() {
            self.registry.gauge_set(name, v);
        }
    }

    /// Adds `dv` to gauge `name`.
    pub fn gauge_add(&mut self, name: &str, dv: f64) {
        if self.is_enabled() {
            self.registry.gauge_add(name, dv);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        if self.is_enabled() {
            self.registry.observe(name, v);
        }
    }

    /// Merges a standalone histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if self.is_enabled() {
            self.registry.merge_histogram(name, h);
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    // ---- time series (no-ops when off) -----------------------------------

    /// The sampling cadence in training steps (`SLM_SAMPLE_EVERY`).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Sets the sampling cadence (clamped to ≥ 1 step).
    pub fn set_sample_every(&mut self, every: u64) {
        self.sample_every = every.max(1);
    }

    /// `true` when 1-based step `step` falls on the sampling cadence.
    /// Keyed to the deterministic step counter — never wall clock — so
    /// two runs of the same config sample identical steps at any thread
    /// count.
    pub fn should_sample(&self, step: u64) -> bool {
        self.is_enabled() && step.is_multiple_of(self.sample_every)
    }

    /// Appends one `(sim_time_s, value)` sample to time series `name`.
    /// Also a sample-window boundary: any rate-limited warning repeats
    /// collapse into their summary event here.
    pub fn series_point(&mut self, name: &str, sim_time_s: f64, value: f64) {
        if self.is_enabled() {
            self.flush_pending_warn();
            self.series.push(name, sim_time_s, value);
        }
    }

    /// Read access to the time-series store.
    pub fn series(&self) -> &SeriesStore {
        &self.series
    }

    // ---- scoped registries -----------------------------------------------

    /// A detached registry recording under its own namespace — e.g.
    /// `net.session.3` for one BS session. The scope records bare metric
    /// names ("steps", "loss_ema"); [`Telemetry::absorb`] later folds
    /// them into this handle as `<prefix>.<name>` (and optionally into a
    /// fleet-wide aggregate namespace). The scope inherits this handle's
    /// enabled/disabled state, so instrumentation stays free when
    /// telemetry is off.
    pub fn scoped(&self, prefix: &str) -> ScopedMetrics {
        ScopedMetrics {
            prefix: prefix.to_string(),
            enabled: self.is_enabled(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Folds a scoped registry into this handle: every metric lands
    /// under `<scope.prefix>.<name>`, and — when `aggregate` is given —
    /// also under `<aggregate>.<name>` (counters sum, gauges last-write,
    /// histograms bucket-merge). Callers absorbing several scopes must
    /// do so in one fixed order (ascending session id) so gauge
    /// last-write stays deterministic.
    pub fn absorb(&mut self, scope: &ScopedMetrics, aggregate: Option<&str>) {
        if !self.is_enabled() {
            return;
        }
        self.registry.merge_prefixed(&scope.prefix, &scope.registry);
        if let Some(agg) = aggregate {
            self.registry.merge_prefixed(agg, &scope.registry);
        }
    }

    // ---- event journal ---------------------------------------------------

    /// Emits a structured event (timestamped now).
    pub fn emit(&mut self, event: EventBuilder) {
        if !self.is_enabled() {
            return;
        }
        let e = event.build(self.uptime_s());
        self.sink.emit(&e);
    }

    /// Emits a progress message (chatter that must stay off stdout).
    pub fn progress(&mut self, msg: &str) {
        self.emit(EventBuilder::new("progress").str("msg", msg));
    }

    /// Emits a warning. Warnings are always printed to stderr — even in
    /// `off` mode — because they signal misconfiguration; they enter the
    /// journal like any other event when a sink is active.
    ///
    /// Repeats are rate-limited: the same message warned again before
    /// the next sample-window boundary (the next [`series_point`],
    /// different warning, or [`flush`]) is counted, not re-printed — a
    /// lossy link retrying every step collapses to one `warn` event
    /// plus one summary event carrying the `repeats` count.
    ///
    /// [`series_point`]: Telemetry::series_point
    /// [`flush`]: Telemetry::flush
    pub fn warn(&mut self, msg: &str) {
        if let Some((pending, repeats)) = &mut self.pending_warn {
            if pending == msg {
                *repeats += 1;
                return;
            }
        }
        self.flush_pending_warn();
        eprintln!("[sl][warn] {msg}");
        self.emit(EventBuilder::new("warn").str("msg", msg));
        self.pending_warn = Some((msg.to_string(), 0));
    }

    /// Emits the collapsed repeat count for the pending warning, if any
    /// repeats accumulated since it was printed.
    fn flush_pending_warn(&mut self) {
        if let Some((msg, repeats)) = self.pending_warn.take() {
            if repeats > 0 {
                eprintln!("[sl][warn] {msg} (repeated {repeats} more times)");
                self.emit(
                    EventBuilder::new("warn.repeated")
                        .str("msg", &msg)
                        .u64("repeats", repeats),
                );
            }
        }
    }

    /// Flushes the event sink (and any pending rate-limited warning).
    pub fn flush(&mut self) {
        self.flush_pending_warn();
        self.sink.flush();
    }
}

/// A per-scope metrics namespace handed out by [`Telemetry::scoped`]:
/// plain owned data (no sink, no clock), so a server can keep one per
/// session and fold them into the parent in a fixed order afterwards.
#[derive(Debug, Clone)]
pub struct ScopedMetrics {
    prefix: String,
    enabled: bool,
    registry: MetricsRegistry,
}

impl ScopedMetrics {
    /// The scope's namespace prefix (e.g. `net.session.3`).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Increments counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.registry.add(name, n);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.gauge_set(name, v);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.registry.observe(name, v);
        }
    }

    /// Merges a standalone histogram into histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if self.enabled {
            self.registry.merge_histogram(name, h);
        }
    }

    /// Read access to the scope's (bare-named) metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("mode", &self.mode)
            .field("events_path", &self.events_path)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        tele.inc("c");
        tele.add("c", 5);
        tele.gauge_set("g", 1.0);
        tele.gauge_add("g", 1.0);
        tele.observe("h", 2.0);
        tele.emit(EventBuilder::new("e"));
        assert!(tele.registry().is_empty());
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn enabled_records_metrics_and_events() {
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        tele.inc("steps");
        tele.observe("loss", 1.5);
        tele.gauge_set("rate", 0.5);
        tele.progress("working");
        tele.emit(EventBuilder::new("epoch").u64("epoch", 1));
        let s = tele.snapshot();
        assert_eq!(s.counter("steps"), 1);
        assert_eq!(s.gauge("rate"), Some(0.5));
        let evs = events.borrow();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "progress");
        assert_eq!(evs[0].message(), Some("working"));
        assert_eq!(evs[1].kind, "epoch");
        assert!(evs[1].t_host_s >= evs[0].t_host_s);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(TelemetryMode::parse("off"), Some(TelemetryMode::Off));
        assert_eq!(
            TelemetryMode::parse("summary"),
            Some(TelemetryMode::Summary)
        );
        assert_eq!(TelemetryMode::parse("jsonl"), Some(TelemetryMode::Jsonl));
        assert_eq!(TelemetryMode::parse("verbose"), None);
        assert_eq!(TelemetryMode::parse("OFF"), None);
    }

    #[test]
    fn from_settings_selects_modes() {
        let dir = std::env::temp_dir().join("sl_telemetry_test_settings");
        let t = Telemetry::from_settings(None, &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Summary);
        let t = Telemetry::from_settings(Some("off"), &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Off);
        // Unknown value falls back to summary (and warns, which we can't
        // capture here — the warn path is covered via MemorySink tests).
        let t = Telemetry::from_settings(Some("bogus"), &dir, "s");
        assert_eq!(t.mode(), TelemetryMode::Summary);
        // jsonl creates the journal file under the directory.
        let t = Telemetry::from_settings(Some("jsonl"), &dir, "stream");
        assert_eq!(t.mode(), TelemetryMode::Jsonl);
        let path = t.events_path().unwrap().to_path_buf();
        assert!(path.ends_with("stream.jsonl"));
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sample_every_parsing() {
        assert_eq!(parse_sample_every(None), Ok(DEFAULT_SAMPLE_EVERY));
        assert_eq!(parse_sample_every(Some("1")), Ok(1));
        assert_eq!(parse_sample_every(Some("64")), Ok(64));
        assert_eq!(parse_sample_every(Some("0")), Err("0".to_string()));
        assert_eq!(parse_sample_every(Some("-3")), Err("-3".to_string()));
        assert_eq!(parse_sample_every(Some("fast")), Err("fast".to_string()));
    }

    #[test]
    fn sampling_cadence_is_step_keyed() {
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        tele.set_sample_every(4);
        let sampled: Vec<u64> = (1..=10).filter(|&s| tele.should_sample(s)).collect();
        assert_eq!(sampled, vec![4, 8]);
        tele.set_sample_every(0); // clamps to 1: every step
        assert!((1..=10).all(|s| tele.should_sample(s)));
        // Disabled handles never sample and record no points.
        let mut off = Telemetry::disabled();
        assert!(!off.should_sample(4));
        off.series_point("train.loss", 0.5, 3.5);
        assert!(off.series().is_empty());
    }

    #[test]
    fn series_points_are_recorded_in_sim_time() {
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Summary, Box::new(sink));
        tele.series_point("train.loss", 0.125, 3.5);
        tele.series_point("train.loss", 0.25, 3.25);
        let s = tele.series().get("train.loss").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((0.25, 3.25)));
    }

    #[test]
    fn scoped_registries_absorb_per_session_and_aggregate() {
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Summary, Box::new(sink));
        // Fixed merge order: ascending session id.
        for (id, steps, ema) in [(0u64, 10u64, 2.5f64), (1, 4, 3.5)] {
            let mut scope = tele.scoped(&format!("net.session.{id}"));
            scope.add("steps", steps);
            scope.gauge_set("loss_ema", ema);
            scope.observe("latency", 0.5);
            tele.absorb(&scope, Some("net.fleet"));
        }
        let s = tele.snapshot();
        assert_eq!(s.counter("net.session.0.steps"), 10);
        assert_eq!(s.counter("net.session.1.steps"), 4);
        assert_eq!(s.counter("net.fleet.steps"), 14); // counters sum
        assert_eq!(s.gauge("net.fleet.loss_ema"), Some(3.5)); // last write
        assert_eq!(s.histograms["net.fleet.latency"].count(), 2); // merge
    }

    #[test]
    fn scoped_registry_is_inert_when_disabled() {
        let mut tele = Telemetry::disabled();
        let mut scope = tele.scoped("net.session.0");
        scope.inc("steps");
        scope.gauge_set("loss_ema", 1.0);
        assert!(scope.registry().is_empty());
        tele.absorb(&scope, Some("net.fleet"));
        assert!(tele.snapshot().is_empty());
    }

    #[test]
    fn repeated_warns_collapse_to_one_event_with_repeats() {
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        tele.warn("retry storm");
        tele.warn("retry storm");
        tele.warn("retry storm");
        // Window boundary: a series sample flushes the repeats.
        tele.series_point("train.loss", 0.5, 3.5);
        tele.warn("something else");
        tele.flush();
        let evs = events.borrow();
        let kinds: Vec<&str> = evs.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["warn", "warn.repeated", "warn"]);
        assert_eq!(evs[0].message(), Some("retry storm"));
        assert_eq!(evs[1].message(), Some("retry storm"));
        assert_eq!(evs[2].message(), Some("something else"));
    }

    #[test]
    fn single_warns_never_gain_a_repeat_event() {
        let (sink, events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        tele.warn("a");
        tele.warn("b"); // different message flushes "a" with 0 repeats
        tele.flush();
        let evs = events.borrow();
        let kinds: Vec<&str> = evs.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["warn", "warn"]);
    }

    #[test]
    fn jsonl_journal_round_trip() {
        let dir = std::env::temp_dir().join("sl_telemetry_test_roundtrip");
        let mut tele = Telemetry::from_settings(Some("jsonl"), &dir, "run");
        tele.progress("phase 1");
        tele.emit(EventBuilder::new("epoch").u64("epoch", 2).f64("rmse", 3.5));
        tele.flush();
        let text = std::fs::read_to_string(tele.events_path().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"progress\""));
        assert!(lines[0].contains("\"msg\":\"phase 1\""));
        assert!(lines[1].contains("\"epoch\":2"));
        assert!(lines[1].contains("\"rmse\":3.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
