//! Scope timers for host wall-clock and simulated time.
//!
//! Two clocks matter in this workspace: the **host** clock (how long the
//! process actually takes) and the **simulated** clock (`sl-core`'s
//! modelled compute seconds plus slot-accurate airtime — Fig. 3a's
//! x-axis). [`Stopwatch`] scopes the former; [`SimSpan`] scopes the
//! latter by bracketing the caller's compute/airtime totals, so any
//! crate can bridge its own simulated clock into the metrics registry
//! without `sl-telemetry` depending on it.

use std::time::Instant;

use crate::Telemetry;

/// Measures host wall-clock time for a scope.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since start.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed seconds into histogram `{name}.host_s` and
    /// returns them.
    pub fn observe(&self, tele: &mut Telemetry, name: &str) -> f64 {
        let s = self.elapsed_s();
        tele.observe(&format!("{name}.host_s"), s);
        s
    }
}

/// Brackets a span of *simulated* time, split by cause.
///
/// Capture the simulated clock's compute/airtime totals at scope entry;
/// at exit, pass the new totals and the deltas are recorded into the
/// histograms `{name}.compute_s` and `{name}.airtime_s`.
#[derive(Debug, Clone, Copy)]
pub struct SimSpan {
    compute0_s: f64,
    airtime0_s: f64,
}

impl SimSpan {
    /// Opens a span at the given simulated-clock totals.
    pub fn begin(compute_s: f64, airtime_s: f64) -> Self {
        SimSpan {
            compute0_s: compute_s,
            airtime0_s: airtime_s,
        }
    }

    /// Closes the span at the given totals, recording both deltas.
    /// Returns `(compute_delta_s, airtime_delta_s)`.
    pub fn observe(
        &self,
        tele: &mut Telemetry,
        name: &str,
        compute_s: f64,
        airtime_s: f64,
    ) -> (f64, f64) {
        let dc = compute_s - self.compute0_s;
        let da = airtime_s - self.airtime0_s;
        assert!(
            dc >= 0.0 && da >= 0.0,
            "SimSpan: simulated clock ran backwards ({dc}, {da})"
        );
        tele.observe(&format!("{name}.compute_s"), dc);
        tele.observe(&format!("{name}.airtime_s"), da);
        (dc, da)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let mut tele = Telemetry::summary();
        let sw = Stopwatch::start();
        let s = sw.observe(&mut tele, "scope");
        assert!(s >= 0.0);
        let h = tele.registry().histogram("scope.host_s").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() >= 0.0);
    }

    #[test]
    fn sim_span_records_deltas() {
        let mut tele = Telemetry::summary();
        let span = SimSpan::begin(1.0, 0.5);
        let (dc, da) = span.observe(&mut tele, "step", 1.25, 0.75);
        assert!((dc - 0.25).abs() < 1e-12);
        assert!((da - 0.25).abs() < 1e-12);
        let hc = tele.registry().histogram("step.compute_s").unwrap();
        assert!((hc.sum() - 0.25).abs() < 1e-12);
        let ha = tele.registry().histogram("step.airtime_s").unwrap();
        assert!((ha.sum() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ran backwards")]
    fn sim_span_rejects_backwards_clock() {
        let mut tele = Telemetry::summary();
        SimSpan::begin(1.0, 0.0).observe(&mut tele, "x", 0.5, 0.0);
    }
}
