//! Gated recurrent unit with full backpropagation through time.
//!
//! The paper specifies only "recurrent NN layers" at the BS; the default
//! implementation is [`crate::Lstm`], and this GRU exists for the
//! cell-type ablation (`sl-bench --bin ablation`). Gate layout along the
//! `3H` axis is `[reset, update, candidate]`; the `[N, in]·[3H, in]ᵀ`
//! gate matmuls (and their BPTT transposed variants) run on `sl-tensor`'s
//! pooled GEMM backend.

use rand::Rng;

use sl_tensor::{matmul, matmul_a_bt, matmul_at_b, xavier_uniform, Tensor};

use crate::activation::sigmoid;
use crate::Layer;

/// Cached values for one time step of BPTT.
struct StepCache {
    x: Tensor,      // [N, X]
    h_prev: Tensor, // [N, H]
    r: Tensor,      // [N, H] reset gate
    z: Tensor,      // [N, H] update gate
    n: Tensor,      // [N, H] candidate (post-tanh)
    hh_n: Tensor,   // [N, H] the recurrent pre-activation term W_hn·h + b_hn
}

/// A GRU over `[N, L, X]` sequences returning the final hidden state
/// `[N, H]`.
///
/// Uses the standard (PyTorch-convention) formulation:
/// `r = σ(W_ir x + W_hr h + b_r)`, `z = σ(W_iz x + W_hz h + b_z)`,
/// `n = tanh(W_in x + b_in + r ⊙ (W_hn h + b_hn))`,
/// `h' = (1 − z) ⊙ n + z ⊙ h`.
pub struct Gru {
    input_dim: usize,
    hidden_dim: usize,
    /// Input-to-gates weights `[3H, X]` (`[r, z, n]` blocks).
    w_x: Tensor,
    /// Hidden-to-gates weights `[3H, H]`.
    w_h: Tensor,
    /// Input-side biases `[3H]`.
    bias_x: Tensor,
    /// Hidden-side biases `[3H]` (kept separate so the candidate's
    /// recurrent term can be gated by `r` exactly as in the standard
    /// formulation).
    bias_h: Tensor,
    grad_w_x: Tensor,
    grad_w_h: Tensor,
    grad_bias_x: Tensor,
    grad_bias_h: Tensor,
    cache: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU with `input_dim` features per step and `hidden_dim`
    /// units, Xavier-initialized from `rng`.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0,
            "Gru: dimensions must be positive"
        );
        let h3 = 3 * hidden_dim;
        Gru {
            input_dim,
            hidden_dim,
            w_x: xavier_uniform([h3, input_dim], input_dim, hidden_dim, rng),
            w_h: xavier_uniform([h3, hidden_dim], hidden_dim, hidden_dim, rng),
            bias_x: Tensor::zeros([h3]),
            bias_h: Tensor::zeros([h3]),
            grad_w_x: Tensor::zeros([h3, input_dim]),
            grad_w_h: Tensor::zeros([h3, hidden_dim]),
            grad_bias_x: Tensor::zeros([h3]),
            grad_bias_h: Tensor::zeros([h3]),
            cache: Vec::new(),
        }
    }

    /// Features per time step.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden units.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize) {
        assert_eq!(
            input.shape().rank(),
            3,
            "Gru: input {} is not rank-3 [batch, steps, features]",
            input.shape()
        );
        assert_eq!(
            input.dims()[2],
            self.input_dim,
            "Gru: input features {} do not match input_dim {}",
            input.dims()[2],
            self.input_dim
        );
        (input.dims()[0], input.dims()[1])
    }

    fn step_input(input: &Tensor, t: usize) -> Tensor {
        let (n, l, x) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let mut out = Vec::with_capacity(n * x);
        for b in 0..n {
            let base = (b * l + t) * x;
            out.extend_from_slice(&input.data()[base..base + x]);
        }
        Tensor::from_parts([n, x], out)
    }

    /// Slices gate block `g` (0 = r, 1 = z, 2 = n) out of a `[N, 3H]`
    /// pre-activation.
    fn block(&self, zpre: &Tensor, g: usize) -> Tensor {
        let n = zpre.dims()[0];
        let h = self.hidden_dim;
        Tensor::from_fn([n, h], |i| {
            let (b, j) = (i / h, i % h);
            zpre.at(&[b, g * h + j])
        })
    }
}

impl Layer for Gru {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, l) = self.check_input(input);
        assert!(l > 0, "Gru: empty sequence");
        self.cache.clear();
        let mut h = Tensor::zeros([n, self.hidden_dim]);
        for t in 0..l {
            let x = Self::step_input(input, t);
            // Pre-activations from both sides, kept separate.
            let xz = matmul_a_bt(&x, &self.w_x).add(&self.bias_x); // [N, 3H]
            let hz = matmul_a_bt(&h, &self.w_h).add(&self.bias_h); // [N, 3H]
            let r = self.block(&xz, 0).add(&self.block(&hz, 0)).map(sigmoid);
            let z = self.block(&xz, 1).add(&self.block(&hz, 1)).map(sigmoid);
            let hh_n = self.block(&hz, 2);
            let cand = self.block(&xz, 2).add(&r.mul(&hh_n)).map(f32::tanh);
            let h_new = z.mul(&h).add(&z.map(|v| 1.0 - v).mul(&cand));
            self.cache.push(StepCache {
                x,
                h_prev: h,
                r,
                z,
                n: cand,
                hh_n,
            });
            h = h_new;
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cache.is_empty(),
            "Gru::backward called without a preceding forward"
        );
        let l = self.cache.len();
        let n = self.cache[0].x.dims()[0];
        let h_dim = self.hidden_dim;
        assert_eq!(
            grad_out.dims(),
            &[n, h_dim],
            "Gru::backward: grad shape {} does not match final hidden",
            grad_out.shape()
        );

        let mut dh = grad_out.clone();
        let mut grad_input = Tensor::zeros([n, l, self.input_dim]);

        for (t, step) in std::mem::take(&mut self.cache)
            .into_iter()
            .enumerate()
            .rev()
        {
            // h' = z ⊙ h_prev + (1 − z) ⊙ n
            let dz = dh.mul(&step.h_prev.sub(&step.n));
            let dn = dh.mul(&step.z.map(|v| 1.0 - v));
            let mut dh_prev = dh.mul(&step.z);
            // n = tanh(xn + r ⊙ hh_n)
            let dn_pre = dn.mul(&step.n.map(|v| 1.0 - v * v));
            let dr = dn_pre.mul(&step.hh_n);
            let d_hh_n = dn_pre.mul(&step.r);
            // Gate sigmoids.
            let dr_pre = dr.mul(&step.r.map(|v| v * (1.0 - v)));
            let dz_pre = dz.mul(&step.z.map(|v| v * (1.0 - v)));
            // Pack [N, 3H] gradients for the x-side and h-side
            // pre-activations. x-side: [dr_pre, dz_pre, dn_pre];
            // h-side: [dr_pre, dz_pre, d_hh_n].
            let mut gx_pre = Tensor::zeros([n, 3 * h_dim]);
            let mut gh_pre = Tensor::zeros([n, 3 * h_dim]);
            for b in 0..n {
                let dst_x = &mut gx_pre.data_mut()[b * 3 * h_dim..(b + 1) * 3 * h_dim];
                dst_x[..h_dim].copy_from_slice(&dr_pre.data()[b * h_dim..(b + 1) * h_dim]);
                dst_x[h_dim..2 * h_dim].copy_from_slice(&dz_pre.data()[b * h_dim..(b + 1) * h_dim]);
                dst_x[2 * h_dim..].copy_from_slice(&dn_pre.data()[b * h_dim..(b + 1) * h_dim]);
                let dst_h = &mut gh_pre.data_mut()[b * 3 * h_dim..(b + 1) * 3 * h_dim];
                dst_h[..h_dim].copy_from_slice(&dr_pre.data()[b * h_dim..(b + 1) * h_dim]);
                dst_h[h_dim..2 * h_dim].copy_from_slice(&dz_pre.data()[b * h_dim..(b + 1) * h_dim]);
                dst_h[2 * h_dim..].copy_from_slice(&d_hh_n.data()[b * h_dim..(b + 1) * h_dim]);
            }
            // Parameter gradients.
            self.grad_w_x.add_inplace(&matmul_at_b(&gx_pre, &step.x));
            self.grad_w_h
                .add_inplace(&matmul_at_b(&gh_pre, &step.h_prev));
            self.grad_bias_x.add_inplace(&gx_pre.sum_axis0());
            self.grad_bias_h.add_inplace(&gh_pre.sum_axis0());
            // Flow to x_t and h_{t-1}.
            let dx = matmul(&gx_pre, &self.w_x);
            for b in 0..n {
                let base = (b * l + t) * self.input_dim;
                grad_input.data_mut()[base..base + self.input_dim]
                    .copy_from_slice(&dx.data()[b * self.input_dim..(b + 1) * self.input_dim]);
            }
            dh_prev.add_inplace(&matmul(&gh_pre, &self.w_h));
            dh = dh_prev;
        }
        grad_input
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.w_x, &mut self.grad_w_x),
            (&mut self.w_h, &mut self.grad_w_h),
            (&mut self.bias_x, &mut self.grad_bias_x),
            (&mut self.bias_h, &mut self.grad_bias_h),
        ]
    }

    fn name(&self) -> &'static str {
        "gru"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        recurrent_out_shape("gru", input, self.input_dim, self.hidden_dim)
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        if input_dims.len() != 3 {
            return 0.0;
        }
        let (n, l) = (input_dims[0], input_dims[1]);
        let (f, h) = (self.input_dim, self.hidden_dim);
        // Per step: three gate blocks of H units over [x; h] MACs, plus
        // ~12 elementwise ops per unit for the gate/candidate updates.
        let per_step = 2.0 * (3 * h * (f + h)) as f64 + 12.0 * h as f64;
        (n * l) as f64 * per_step
    }
}

/// Shared recurrent-layer shape contract: `[N, L, X] -> [N, H]` with a
/// non-empty sequence and per-step features matching `input_dim`.
pub(crate) fn recurrent_out_shape(
    layer: &str,
    input: &[usize],
    input_dim: usize,
    hidden_dim: usize,
) -> Result<Vec<usize>, String> {
    if input.len() != 3 {
        return Err(format!(
            "{layer} expects rank-3 [batch, steps, features], got rank-{}",
            input.len()
        ));
    }
    if input[1] == 0 {
        return Err(format!("{layer} rejects an empty sequence"));
    }
    if input[2] != input_dim {
        return Err(format!(
            "input features {} do not match {layer} input_dim {input_dim}",
            input[2]
        ));
    }
    Ok(vec![input[0], hidden_dim])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_final_hidden() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(3, 5, &mut rng);
        let out = gru.forward(&Tensor::zeros([2, 4, 3]));
        assert_eq!(out.dims(), &[2, 5]);
        assert_eq!(gru.input_dim(), 3);
        assert_eq!(gru.hidden_dim(), 5);
    }

    #[test]
    fn hidden_state_bounded() {
        // h is a convex combination of tanh values ⇒ |h| ≤ 1.
        let mut rng = StdRng::seed_from_u64(2);
        let mut gru = Gru::new(4, 6, &mut rng);
        let x = sl_tensor::randn([3, 10, 4], 0.0, 5.0, &mut rng);
        let out = gru.forward(&x);
        assert!(out.max() <= 1.0 && out.min() >= -1.0);
        assert!(out.all_finite());
    }

    #[test]
    fn zero_input_zero_state_stays_zero_biasless() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(2, 3, &mut rng);
        // With zero input and zero initial state, n = tanh(0) = 0 and
        // h' = z·0 + (1−z)·0 = 0 regardless of weights (biases are 0).
        let out = gru.forward(&Tensor::zeros([1, 6, 2]));
        assert!(out.data().iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let gru = Gru::new(3, 4, &mut rng);
        let input = sl_tensor::randn([2, 3, 3], 0.0, 1.0, &mut rng);
        let report = check_gradients(gru, &input, 1e-2, 6);
        assert!(report.max_abs_err < 5e-2, "grad check failed: {report:?}");
    }

    #[test]
    fn memory_distinguishes_histories() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gru = Gru::new(1, 4, &mut rng);
        let a = Tensor::from_vec([1, 3, 1], vec![1.0, 1.0, 0.0]).unwrap();
        let b = Tensor::from_vec([1, 3, 1], vec![-1.0, -1.0, 0.0]).unwrap();
        let ha = gru.forward(&a);
        let hb = gru.forward(&b);
        assert!(ha.sub(&hb).norm() > 1e-4);
    }

    #[test]
    fn can_learn_last_element() {
        use crate::{mse_loss, Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(6);
        let mut gru = Gru::new(1, 8, &mut rng);
        let mut head = crate::Dense::new(8, 1, &mut rng);
        let mut opt = Adam::new(0.02, 0.9, 0.999, 1e-8);
        let x = sl_tensor::randn([32, 4, 1], 0.0, 1.0, &mut rng);
        let y = Tensor::from_fn([32, 1], |b| x.at(&[b, 3, 0]));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let h = gru.forward(&x);
            let pred = head.forward(&h);
            let l = mse_loss(&pred, &y);
            let gh = head.backward(&l.grad);
            gru.backward(&gh);
            let mut params = gru.params_and_grads();
            params.extend(head.params_and_grads());
            opt.step(&mut params);
            gru.zero_grads();
            head.zero_grads();
            first.get_or_insert(l.loss);
            last = l.loss;
        }
        assert!(last < first.unwrap() * 0.1, "{first:?} -> {last}");
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gru = Gru::new(2, 4, &mut rng);
        // 3H·X + 3H·H + 3H + 3H = 24 + 48 + 12 + 12.
        assert_eq!(gru.parameter_count(), 96);
    }
}
