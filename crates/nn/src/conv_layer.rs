//! Convolutional layer wrapping the `sl-tensor` conv kernels.

use rand::Rng;

use sl_tensor::{conv2d, conv2d_backward, he_normal, Padding, Tensor};

use crate::Layer;

/// Stride-1 2-D convolution layer (`NCHW`), He-initialized.
///
/// The UE-side network of the paper stacks two of these ('same' padding,
/// 3×3 kernels) so that the CNN output keeps the raw image's spatial size
/// before the average-pooling cut layer compresses it.
///
/// Both passes run on `sl-tensor`'s im2col + GEMM backend (one image per
/// pool job, bitwise thread-count independent); [`Layer::flops_forward`]
/// keeps counting the mathematical convolution FLOPs, which the im2col
/// lowering does not change.
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    padding: Padding,
    input_cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with `in_channels → out_channels` and a
    /// square `kernel × kernel` filter.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: Padding,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "Conv2d: dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: he_normal([out_channels, in_channels, kernel, kernel], fan_in, rng),
            bias: Tensor::zeros([out_channels]),
            grad_weight: Tensor::zeros([out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros([out_channels]),
            padding,
            input_cache: None,
        }
    }

    /// The padding policy.
    pub fn padding(&self) -> Padding {
        self.padding
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.weight.dims()[2]
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Tensor) -> Tensor {
        conv2d(input, &self.weight, &self.bias, self.padding)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = conv2d(input, &self.weight, &self.bias, self.padding);
        self.input_cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .take()
            .expect("Conv2d::backward called without a preceding forward");
        let grads = conv2d_backward(&input, &self.weight, grad_out, self.padding);
        self.grad_weight.add_inplace(&grads.grad_weight);
        self.grad_bias.add_inplace(&grads.grad_bias);
        grads.grad_input
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        if input.len() != 4 {
            return Err(format!(
                "conv2d expects rank-4 [N, C, H, W], got rank-{}",
                input.len()
            ));
        }
        let (n, c, h, w) = (input[0], input[1], input[2], input[3]);
        if c != self.in_channels() {
            return Err(format!(
                "input channels {} do not match layer in_channels {}",
                c,
                self.in_channels()
            ));
        }
        let k = self.kernel();
        let (oh, ow) = match self.padding {
            Padding::Same => (h, w),
            Padding::Valid => {
                if h < k || w < k {
                    return Err(format!(
                        "valid-padding {k}x{k} kernel does not fit {h}x{w} input"
                    ));
                }
                (h - k + 1, w - k + 1)
            }
        };
        Ok(vec![n, self.out_channels(), oh, ow])
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        if input_dims.len() != 4 {
            return 0.0;
        }
        let (n, h, w) = (input_dims[0], input_dims[2], input_dims[3]);
        let k = self.weight.dims()[2];
        let (oh, ow) = match self.padding {
            Padding::Same => (h, w),
            Padding::Valid => (h.saturating_sub(k - 1), w.saturating_sub(k - 1)),
        };
        // 2 FLOPs per MAC over every output position × filter tap.
        2.0 * (n * oh * ow) as f64 * (self.out_channels() * self.in_channels() * k * k) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_padding_preserves_spatial_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Conv2d::new(1, 4, 3, Padding::Same, &mut rng);
        let out = layer.forward(&Tensor::zeros([2, 1, 8, 8]));
        assert_eq!(out.dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Conv2d::new(3, 8, 3, Padding::Same, &mut rng);
        assert_eq!(layer.parameter_count(), 8 * 3 * 3 * 3 + 8);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Conv2d::new(2, 3, 3, Padding::Same, &mut rng);
        let input = sl_tensor::randn([1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let report = check_gradients(layer, &input, 1e-2, 6);
        assert!(report.max_abs_err < 8e-2, "grad check failed: {report:?}");
    }

    #[test]
    fn infer_equals_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Conv2d::new(1, 2, 3, Padding::Valid, &mut rng);
        let x = sl_tensor::randn([1, 1, 6, 6], 0.0, 1.0, &mut rng);
        assert_eq!(layer.infer(&x), layer.forward(&x));
    }
}
