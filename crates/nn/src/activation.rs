//! Elementwise activation functions as stateless layers.

use sl_tensor::Tensor;

use crate::Layer;

/// The activation nonlinearity to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// `max(0, x)` — used by the UE CNN's hidden convolution.
    Relu,
    /// `1 / (1 + e^-x)` — squashes the CNN output into `[0, 1]` so it can
    /// be quantized to `R`-bit pixels for the uplink payload.
    Sigmoid,
    /// `tanh(x)`.
    Tanh,
    /// The identity (useful for disabling a nonlinearity in ablations).
    Identity,
}

impl ActivationKind {
    /// Applies the function to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Sigmoid => sigmoid(x),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// All four supported activations admit this form, which lets the
    /// backward pass cache only the forward output.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Sigmoid => y * (1.0 - y),
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Identity => 1.0,
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A stateless activation layer (any shape; applied elementwise).
pub struct Activation {
    kind: ActivationKind,
    /// Forward output, cached for the output-space derivative; a
    /// zero-element tensor between passes.
    cache: Tensor,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cache: Tensor::from_slice(&[]),
        }
    }

    /// Shorthand for `Activation::new(ActivationKind::Relu)`.
    pub fn relu() -> Self {
        Activation::new(ActivationKind::Relu)
    }

    /// Shorthand for `Activation::new(ActivationKind::Sigmoid)`.
    pub fn sigmoid() -> Self {
        Activation::new(ActivationKind::Sigmoid)
    }

    /// Shorthand for `Activation::new(ActivationKind::Tanh)`.
    pub fn tanh() -> Self {
        Activation::new(ActivationKind::Tanh)
    }

    /// The configured nonlinearity.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|x| self.kind.apply(x));
        self.cache = out.clone();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            self.cache.numel() > 0,
            "Activation::backward called without a preceding forward"
        );
        let out = std::mem::replace(&mut self.cache, Tensor::from_slice(&[]));
        assert_eq!(
            grad_out.shape(),
            out.shape(),
            "Activation::backward: grad shape {} does not match output {}",
            grad_out.shape(),
            out.shape()
        );
        grad_out.zip(&out, |g, y| g * self.kind.derivative_from_output(y))
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Identity => "identity",
        }
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        Ok(input.to_vec())
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        let numel = input_dims.iter().product::<usize>() as f64;
        // Transcendental activations are charged a nominal 4 FLOPs per
        // element, cheap elementwise ops 1.
        match self.kind {
            ActivationKind::Sigmoid | ActivationKind::Tanh => 4.0 * numel,
            ActivationKind::Relu => numel,
            ActivationKind::Identity => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut layer = Activation::relu();
        let out = layer.forward(&Tensor::from_slice(&[-2.0, -0.5, 0.0, 0.5, 2.0]));
        assert_eq!(out.data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
        // Stable in the extreme tails (no NaN from exp overflow).
        assert!(sigmoid(-1e4).is_finite() && sigmoid(1e4).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
            ActivationKind::Identity,
        ] {
            for &x in &[-1.7f32, -0.3, 0.4, 1.9] {
                let fd = (kind.apply(x + eps) - kind.apply(x - eps)) / (2.0 * eps);
                let an = kind.derivative_from_output(kind.apply(x));
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{kind:?} derivative mismatch at {x}: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn backward_scales_upstream_gradient() {
        let mut layer = Activation::tanh();
        let x = Tensor::from_slice(&[0.3, -0.8]);
        let y = layer.forward(&x);
        let g = layer.backward(&Tensor::ones([2]));
        for i in 0..2 {
            let expect = 1.0 - y.data()[i] * y.data()[i];
            assert!((g.data()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "without a preceding forward")]
    fn backward_requires_forward() {
        Activation::relu().backward(&Tensor::ones([1]));
    }

    #[test]
    fn stateless_layer_has_no_params() {
        let mut layer = Activation::sigmoid();
        assert!(layer.params_and_grads().is_empty());
        assert_eq!(layer.parameter_count(), 0);
    }
}
