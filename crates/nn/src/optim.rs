//! Optimizers: SGD (with momentum) and Adam.
//!
//! The paper trains with Adam at learning rate `0.001` and decay rates
//! `β₁ = 0.9`, `β₂ = 0.999` ([`Adam::paper`]); plain SGD is kept for
//! ablations. Optimizer state is keyed positionally: callers must present
//! the same `(param, grad)` list, in the same order, on every step — the
//! [`Layer::params_and_grads`](crate::Layer::params_and_grads) contract
//! guarantees exactly that.

use sl_tensor::Tensor;

/// A first-order optimizer updating parameters in place from gradients.
pub trait Optimizer {
    /// Applies one update step. `params` pairs each parameter tensor with
    /// its accumulated gradient; gradients are *not* cleared (callers
    /// zero them between steps).
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum ∈ [0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0, 1)"
        );
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.dims()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "Sgd: parameter list changed length between steps"
        );
        for ((param, grad), vel) in params.iter_mut().zip(&mut self.velocity) {
            for ((p, &g), v) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(vel.data_mut())
            {
                *v = self.momentum * *v + g;
                *p -= self.lr * *v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba, 2015) with bias-corrected moment estimates.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        assert!(eps > 0.0);
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// The paper's optimizer: `lr = 0.001`, `β₁ = 0.9`, `β₂ = 0.999`.
    pub fn paper() -> Self {
        Adam::new(1e-3, 0.9, 0.999, 1e-8)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Exports the optimizer state for checkpointing: the step count and
    /// the flattened first/second moment vectors (empty before the first
    /// step, when the moments are not yet materialised).
    pub fn export_state(&self) -> (u64, Vec<f32>, Vec<f32>) {
        let flatten = |moments: &[Tensor]| -> Vec<f32> {
            moments
                .iter()
                .flat_map(|t| t.data().iter().copied())
                .collect()
        };
        (
            self.t,
            flatten(&self.first_moment),
            flatten(&self.second_moment),
        )
    }

    /// Restores state captured by [`Adam::export_state`]. `param_dims`
    /// must be the parameter shapes the optimizer will step over, in
    /// order — the moment vectors are split back along them. Empty
    /// moment vectors restore the pre-first-step state.
    pub fn restore_state(
        &mut self,
        t: u64,
        first: &[f32],
        second: &[f32],
        param_dims: &[Vec<usize>],
    ) -> Result<(), String> {
        self.t = t;
        if first.is_empty() && second.is_empty() {
            self.first_moment = Vec::new();
            self.second_moment = Vec::new();
            return Ok(());
        }
        let total: usize = param_dims.iter().map(|d| d.iter().product::<usize>()).sum();
        if first.len() != total || second.len() != total {
            return Err(format!(
                "Adam: moment vectors of {} / {} values do not match {total} parameter values",
                first.len(),
                second.len()
            ));
        }
        let split = |flat: &[f32]| -> Vec<Tensor> {
            let mut at = 0usize;
            param_dims
                .iter()
                .map(|dims| {
                    let n: usize = dims.iter().product();
                    let t = Tensor::from_parts(dims.as_slice(), flat[at..at + n].to_vec());
                    at += n;
                    t
                })
                .collect()
        };
        self.first_moment = split(first);
        self.second_moment = split(second);
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [(&mut Tensor, &mut Tensor)]) {
        if self.first_moment.is_empty() {
            self.first_moment = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.dims()))
                .collect();
            self.second_moment = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.dims()))
                .collect();
        }
        assert_eq!(
            self.first_moment.len(),
            params.len(),
            "Adam: parameter list changed length between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, (param, grad)) in params.iter_mut().enumerate() {
            let m = &mut self.first_moment[k];
            let v = &mut self.second_moment[k];
            for (((p, &g), m), v) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Scales all gradients so their global L2 norm does not exceed
/// `max_norm`; returns the pre-clip norm. A standard guard for the LSTM's
/// exploding-gradient failure mode.
pub fn clip_global_norm(grads: &mut [&mut Tensor], max_norm: f32) -> f32 {
    assert!(
        max_norm > 0.0,
        "clip_global_norm: max_norm must be positive"
    );
    let total: f32 = grads.iter().map(|g| g.sum_sq()).sum::<f32>().sqrt();
    if total > max_norm && total.is_finite() {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.scale_inplace(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One (param, grad) pair convenience: minimise f(x) = x² from x = 5.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::from_slice(&[5.0]);
        let mut g = Tensor::zeros([1]);
        for _ in 0..steps {
            g.data_mut()[0] = 2.0 * x.data()[0];
            let mut pairs = [(&mut x, &mut g)];
            opt.step(&mut pairs);
        }
        x.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_descent(&mut opt, 100);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let slow = quadratic_descent(&mut Sgd::new(0.01), 40).abs();
        let fast = quadratic_descent(&mut Sgd::with_momentum(0.01, 0.9), 40).abs();
        assert!(fast < slow, "momentum {fast} not faster than plain {slow}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Adam's per-step movement is bounded by ≈ lr, so give it enough
        // steps to cover the distance from x = 5.
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8);
        let x = quadratic_descent(&mut opt, 1000);
        assert!(x.abs() < 1e-2, "x = {x}");
        assert_eq!(opt.steps(), 1000);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        for g0 in [1e-4f32, 1.0, 1e4] {
            let mut opt = Adam::new(0.5, 0.9, 0.999, 1e-8);
            let mut x = Tensor::from_slice(&[0.0]);
            let mut g = Tensor::from_slice(&[g0]);
            let mut pairs = [(&mut x, &mut g)];
            opt.step(&mut pairs);
            assert!(
                (x.data()[0].abs() - 0.5).abs() < 1e-3,
                "first step {} for gradient {g0}",
                x.data()[0]
            );
        }
    }

    #[test]
    fn adam_state_round_trip_resumes_bitwise() {
        // Step A 6 times; step B 3 times, checkpoint, restore into a
        // fresh optimizer, step both 3 more — trajectories must match
        // bitwise.
        let descend = |opt: &mut Adam, x: &mut Tensor, steps: usize| {
            let mut g = Tensor::zeros([2]);
            for _ in 0..steps {
                g.data_mut()[0] = 2.0 * x.data()[0];
                g.data_mut()[1] = 4.0 * x.data()[1];
                let mut pairs = [(&mut *x, &mut g)];
                opt.step(&mut pairs);
            }
        };
        let mut full = Adam::paper();
        let mut x_full = Tensor::from_slice(&[5.0, -3.0]);
        descend(&mut full, &mut x_full, 6);

        let mut first = Adam::paper();
        let mut x = Tensor::from_slice(&[5.0, -3.0]);
        descend(&mut first, &mut x, 3);
        let (t, m, v) = first.export_state();
        assert_eq!(t, 3);
        let mut resumed = Adam::paper();
        resumed.restore_state(t, &m, &v, &[vec![2usize]]).unwrap();
        descend(&mut resumed, &mut x, 3);
        assert_eq!(x.data()[0].to_bits(), x_full.data()[0].to_bits());
        assert_eq!(x.data()[1].to_bits(), x_full.data()[1].to_bits());

        // Pre-first-step state restores to lazily-initialised moments.
        let (t0, m0, v0) = Adam::paper().export_state();
        assert_eq!((t0, m0.len(), v0.len()), (0, 0, 0));
        // Mismatched sizes are a typed error.
        assert!(resumed.restore_state(1, &m, &v, &[vec![3usize]]).is_err());
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut a = Tensor::from_slice(&[0.3, 0.4]); // norm 0.5
        let before = a.clone();
        let norm = clip_global_norm(&mut [&mut a], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(a, before);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut a = Tensor::from_slice(&[3.0, 4.0]); // norm 5
        let mut b = Tensor::from_slice(&[0.0, 0.0]);
        let norm = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.norm() - 1.0).abs() < 1e-6);
    }
}
