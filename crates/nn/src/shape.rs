//! Static shape contracts.
//!
//! Every [`crate::Layer`] can describe the output shape it would produce
//! for a given input shape *without* running (or allocating) anything —
//! the [`crate::Layer::out_shape`] method. [`Sequential`] chains the
//! contracts into a per-layer [`ShapeTrace`], and a mismatch anywhere in
//! the stack surfaces as a [`ShapeError`] carrying the trace of every
//! layer that *did* check out, so a miswired split network is rejected
//! with a readable report before any tensor is touched.
//!
//! This is the pre-run counterpart of `sl-tensor`'s panic-on-mismatch
//! runtime contract: `slm-lint --shapes` and the per-profile unit tests
//! in `sl-core` run these contracts over every experiment configuration
//! so a bad `w_H × w_W` / BS-input-dim combination fails the gate, not
//! the training run.

use std::fmt;

/// Renders a shape as `[a, b, c]`.
pub fn format_dims(dims: &[usize]) -> String {
    let inner: Vec<String> = dims.iter().map(usize::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// One layer's entry in a propagated shape trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeStep {
    /// Layer index within its container.
    pub index: usize,
    /// Layer display name.
    pub layer: &'static str,
    /// Input shape fed to the layer.
    pub input: Vec<usize>,
    /// Output shape the layer's contract produced.
    pub output: Vec<usize>,
}

impl fmt::Display for ShapeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<2} {:<12} {} -> {}",
            self.index,
            self.layer,
            format_dims(&self.input),
            format_dims(&self.output)
        )
    }
}

/// A successful symbolic pass through a layer stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeTrace {
    /// Per-layer input/output shapes, in forward order.
    pub steps: Vec<ShapeStep>,
    /// The stack's final output shape.
    pub output: Vec<usize>,
}

impl fmt::Display for ShapeTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "  {step}")?;
        }
        write!(f, "  => {}", format_dims(&self.output))
    }
}

/// A shape-contract violation, with the trace of every layer that
/// checked out before the offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Index of the offending layer.
    pub index: usize,
    /// Offending layer's display name.
    pub layer: &'static str,
    /// The input shape it rejected.
    pub input: Vec<usize>,
    /// Why the contract rejected it.
    pub message: String,
    /// The successful prefix of the trace.
    pub steps: Vec<ShapeStep>,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "  {step}")?;
        }
        write!(
            f,
            "  #{:<2} {:<12} {} -> SHAPE ERROR: {}",
            self.index,
            self.layer,
            format_dims(&self.input),
            self.message
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_per_layer_lines() {
        let trace = ShapeTrace {
            steps: vec![ShapeStep {
                index: 0,
                layer: "conv2d",
                input: vec![2, 1, 8, 8],
                output: vec![2, 4, 8, 8],
            }],
            output: vec![2, 4, 8, 8],
        };
        let s = trace.to_string();
        assert!(s.contains("#0  conv2d"), "{s}");
        assert!(s.contains("[2, 1, 8, 8] -> [2, 4, 8, 8]"), "{s}");
        assert!(s.ends_with("=> [2, 4, 8, 8]"), "{s}");
    }

    #[test]
    fn error_renders_prefix_then_offender() {
        let err = ShapeError {
            index: 1,
            layer: "dense",
            input: vec![2, 3],
            message: "input features 3 do not match input_dim 4".into(),
            steps: vec![ShapeStep {
                index: 0,
                layer: "flatten",
                input: vec![2, 3, 1, 1],
                output: vec![2, 3],
            }],
        };
        let s = err.to_string();
        assert!(s.contains("#0  flatten"), "{s}");
        assert!(s.contains("SHAPE ERROR: input features 3"), "{s}");
    }
}
