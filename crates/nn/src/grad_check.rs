//! Finite-difference gradient checking.
//!
//! Used throughout the test suite to validate every hand-derived backward
//! pass: the scalar probe loss is the plain sum of the layer outputs, so
//! the upstream gradient is a tensor of ones and the analytic gradients
//! can be compared coordinate-by-coordinate against central differences.

use sl_tensor::Tensor;

use crate::Layer;

/// Outcome of [`check_gradients`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute error over all checked coordinates.
    pub max_abs_err: f32,
    /// Number of coordinates compared (across input and all parameters).
    pub checked: usize,
}

/// Central-difference derivative of `f` at coordinate `flat` of `x`.
pub fn numerical_gradient(
    x: &Tensor,
    flat: usize,
    eps: f32,
    mut f: impl FnMut(&Tensor) -> f32,
) -> f32 {
    let mut p = x.clone();
    p.data_mut()[flat] += eps;
    let up = f(&p);
    p.data_mut()[flat] -= 2.0 * eps;
    let down = f(&p);
    (up - down) / (2.0 * eps)
}

/// Checks a layer's analytic gradients (input **and** parameters) against
/// central finite differences on the probe loss `L = Σ forward(x)`.
///
/// For each tensor (input and every parameter) up to `samples_per_tensor`
/// evenly-spaced coordinates are probed. Returns the worst absolute error
/// observed; callers assert against a tolerance appropriate for `f32`
/// arithmetic and the chosen `eps`.
pub fn check_gradients(
    mut layer: impl Layer,
    input: &Tensor,
    eps: f32,
    samples_per_tensor: usize,
) -> GradCheckReport {
    // Analytic pass.
    let out = layer.forward(input);
    let grad_input = layer.backward(&Tensor::ones(out.dims()));
    let param_grads: Vec<Tensor> = layer
        .params_and_grads()
        .iter()
        .map(|(_, g)| (**g).clone())
        .collect();

    let mut max_err = 0.0f32;
    let mut checked = 0usize;

    // Input coordinates.
    for flat in sample_indices(input.numel(), samples_per_tensor) {
        let fd = numerical_gradient(input, flat, eps, |x| layer.forward(x).sum());
        let err = (fd - grad_input.data()[flat]).abs();
        max_err = max_err.max(err);
        checked += 1;
    }

    // Parameter coordinates: perturb in place, rerun forward, restore.
    for (pi, expected) in param_grads.iter().enumerate() {
        let numel = layer.params_and_grads()[pi].0.numel();
        for flat in sample_indices(numel, samples_per_tensor) {
            let original = layer.params_and_grads()[pi].0.data()[flat];
            layer.params_and_grads()[pi].0.data_mut()[flat] = original + eps;
            let up = layer.forward(input).sum();
            layer.params_and_grads()[pi].0.data_mut()[flat] = original - eps;
            let down = layer.forward(input).sum();
            layer.params_and_grads()[pi].0.data_mut()[flat] = original;
            let fd = (up - down) / (2.0 * eps);
            let err = (fd - expected.data()[flat]).abs();
            max_err = max_err.max(err);
            checked += 1;
        }
    }

    GradCheckReport {
        max_abs_err: max_err,
        checked,
    }
}

/// Up to `count` evenly-spaced flat indices into a tensor of `numel`
/// elements (always includes 0 and the last element when possible).
fn sample_indices(numel: usize, count: usize) -> Vec<usize> {
    if numel == 0 || count == 0 {
        return Vec::new();
    }
    if numel <= count {
        return (0..numel).collect();
    }
    let mut idx: Vec<usize> = (0..count)
        .map(|i| i * (numel - 1) / (count - 1).max(1))
        .collect();
    idx.dedup();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_gradient_of_square() {
        let x = Tensor::from_slice(&[3.0]);
        let g = numerical_gradient(&x, 0, 1e-3, |t| t.data()[0] * t.data()[0]);
        assert!((g - 6.0).abs() < 1e-2);
    }

    #[test]
    fn sample_indices_cover_ends() {
        assert_eq!(sample_indices(3, 10), vec![0, 1, 2]);
        let s = sample_indices(100, 5);
        assert_eq!(s.first(), Some(&0));
        assert_eq!(s.last(), Some(&99));
        assert!(s.len() <= 5);
        assert_eq!(sample_indices(0, 5), Vec::<usize>::new());
        assert_eq!(sample_indices(5, 0), Vec::<usize>::new());
    }

    #[test]
    fn detects_correct_and_broken_gradients() {
        use crate::activation::Activation;
        let x = Tensor::from_slice(&[0.5, -0.25, 1.5]);
        let good = check_gradients(Activation::tanh(), &x, 1e-3, 8);
        assert!(good.max_abs_err < 1e-2);
        assert_eq!(good.checked, 3);

        /// A deliberately wrong layer: forward is x², backward claims the
        /// gradient is a constant 1.
        struct Broken {
            cache: Option<Tensor>,
        }
        impl Layer for Broken {
            fn forward(&mut self, input: &Tensor) -> Tensor {
                self.cache = Some(input.clone());
                input.map(|v| v * v)
            }
            fn backward(&mut self, grad_out: &Tensor) -> Tensor {
                Tensor::ones(grad_out.dims())
            }
            fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
                Vec::new()
            }
            fn name(&self) -> &'static str {
                "broken"
            }
            fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
                Ok(input.to_vec())
            }
        }
        let bad = check_gradients(Broken { cache: None }, &x, 1e-3, 8);
        assert!(bad.max_abs_err > 0.5, "broken layer not detected: {bad:?}");
    }
}
