//! Inverted dropout.
//!
//! A regularization option for the robustness ablations: the paper's
//! network is small enough not to need it on the full trace, but shorter
//! traces (fewer blockage events) overfit, and dropout on the BS-side
//! features measurably helps there.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sl_tensor::Tensor;

use crate::Layer;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference
/// (see [`Dropout::eval_mode`]) is the identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    training: bool,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)` and a
    /// dedicated RNG seed (layers own their noise so training stays
    /// deterministic regardless of call order elsewhere).
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "Dropout: p must be in [0, 1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            training: true,
            mask: None,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Switches to training mode (masking active).
    pub fn train_mode(&mut self) {
        self.training = true;
    }

    /// Switches to evaluation mode (identity).
    pub fn eval_mode(&mut self) {
        self.training = false;
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.training || self.p <= 0.0 {
            self.mask = Some(Tensor::ones(input.dims()));
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.dims(), |_| {
            if self.rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Dropout::backward called without a preceding forward");
        grad_out.mul(&mask)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        Ok(input.to_vec())
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        input_dims.iter().product::<usize>() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut layer = Dropout::new(0.5, 1);
        layer.eval_mode();
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(layer.forward(&x), x);
        let g = layer.backward(&Tensor::ones([3]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut layer = Dropout::new(0.0, 2);
        let x = Tensor::from_slice(&[4.0, 5.0]);
        assert_eq!(layer.forward(&x), x);
    }

    #[test]
    fn expected_value_preserved() {
        let mut layer = Dropout::new(0.3, 3);
        let x = Tensor::ones([50_000]);
        let y = layer.forward(&x);
        // Inverted dropout keeps E[y] = E[x].
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
        // Survivors are scaled by 1/keep.
        let survivors: Vec<f32> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        for v in &survivors {
            assert!((v - 1.0 / 0.7).abs() < 1e-5);
        }
        // Drop rate is near p.
        let dropped = 1.0 - survivors.len() as f32 / 50_000.0;
        assert!((dropped - 0.3).abs() < 0.02, "dropped {dropped}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut layer = Dropout::new(0.5, 4);
        let x = Tensor::ones([1000]);
        let y = layer.forward(&x);
        let g = layer.backward(&Tensor::ones([1000]));
        // Gradient flows exactly where the forward survived.
        for (gy, yy) in g.data().iter().zip(y.data()) {
            assert_eq!(gy == &0.0, yy == &0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut l = Dropout::new(0.5, seed);
            l.forward(&Tensor::ones([64]))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_certain_drop() {
        Dropout::new(1.0, 0);
    }
}
