//! Pooling and flattening layers.

use sl_tensor::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Tensor};

use crate::Layer;

/// Non-overlapping average pooling (`NCHW`) — the paper's cut-layer
/// compressor. `AvgPool2d::new(40, 40)` applied to the 40×40 CNN output
/// produces the one-pixel image of the paper's title.
pub struct AvgPool2d {
    wh: usize,
    ww: usize,
    /// Input dims of the pending forward; empty between passes.
    input_dims: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with window `wh × ww`.
    pub fn new(wh: usize, ww: usize) -> Self {
        assert!(wh > 0 && ww > 0, "AvgPool2d: window must be non-empty");
        AvgPool2d {
            wh,
            ww,
            input_dims: Vec::new(),
        }
    }

    /// The pooling window `(wh, ww)`.
    pub fn window(&self) -> (usize, usize) {
        (self.wh, self.ww)
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = avg_pool2d(input, self.wh, self.ww);
        self.input_dims = input.dims().to_vec();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "AvgPool2d::backward called without a preceding forward"
        );
        let dims = std::mem::take(&mut self.input_dims);
        avg_pool2d_backward(&dims, grad_out, self.wh, self.ww)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        pool_out_shape(input, self.wh, self.ww)
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        // One add per input element (plus a divide per window, dominated).
        input_dims.iter().product::<usize>() as f64
    }
}

/// Non-overlapping max pooling (`NCHW`) — the cut-layer alternative that
/// transmits each window's *strongest* activation instead of its mean.
/// Used by the cut-pooling ablation; the paper (and the default
/// [`crate::AvgPool2d`]) uses averaging.
pub struct MaxPool2d {
    wh: usize,
    ww: usize,
    /// `(input dims, argmax)` of the pending forward; dims empty
    /// between passes.
    cache: (Vec<usize>, Vec<usize>),
}

impl MaxPool2d {
    /// Creates a max-pooling layer with window `wh × ww`.
    pub fn new(wh: usize, ww: usize) -> Self {
        assert!(wh > 0 && ww > 0, "MaxPool2d: window must be non-empty");
        MaxPool2d {
            wh,
            ww,
            cache: (Vec::new(), Vec::new()),
        }
    }

    /// The pooling window `(wh, ww)`.
    pub fn window(&self) -> (usize, usize) {
        (self.wh, self.ww)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (out, argmax) = max_pool2d(input, self.wh, self.ww);
        self.cache = (input.dims().to_vec(), argmax);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cache.0.is_empty(),
            "MaxPool2d::backward called without a preceding forward"
        );
        let (dims, argmax) = std::mem::take(&mut self.cache);
        max_pool2d_backward(&dims, grad_out, &argmax)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        pool_out_shape(input, self.wh, self.ww)
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        // One compare per input element.
        input_dims.iter().product::<usize>() as f64
    }
}

/// Flattens `[N, C, H, W]` to `[N, C·H·W]` (and restores the shape on the
/// way back). Bridges the convolutional stack to dense/recurrent layers.
pub struct Flatten {
    /// Input dims of the pending forward; empty between passes.
    input_dims: Vec<usize>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Flatten {
            input_dims: Vec::new(),
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Flatten::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(
            input.shape().rank() >= 2,
            "Flatten: input {} must have a leading batch axis",
            input.shape()
        );
        let n = input.dims()[0];
        let rest = input.numel() / n;
        self.input_dims = input.dims().to_vec();
        input.reshape([n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_dims.is_empty(),
            "Flatten::backward called without a preceding forward"
        );
        grad_out.reshape(std::mem::take(&mut self.input_dims))
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        if input.len() < 2 {
            return Err(format!(
                "flatten needs a leading batch axis, got rank-{}",
                input.len()
            ));
        }
        Ok(vec![input[0], input[1..].iter().product()])
    }
}

/// Shared pooling shape contract: the `wh × ww` window must tile the
/// spatial plane exactly (non-overlapping, no remainder).
fn pool_out_shape(input: &[usize], wh: usize, ww: usize) -> Result<Vec<usize>, String> {
    if input.len() != 4 {
        return Err(format!(
            "pooling expects rank-4 [N, C, H, W], got rank-{}",
            input.len()
        ));
    }
    let (n, c, h, w) = (input[0], input[1], input[2], input[3]);
    if h == 0 || w == 0 || h % wh != 0 || w % ww != 0 {
        return Err(format!(
            "{wh}x{ww} window does not tile {h}x{w} input exactly"
        ));
    }
    Ok(vec![n, c, h / wh, w / ww])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_layer_one_pixel() {
        let mut layer = AvgPool2d::new(4, 4);
        let out = layer.forward(&Tensor::from_fn([1, 1, 4, 4], |i| i as f32));
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.item(), 7.5);
    }

    #[test]
    fn pool_backward_round_trip_shape() {
        let mut layer = AvgPool2d::new(2, 2);
        let x = Tensor::ones([2, 3, 4, 4]);
        let y = layer.forward(&x);
        let gx = layer.backward(&Tensor::ones(y.dims()));
        assert_eq!(gx.dims(), x.dims());
        // Average pooling conserves gradient mass.
        assert!((gx.sum() - y.numel() as f32).abs() < 1e-5);
    }

    #[test]
    fn flatten_round_trip() {
        let mut layer = Flatten::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = layer.forward(&x);
        assert_eq!(y.dims(), &[2, 12]);
        let gx = layer.backward(&y);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn pool_gradcheck() {
        let report = crate::check_gradients(
            AvgPool2d::new(2, 2),
            &Tensor::from_fn([1, 2, 4, 4], |i| (i as f32).cos()),
            1e-2,
            8,
        );
        assert!(report.max_abs_err < 1e-2, "{report:?}");
    }

    #[test]
    fn max_pool_layer_forward_backward() {
        let mut layer = MaxPool2d::new(2, 2);
        assert_eq!(layer.window(), (2, 2));
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let y = layer.forward(&x);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let gx = layer.backward(&Tensor::ones([1, 1, 2, 2]));
        // Gradient mass lands only on the winners.
        assert_eq!(gx.sum(), 4.0);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn max_pool_gradcheck_distinct_values() {
        let report = crate::check_gradients(
            MaxPool2d::new(2, 2),
            &Tensor::from_fn([1, 1, 4, 4], |i| ((i * 7) % 13) as f32 * 0.37),
            1e-3,
            8,
        );
        assert!(report.max_abs_err < 1e-2, "{report:?}");
    }
}
