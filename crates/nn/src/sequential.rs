//! A sequential container chaining layers.

use std::time::Instant;

use sl_telemetry::{Profiler, Telemetry};
use sl_tensor::Tensor;

use crate::shape::{ShapeError, ShapeStep, ShapeTrace};
use crate::Layer;

/// Runs layers in order on `forward`, in reverse on `backward`.
///
/// The UE-side network (`conv → relu → conv → sigmoid → avg-pool`) and the
/// BS-side head are each a `Sequential`; the split-learning trainer in
/// `sl-core` owns one per side and moves the cut-layer tensors between
/// them through the simulated channel.
///
/// Each container owns a [`Profiler`] (disabled by default). With
/// [`Sequential::enable_profiling`] every forward/backward pass records
/// per-layer host time and modelled FLOPs, published to a [`Telemetry`]
/// handle via [`Sequential::publish_profile`]. The disabled path costs
/// one branch per pass.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    profiler: Profiler,
}

impl Sequential {
    /// An empty container.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            profiler: Profiler::disabled(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer names, in forward order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Turns on per-layer profiling and records each layer's parameter
    /// count into the profiler.
    pub fn enable_profiling(&mut self) {
        self.profiler.enable();
        for i in 0..self.layers.len() {
            let name = self.layers[i].name();
            let params = self.layers[i].parameter_count() as u64;
            self.profiler.set_params(i, name, params);
        }
    }

    /// Turns off per-layer profiling (accumulated stats are kept until
    /// the next [`Sequential::publish_profile`]).
    pub fn disable_profiling(&mut self) {
        self.profiler.disable();
    }

    /// The accumulated per-layer profile.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Folds the accumulated per-layer stats into `tele` under
    /// `{prefix}.layer.<idx>.<name>.*` and resets the profiler's stats.
    pub fn publish_profile(&mut self, tele: &mut Telemetry, prefix: &str) {
        self.profiler.publish_to(tele, prefix);
    }

    /// Runs only the first `upto` layers (used for visualizing
    /// intermediate activations, e.g. the pre-pool CNN map). Layer
    /// caches are overwritten as in a normal forward pass, so calling
    /// `backward` after a partial forward is invalid; callers should
    /// [`Layer::zero_grads`]-style reset via a full forward before
    /// training again. Partial passes are never profiled.
    ///
    /// Panics when `upto` exceeds the layer count.
    pub fn forward_partial(&mut self, upto: usize, input: &Tensor) -> Tensor {
        assert!(
            upto <= self.layers.len(),
            "Sequential::forward_partial: upto {} exceeds {} layers",
            upto,
            self.layers.len()
        );
        let mut x = input.clone();
        for layer in &mut self.layers[..upto] {
            x = layer.forward(&x);
        }
        x
    }

    /// Propagates a symbolic input shape through every layer's
    /// [`Layer::out_shape`] contract, returning the full per-layer trace
    /// — or a [`ShapeError`] locating the first layer that rejects its
    /// input. Nothing is allocated or executed; this is the static
    /// counterpart of [`Layer::forward`] used by `slm-lint --shapes` and
    /// the pre-run wiring check in `sl-core`.
    pub fn shape_trace(&self, input: &[usize]) -> Result<ShapeTrace, ShapeError> {
        self.shape_trace_partial(self.layers.len(), input)
    }

    /// [`Sequential::shape_trace`] restricted to the first `upto` layers
    /// — the static counterpart of [`Sequential::forward_partial`],
    /// covering e.g. the Fig. 2 pre-pool CNN-map extraction path.
    ///
    /// Panics when `upto` exceeds the layer count (same contract as
    /// `forward_partial`).
    pub fn shape_trace_partial(
        &self,
        upto: usize,
        input: &[usize],
    ) -> Result<ShapeTrace, ShapeError> {
        assert!(
            upto <= self.layers.len(),
            "Sequential::shape_trace_partial: upto {} exceeds {} layers",
            upto,
            self.layers.len()
        );
        let mut steps = Vec::with_capacity(upto);
        let mut dims = input.to_vec();
        for (index, layer) in self.layers[..upto].iter().enumerate() {
            match layer.out_shape(&dims) {
                Ok(out) => {
                    steps.push(ShapeStep {
                        index,
                        layer: layer.name(),
                        input: dims,
                        output: out.clone(),
                    });
                    dims = out;
                }
                Err(message) => {
                    return Err(ShapeError {
                        index,
                        layer: layer.name(),
                        input: dims,
                        message,
                        steps,
                    })
                }
            }
        }
        Ok(ShapeTrace {
            steps,
            output: dims,
        })
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.profiler.is_enabled() {
            // Un-profiled fast path: feed `input` straight into the first
            // layer instead of cloning it.
            let (first, rest) = match self.layers.split_first_mut() {
                Some(split) => split,
                None => return input.clone(),
            };
            let mut x = first.forward(input);
            for layer in rest {
                x = layer.forward(&x);
            }
            return x;
        }
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let flops = layer.flops_forward(x.dims());
            // slm-lint: allow(no-nondeterminism) the profiler's whole job is measuring wall time; readings feed telemetry only, never the model
            let t0 = Instant::now();
            x = layer.forward(&x);
            self.profiler
                .record_fwd(i, layer.name(), t0.elapsed().as_secs_f64(), flops);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if !self.profiler.is_enabled() {
            let (last, rest) = match self.layers.split_last_mut() {
                Some(split) => split,
                None => return grad_out.clone(),
            };
            let mut g = last.backward(grad_out);
            for layer in rest.iter_mut().rev() {
                g = layer.backward(&g);
            }
            return g;
        }
        let mut g = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            // slm-lint: allow(no-nondeterminism) profiler wall-time reading; telemetry only, never fed back into the model
            let t0 = Instant::now();
            g = layer.backward(&g);
            self.profiler
                .record_bwd(i, layer.name(), t0.elapsed().as_secs_f64());
        }
        g
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        match self.shape_trace(input) {
            Ok(trace) => Ok(trace.output),
            Err(e) => Err(format!("layer #{} ({}): {}", e.index, e.layer, e.message)),
        }
    }

    fn flops_forward(&self, _input_dims: &[usize]) -> f64 {
        // A container cannot know intermediate shapes without running;
        // per-layer FLOPs are recorded by the profiler instead.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, AvgPool2d, Conv2d, Dense, Flatten};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_tensor::Padding;

    fn tiny_cnn(rng: &mut StdRng) -> Sequential {
        Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Same, rng))
            .push(Activation::relu())
            .push(Conv2d::new(2, 1, 3, Padding::Same, rng))
            .push(Activation::sigmoid())
            .push(AvgPool2d::new(2, 2))
            .push(Flatten::new())
            .push(Dense::new(4, 1, rng))
    }

    #[test]
    fn forward_chains_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = tiny_cnn(&mut rng);
        let out = net.forward(&Tensor::zeros([3, 1, 4, 4]));
        assert_eq!(out.dims(), &[3, 1]);
        assert_eq!(net.len(), 7);
        assert_eq!(
            net.layer_names(),
            vec![
                "conv2d",
                "relu",
                "conv2d",
                "sigmoid",
                "avg_pool2d",
                "flatten",
                "dense"
            ]
        );
    }

    #[test]
    fn params_collects_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = tiny_cnn(&mut rng);
        // conv(1→2): 18+2, conv(2→1): 18+1, dense(4→1): 4+1
        assert_eq!(net.parameter_count(), 20 + 19 + 5);
        assert_eq!(net.params_and_grads().len(), 6);
    }

    #[test]
    fn whole_network_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = tiny_cnn(&mut rng);
        let input = sl_tensor::randn([2, 1, 4, 4], 0.0, 1.0, &mut rng);
        let report = crate::check_gradients(net, &input, 1e-2, 4);
        assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn forward_partial_matches_prefix() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = tiny_cnn(&mut rng);
        let x = sl_tensor::randn([2, 1, 4, 4], 0.0, 1.0, &mut rng);
        // Prefix of length 4 is the pre-pool activation map.
        let partial = net.forward_partial(4, &x);
        assert_eq!(partial.dims(), &[2, 1, 4, 4]);
        // Full forward still works afterwards and profiling is off.
        let full = net.forward(&x);
        assert_eq!(full.dims(), &[2, 1]);
        assert!(net.profiler().is_empty());
    }

    #[test]
    fn profiling_does_not_change_outputs() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut plain = tiny_cnn(&mut rng);
        let mut rng = StdRng::seed_from_u64(6);
        let mut profiled = tiny_cnn(&mut rng);
        profiled.enable_profiling();
        let x = sl_tensor::randn([3, 1, 4, 4], 0.0, 1.0, &mut rng);
        let a = plain.forward(&x);
        let b = profiled.forward(&x);
        assert_eq!(a.data(), b.data());
        let ga = plain.backward(&Tensor::ones(a.dims()));
        let gb = profiled.backward(&Tensor::ones(b.dims()));
        assert_eq!(ga.data(), gb.data());
        // Every layer recorded one forward and one backward sample.
        let layers: Vec<_> = profiled.profiler().layers().collect();
        assert_eq!(layers.len(), 7);
        for (_, p) in &layers {
            assert_eq!(p.fwd.count(), 1);
            assert_eq!(p.bwd.count(), 1);
        }
        // Parameterized layers report their counts; conv FLOPs dominate.
        assert_eq!(layers[0].1.params, 20);
        assert!(layers[0].1.flops > 0.0);
    }

    #[test]
    fn publish_profile_emits_layer_metrics() {
        use sl_telemetry::{MemorySink, Telemetry, TelemetryMode};
        let (sink, _events) = MemorySink::new();
        let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = tiny_cnn(&mut rng);
        net.enable_profiling();
        let x = sl_tensor::randn([2, 1, 4, 4], 0.0, 1.0, &mut rng);
        let y = net.forward(&x);
        net.backward(&Tensor::ones(y.dims()));
        net.publish_profile(&mut tele, "nn.ue");
        let s = tele.snapshot();
        assert_eq!(s.histograms["nn.ue.layer.0.conv2d.fwd.host_s"].count(), 1);
        assert_eq!(s.histograms["nn.ue.layer.6.dense.bwd.host_s"].count(), 1);
        assert_eq!(s.gauge("nn.ue.layer.6.dense.params"), Some(5.0));
        assert!(net.profiler().is_empty());
    }

    #[test]
    fn shape_trace_matches_forward() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = tiny_cnn(&mut rng);
        let trace = net.shape_trace(&[3, 1, 4, 4]).unwrap();
        assert_eq!(trace.output, vec![3, 1]);
        assert_eq!(trace.steps.len(), 7);
        // The symbolic trace agrees with the real forward at every layer.
        let out = net.forward(&Tensor::zeros([3, 1, 4, 4]));
        assert_eq!(out.dims(), trace.output.as_slice());
        assert_eq!(trace.steps[4].layer, "avg_pool2d");
        assert_eq!(trace.steps[4].output, vec![3, 1, 2, 2]);
        // Partial trace mirrors forward_partial's pre-pool prefix.
        let partial = net.shape_trace_partial(4, &[2, 1, 4, 4]).unwrap();
        assert_eq!(partial.output, vec![2, 1, 4, 4]);
    }

    #[test]
    fn shape_trace_locates_miswired_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = tiny_cnn(&mut rng);
        // 5x5 input: AvgPool2d(2, 2) at index 4 cannot tile it.
        let err = net.shape_trace(&[1, 1, 5, 5]).unwrap_err();
        assert_eq!(err.index, 4);
        assert_eq!(err.layer, "avg_pool2d");
        assert_eq!(err.steps.len(), 4);
        assert!(err.message.contains("does not tile"), "{}", err.message);
        assert!(err.to_string().contains("SHAPE ERROR"));
        // The trait-level contract surfaces the same failure.
        assert!(net.out_shape(&[1, 1, 5, 5]).is_err());
    }

    #[test]
    fn training_reduces_loss_end_to_end() {
        use crate::{mse_loss, Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Activation::tanh())
            .push(Dense::new(8, 1, &mut rng));
        // Learn y = x0 - x1 on a fixed batch.
        let x = sl_tensor::randn([16, 2], 0.0, 1.0, &mut rng);
        let y = Tensor::from_fn([16, 1], |i| x.at(&[i, 0]) - x.at(&[i, 1]));
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..600 {
            let pred = net.forward(&x);
            let l = mse_loss(&pred, &y);
            net.backward(&l.grad);
            opt.step(&mut net.params_and_grads());
            net.zero_grads();
            first.get_or_insert(l.loss);
            last = l.loss;
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.05,
            "training did not converge: {first} -> {last}"
        );
    }
}
