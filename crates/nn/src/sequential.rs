//! A sequential container chaining layers.

use sl_tensor::Tensor;

use crate::Layer;

/// Runs layers in order on `forward`, in reverse on `backward`.
///
/// The UE-side network (`conv → relu → conv → sigmoid → avg-pool`) and the
/// BS-side head are each a `Sequential`; the split-learning trainer in
/// `sl-core` owns one per side and moves the cut-layer tensors between
/// them through the simulated channel.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer names, in forward order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, AvgPool2d, Conv2d, Dense, Flatten};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sl_tensor::Padding;

    fn tiny_cnn(rng: &mut StdRng) -> Sequential {
        Sequential::new()
            .push(Conv2d::new(1, 2, 3, Padding::Same, rng))
            .push(Activation::relu())
            .push(Conv2d::new(2, 1, 3, Padding::Same, rng))
            .push(Activation::sigmoid())
            .push(AvgPool2d::new(2, 2))
            .push(Flatten::new())
            .push(Dense::new(4, 1, rng))
    }

    #[test]
    fn forward_chains_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = tiny_cnn(&mut rng);
        let out = net.forward(&Tensor::zeros([3, 1, 4, 4]));
        assert_eq!(out.dims(), &[3, 1]);
        assert_eq!(net.len(), 7);
        assert_eq!(
            net.layer_names(),
            vec![
                "conv2d",
                "relu",
                "conv2d",
                "sigmoid",
                "avg_pool2d",
                "flatten",
                "dense"
            ]
        );
    }

    #[test]
    fn params_collects_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = tiny_cnn(&mut rng);
        // conv(1→2): 18+2, conv(2→1): 18+1, dense(4→1): 4+1
        assert_eq!(net.parameter_count(), 20 + 19 + 5);
        assert_eq!(net.params_and_grads().len(), 6);
    }

    #[test]
    fn whole_network_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = tiny_cnn(&mut rng);
        let input = sl_tensor::randn([2, 1, 4, 4], 0.0, 1.0, &mut rng);
        let report = crate::check_gradients(net, &input, 1e-2, 4);
        assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn training_reduces_loss_end_to_end() {
        use crate::{mse_loss, Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Activation::tanh())
            .push(Dense::new(8, 1, &mut rng));
        // Learn y = x0 - x1 on a fixed batch.
        let x = sl_tensor::randn([16, 2], 0.0, 1.0, &mut rng);
        let y = Tensor::from_fn([16, 1], |i| x.at(&[i, 0]) - x.at(&[i, 1]));
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..600 {
            let pred = net.forward(&x);
            let l = mse_loss(&pred, &y);
            net.backward(&l.grad);
            opt.step(&mut net.params_and_grads());
            net.zero_grads();
            first.get_or_insert(l.loss);
            last = l.loss;
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.05,
            "training did not converge: {first} -> {last}"
        );
    }
}
