//! Long short-term memory layer with full backpropagation through time.
//!
//! The BS-side network of the paper is "recurrent NN layers" fed with a
//! length-`L = 4` sequence of concatenated `[pooled image features ‖ RF
//! received power]` vectors; this LSTM (returning the final hidden state)
//! followed by a [`crate::Dense`] head realizes it.
//!
//! Gate layout along the `4H` axis is `[input, forget, cell, output]`.
//! The forget-gate bias is initialized to 1 (the standard Jozefowicz
//! et al. trick) so early training does not immediately erase the cell
//! state. The per-step gate matmuls and their BPTT transposed variants
//! run on `sl-tensor`'s pooled GEMM backend (`SLM_THREADS`), bitwise
//! identical at every thread count.

use rand::Rng;

use sl_tensor::{matmul, matmul_a_bt, matmul_at_b, xavier_uniform, Tensor};

use crate::activation::sigmoid;
use crate::Layer;

/// Cached values for one time step, needed by BPTT.
struct StepCache {
    x: Tensor,      // [N, X]
    h_prev: Tensor, // [N, H]
    c_prev: Tensor, // [N, H]
    i: Tensor,      // [N, H] input gate (post-sigmoid)
    f: Tensor,      // [N, H] forget gate
    g: Tensor,      // [N, H] cell candidate (post-tanh)
    o: Tensor,      // [N, H] output gate
    tanh_c: Tensor, // [N, H] tanh of the new cell state
}

/// An LSTM over `[N, L, X]` sequences returning the final hidden state
/// `[N, H]`.
pub struct Lstm {
    input_dim: usize,
    hidden_dim: usize,
    /// Input-to-gates weights `[4H, X]`.
    w_x: Tensor,
    /// Hidden-to-gates weights `[4H, H]`.
    w_h: Tensor,
    /// Gate biases `[4H]`.
    bias: Tensor,
    grad_w_x: Tensor,
    grad_w_h: Tensor,
    grad_bias: Tensor,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with `input_dim` features per step and
    /// `hidden_dim` units, Xavier-initialized from `rng`.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0,
            "Lstm: dimensions must be positive"
        );
        let h4 = 4 * hidden_dim;
        let mut bias = Tensor::zeros([h4]);
        // Forget-gate bias = 1.
        for j in hidden_dim..2 * hidden_dim {
            bias.data_mut()[j] = 1.0;
        }
        Lstm {
            input_dim,
            hidden_dim,
            w_x: xavier_uniform([h4, input_dim], input_dim, hidden_dim, rng),
            w_h: xavier_uniform([h4, hidden_dim], hidden_dim, hidden_dim, rng),
            bias,
            grad_w_x: Tensor::zeros([h4, input_dim]),
            grad_w_h: Tensor::zeros([h4, hidden_dim]),
            grad_bias: Tensor::zeros([h4]),
            cache: Vec::new(),
        }
    }

    /// Features per time step.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden units.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Extracts time step `t` from `[N, L, X]` as `[N, X]`.
    fn step_input(input: &Tensor, t: usize) -> Tensor {
        let (n, l, x) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let mut out = Vec::with_capacity(n * x);
        for b in 0..n {
            let base = (b * l + t) * x;
            out.extend_from_slice(&input.data()[base..base + x]);
        }
        Tensor::from_parts([n, x], out)
    }

    /// Splits the pre-activation `[N, 4H]` into activated gates.
    fn gates(&self, z: &Tensor) -> (Tensor, Tensor, Tensor, Tensor) {
        let n = z.dims()[0];
        let h = self.hidden_dim;
        let mut i = Tensor::zeros([n, h]);
        let mut f = Tensor::zeros([n, h]);
        let mut g = Tensor::zeros([n, h]);
        let mut o = Tensor::zeros([n, h]);
        for b in 0..n {
            let row = &z.data()[b * 4 * h..(b + 1) * 4 * h];
            for j in 0..h {
                i.data_mut()[b * h + j] = sigmoid(row[j]);
                f.data_mut()[b * h + j] = sigmoid(row[h + j]);
                g.data_mut()[b * h + j] = row[2 * h + j].tanh();
                o.data_mut()[b * h + j] = sigmoid(row[3 * h + j]);
            }
        }
        (i, f, g, o)
    }

    /// Runs the sequence and returns every hidden state (`L` tensors of
    /// `[N, H]`) without touching the backward cache. Inference helper for
    /// per-step probing.
    pub fn infer_states(&self, input: &Tensor) -> Vec<Tensor> {
        let (n, l) = self.check_input(input);
        let mut h = Tensor::zeros([n, self.hidden_dim]);
        let mut c = Tensor::zeros([n, self.hidden_dim]);
        let mut states = Vec::with_capacity(l);
        for t in 0..l {
            let x = Self::step_input(input, t);
            let z = matmul_a_bt(&x, &self.w_x)
                .add(&matmul_a_bt(&h, &self.w_h))
                .add(&self.bias);
            let (i, f, g, o) = self.gates(&z);
            c = f.mul(&c).add(&i.mul(&g));
            h = o.mul(&c.map(f32::tanh));
            states.push(h.clone());
        }
        states
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize) {
        assert_eq!(
            input.shape().rank(),
            3,
            "Lstm: input {} is not rank-3 [batch, steps, features]",
            input.shape()
        );
        assert_eq!(
            input.dims()[2],
            self.input_dim,
            "Lstm: input features {} do not match input_dim {}",
            input.dims()[2],
            self.input_dim
        );
        (input.dims()[0], input.dims()[1])
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, l) = self.check_input(input);
        assert!(l > 0, "Lstm: empty sequence");
        self.cache.clear();
        let mut h = Tensor::zeros([n, self.hidden_dim]);
        let mut c = Tensor::zeros([n, self.hidden_dim]);
        for t in 0..l {
            let x = Self::step_input(input, t);
            let z = matmul_a_bt(&x, &self.w_x)
                .add(&matmul_a_bt(&h, &self.w_h))
                .add(&self.bias);
            let (i, f, g, o) = self.gates(&z);
            let c_new = f.mul(&c).add(&i.mul(&g));
            let tanh_c = c_new.map(f32::tanh);
            let h_new = o.mul(&tanh_c);
            self.cache.push(StepCache {
                x,
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                tanh_c,
            });
            h = h_new;
            c = c_new;
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward called without a preceding forward"
        );
        let l = self.cache.len();
        let n = self.cache[0].x.dims()[0];
        let h_dim = self.hidden_dim;
        assert_eq!(
            grad_out.dims(),
            &[n, h_dim],
            "Lstm::backward: grad shape {} does not match final hidden [{}x{}]",
            grad_out.shape(),
            n,
            h_dim
        );

        let mut dh = grad_out.clone();
        let mut dc = Tensor::zeros([n, h_dim]);
        let mut grad_input = Tensor::zeros([n, l, self.input_dim]);

        for (t, step) in std::mem::take(&mut self.cache)
            .into_iter()
            .enumerate()
            .rev()
        {
            // h = o ⊙ tanh(c)
            let d_o = dh.mul(&step.tanh_c);
            let d_tanh_c = dh.mul(&step.o);
            dc.add_inplace(&d_tanh_c.mul(&step.tanh_c.map(|v| 1.0 - v * v)));
            // c = f ⊙ c_prev + i ⊙ g
            let d_i = dc.mul(&step.g);
            let d_g = dc.mul(&step.i);
            let d_f = dc.mul(&step.c_prev);
            let dc_prev = dc.mul(&step.f);
            // Through the gate nonlinearities to the pre-activations.
            let dz_i = d_i.mul(&step.i.map(|v| v * (1.0 - v)));
            let dz_f = d_f.mul(&step.f.map(|v| v * (1.0 - v)));
            let dz_g = d_g.mul(&step.g.map(|v| 1.0 - v * v));
            let dz_o = d_o.mul(&step.o.map(|v| v * (1.0 - v)));
            // Pack into [N, 4H] in [i, f, g, o] order.
            let mut dz = Tensor::zeros([n, 4 * h_dim]);
            for b in 0..n {
                let dst = &mut dz.data_mut()[b * 4 * h_dim..(b + 1) * 4 * h_dim];
                dst[..h_dim].copy_from_slice(&dz_i.data()[b * h_dim..(b + 1) * h_dim]);
                dst[h_dim..2 * h_dim].copy_from_slice(&dz_f.data()[b * h_dim..(b + 1) * h_dim]);
                dst[2 * h_dim..3 * h_dim].copy_from_slice(&dz_g.data()[b * h_dim..(b + 1) * h_dim]);
                dst[3 * h_dim..].copy_from_slice(&dz_o.data()[b * h_dim..(b + 1) * h_dim]);
            }
            // Parameter gradients.
            self.grad_w_x.add_inplace(&matmul_at_b(&dz, &step.x));
            self.grad_w_h.add_inplace(&matmul_at_b(&dz, &step.h_prev));
            self.grad_bias.add_inplace(&dz.sum_axis0());
            // Gradients flowing to x_t and h_{t-1}.
            let dx = matmul(&dz, &self.w_x);
            for b in 0..n {
                let base = (b * l + t) * self.input_dim;
                let src = &dx.data()[b * self.input_dim..(b + 1) * self.input_dim];
                grad_input.data_mut()[base..base + self.input_dim].copy_from_slice(src);
            }
            dh = matmul(&dz, &self.w_h);
            dc = dc_prev;
        }
        grad_input
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.w_x, &mut self.grad_w_x),
            (&mut self.w_h, &mut self.grad_w_h),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn name(&self) -> &'static str {
        "lstm"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        crate::gru::recurrent_out_shape("lstm", input, self.input_dim, self.hidden_dim)
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        if input_dims.len() != 3 {
            return 0.0;
        }
        let (n, l) = (input_dims[0], input_dims[1]);
        let (f, h) = (self.input_dim, self.hidden_dim);
        // Per step: four gate blocks of H units over [x; h] MACs, plus
        // ~12 elementwise ops per unit for gate nonlinearities and the
        // cell/hidden updates.
        let per_step = 2.0 * (4 * h * (f + h)) as f64 + 12.0 * h as f64;
        (n * l) as f64 * per_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_final_hidden() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let out = lstm.forward(&Tensor::zeros([2, 4, 3]));
        assert_eq!(out.dims(), &[2, 5]);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let lstm = Lstm::new(2, 3, &mut rng);
        let b = lstm.bias.data();
        assert!(b[3..6].iter().all(|&v| v == 1.0));
        assert!(b[..3].iter().all(|&v| v == 0.0));
        assert!(b[6..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn hidden_state_bounded_by_one() {
        // h = o ⊙ tanh(c) with o ∈ (0,1) ⇒ |h| < 1 always.
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(4, 6, &mut rng);
        let x = sl_tensor::randn([3, 10, 4], 0.0, 5.0, &mut rng);
        let out = lstm.forward(&x);
        assert!(out.max() < 1.0 && out.min() > -1.0);
    }

    #[test]
    fn infer_states_matches_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let x = sl_tensor::randn([2, 5, 3], 0.0, 1.0, &mut rng);
        let states = lstm.infer_states(&x);
        let out = lstm.forward(&x);
        assert_eq!(states.len(), 5);
        let last = states.last().unwrap();
        for (a, b) in last.data().iter().zip(out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn longer_context_changes_output() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        // Same final step, different histories -> different outputs
        // (the LSTM actually uses its memory).
        let a = Tensor::from_vec([1, 3, 1], vec![1.0, 1.0, 0.0]).unwrap();
        let b = Tensor::from_vec([1, 3, 1], vec![-1.0, -1.0, 0.0]).unwrap();
        let ha = lstm.forward(&a);
        let hb = lstm.forward(&b);
        assert!(ha.sub(&hb).norm() > 1e-4);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let lstm = Lstm::new(3, 4, &mut rng);
        let input = sl_tensor::randn([2, 3, 3], 0.0, 1.0, &mut rng);
        let report = check_gradients(lstm, &input, 1e-2, 6);
        assert!(report.max_abs_err < 5e-2, "grad check failed: {report:?}");
    }

    #[test]
    fn batch_elements_are_independent() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x1 = sl_tensor::randn([1, 4, 2], 0.0, 1.0, &mut rng);
        let x2 = sl_tensor::randn([1, 4, 2], 0.0, 1.0, &mut rng);
        let both = Tensor::from_vec([2, 4, 2], [x1.data(), x2.data()].concat()).unwrap();
        let h1 = lstm.forward(&x1);
        let h2 = lstm.forward(&x2);
        let hb = lstm.forward(&both);
        for j in 0..3 {
            assert!((hb.at(&[0, j]) - h1.at(&[0, j])).abs() < 1e-6);
            assert!((hb.at(&[1, j]) - h2.at(&[0, j])).abs() < 1e-6);
        }
    }
}
