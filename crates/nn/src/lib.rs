//! # `sl-nn` — neural-network layers with hand-derived backprop
//!
//! The building blocks of the paper's split network, implemented directly
//! on top of [`sl_tensor`] without an autograd graph: every layer carries
//! its own forward cache and implements an explicit backward pass. This
//! keeps the dataflow obvious — important here, because the *split* in
//! split learning happens between two specific layers, and the trainer in
//! `sl-core` must intercept the cut-layer activations and gradients to
//! ship them over the simulated wireless link.
//!
//! Provided layers: [`Dense`], [`Conv2d`], [`AvgPool2d`], [`MaxPool2d`],
//! [`Flatten`], [`Activation`] (ReLU/sigmoid/tanh), [`Dropout`], and two
//! recurrent cells — [`Lstm`] (the default) and [`Gru`] — plus a
//! [`Sequential`] container. Optimizers: [`Sgd`] and [`Adam`] (the paper
//! trains with Adam, lr 1e-3, β₁ 0.9, β₂ 0.999). Losses: [`mse_loss`],
//! [`mae_loss`], [`huber_loss`].
//!
//! Every layer is deterministic given its initialization RNG, and every
//! backward pass in this crate is validated against central finite
//! differences in the test suite (see [`check_gradients`]).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sl_nn::{mse_loss, Adam, Dense, Layer, Optimizer};
//! use sl_tensor::Tensor;
//!
//! // Fit y = 2x with a single dense unit.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Dense::new(1, 1, &mut rng);
//! let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8);
//! let x = Tensor::from_vec([4, 1], vec![-1.0, 0.0, 1.0, 2.0]).unwrap();
//! let y = x.scale(2.0);
//! for _ in 0..200 {
//!     let pred = layer.forward(&x);
//!     let loss = mse_loss(&pred, &y);
//!     layer.backward(&loss.grad);
//!     opt.step(&mut layer.params_and_grads());
//!     layer.zero_grads();
//! }
//! let final_loss = mse_loss(&layer.forward(&x), &y).loss;
//! assert!(final_loss < 1e-3);
//! ```

mod activation;
mod conv_layer;
mod dense;
mod dropout;
mod grad_check;
mod gru;
mod loss;
mod lstm;
mod optim;
mod pool_layer;
mod sequential;
pub mod shape;

pub use activation::{Activation, ActivationKind};
pub use conv_layer::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use grad_check::{check_gradients, numerical_gradient, GradCheckReport};
pub use gru::Gru;
pub use loss::{huber_loss, mae_loss, mse_loss, rmse, LossValue};
pub use lstm::Lstm;
pub use optim::{clip_global_norm, Adam, Optimizer, Sgd};
pub use pool_layer::{AvgPool2d, Flatten, MaxPool2d};
pub use sequential::Sequential;
pub use shape::{ShapeError, ShapeStep, ShapeTrace};

use sl_tensor::Tensor;

/// A trainable (or stateless) network layer.
///
/// Layers own their parameters, parameter gradients and forward cache.
/// The contract is the classic three-phase SGD step:
///
/// 1. [`Layer::forward`] runs the layer and caches whatever the backward
///    pass needs (inputs, pre-activations, gate values, …).
/// 2. [`Layer::backward`] consumes the most recent cache, **accumulates**
///    parameter gradients in place and returns the gradient with respect
///    to the layer input.
/// 3. The optimizer visits [`Layer::params_and_grads`] and the caller
///    clears accumulated gradients with [`Layer::zero_grads`].
///
/// `backward` must be called at most once per `forward` (caches are
/// consumed); calling it without a preceding `forward` panics.
pub trait Layer {
    /// Runs the layer on `input`, caching intermediates for `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (same shape as the last `forward`
    /// output), accumulating parameter gradients and returning the
    /// gradient with respect to the last input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable `(parameter, gradient)` pairs, in a stable order. Stateless
    /// layers return an empty vector.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)>;

    /// Clears accumulated parameter gradients.
    fn zero_grads(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.fill(0.0);
        }
    }

    /// Total number of scalar parameters.
    fn parameter_count(&mut self) -> usize {
        self.params_and_grads().iter().map(|(p, _)| p.numel()).sum()
    }

    /// A short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Static shape contract: the output shape this layer would produce
    /// for an input of shape `input`, or a human-readable reason why the
    /// input is invalid — computed symbolically, without allocating or
    /// running anything. [`Sequential::shape_trace`] chains contracts
    /// through a stack so miswired networks are rejected with a
    /// per-layer trace before any training run (`slm-lint --shapes`).
    ///
    /// The contract must agree with [`Layer::forward`]: whenever
    /// `out_shape(dims)` returns `Ok(out)`, a forward pass on a tensor
    /// of shape `dims` must produce shape `out`; whenever it returns
    /// `Err`, a forward pass must panic.
    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String>;

    /// Modelled floating-point operations for one forward pass over an
    /// input of shape `input_dims`, following the usual convention of
    /// 2 FLOPs per multiply-accumulate. This is an analytic estimate for
    /// profiling (the backward pass is charged at 2× forward by the
    /// profiler), not a measurement; stateless reshapes return 0.
    fn flops_forward(&self, _input_dims: &[usize]) -> f64 {
        0.0
    }
}
