//! Fully-connected (affine) layer.

use rand::Rng;

use sl_tensor::{matmul, matmul_a_bt, matmul_at_b, xavier_uniform, Tensor};

use crate::Layer;

/// `y = x · Wᵀ + b` over a batch: input `[N, in]`, output `[N, out]`.
///
/// Weights are stored `[out, in]` (one row per output unit) and
/// initialized with Xavier-uniform; biases start at zero. The BS-side
/// prediction head (`Dense(hidden → 1)`) is an instance of this layer.
///
/// Forward and both backward matmuls run on `sl-tensor`'s tiled,
/// pool-parallel GEMM backend (`SLM_THREADS`); the reported
/// [`Layer::flops_forward`] counts the mathematical `2·N·in·out` FLOPs,
/// which the backend does not change.
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    input_cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with `input_dim` inputs and `output_dim`
    /// outputs, Xavier-initialized from `rng`.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "Dense: dimensions must be positive"
        );
        Dense {
            weight: xavier_uniform([output_dim, input_dim], input_dim, output_dim, rng),
            bias: Tensor::zeros([output_dim]),
            grad_weight: Tensor::zeros([output_dim, input_dim]),
            grad_bias: Tensor::zeros([output_dim]),
            input_cache: None,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Immutable view of the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable view of the bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.affine(input)
    }

    fn affine(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape().rank(),
            2,
            "Dense: input {} is not rank-2 [batch, features]",
            input.shape()
        );
        assert_eq!(
            input.dims()[1],
            self.input_dim(),
            "Dense: input features {} do not match layer input_dim {}",
            input.dims()[1],
            self.input_dim()
        );
        matmul_a_bt(input, &self.weight).add(&self.bias)
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.affine(input);
        self.input_cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .take()
            .expect("Dense::backward called without a preceding forward");
        assert_eq!(
            grad_out.dims(),
            &[input.dims()[0], self.output_dim()],
            "Dense::backward: grad shape {} does not match [batch, out]",
            grad_out.shape()
        );
        // dL/dW = gᵀ · x  ([out, N]·[N, in]); dL/db = column sums of g.
        self.grad_weight.add_inplace(&matmul_at_b(grad_out, &input));
        self.grad_bias.add_inplace(&grad_out.sum_axis0());
        // dL/dx = g · W ([N, out]·[out, in]).
        matmul(grad_out, &self.weight)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        if input.len() != 2 {
            return Err(format!(
                "dense expects rank-2 [batch, features], got rank-{}",
                input.len()
            ));
        }
        if input[1] != self.input_dim() {
            return Err(format!(
                "input features {} do not match layer input_dim {}",
                input[1],
                self.input_dim()
            ));
        }
        Ok(vec![input[0], self.output_dim()])
    }

    fn flops_forward(&self, input_dims: &[usize]) -> f64 {
        let rows = match input_dims.split_last() {
            Some((_, lead)) => lead.iter().product::<usize>(),
            None => 0,
        };
        2.0 * rows as f64 * (self.input_dim() * self.output_dim()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        // Zero the weights: output must equal the bias.
        layer.weight.fill(0.0);
        layer.bias = Tensor::from_slice(&[0.5, -1.0]);
        let out = layer.forward(&Tensor::ones([4, 3]));
        assert_eq!(out.dims(), &[4, 2]);
        for r in 0..4 {
            assert_eq!(out.at(&[r, 0]), 0.5);
            assert_eq!(out.at(&[r, 1]), -1.0);
        }
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.weight = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        layer.bias = Tensor::from_slice(&[10.0, 20.0]);
        let out = layer.forward(&Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap());
        assert_eq!(out.data(), &[13.0, 27.0]);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(5, 7, &mut rng);
        assert_eq!(layer.parameter_count(), 5 * 7 + 7);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Dense::new(4, 3, &mut rng);
        let input = sl_tensor::randn([5, 4], 0.0, 1.0, &mut rng);
        let report = check_gradients(layer, &input, 1e-2, 8);
        assert!(report.max_abs_err < 5e-2, "grad check failed: {report:?}");
    }

    #[test]
    fn backward_accumulates_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(2, 1, &mut rng);
        let x = Tensor::ones([1, 2]);
        let g = Tensor::ones([1, 1]);
        layer.forward(&x);
        layer.backward(&g);
        let first = layer.grad_weight.clone();
        layer.forward(&x);
        layer.backward(&g);
        assert_eq!(layer.grad_weight, first.scale(2.0));
        layer.zero_grads();
        assert_eq!(layer.grad_weight.sum(), 0.0);
    }

    #[test]
    fn infer_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(6);
        let layer = Dense::new(2, 2, &mut rng);
        let _ = layer.infer(&Tensor::ones([1, 2]));
        // No cache -> backward on the (moved-to-mut) layer must panic.
        let mut layer = layer;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            layer.backward(&Tensor::ones([1, 2]))
        }));
        assert!(result.is_err());
    }
}
