//! Regression losses.
//!
//! The paper minimizes minibatch mean-squared error on the predicted
//! received power and reports accuracy as root-MSE in dB; both live here,
//! together with MAE and Huber variants used by the robustness ablations.

use sl_tensor::Tensor;

/// A scalar loss and its gradient with respect to the prediction.
#[derive(Debug, Clone)]
pub struct LossValue {
    /// The scalar loss (mean over all elements).
    pub loss: f32,
    /// `∂loss/∂prediction`, same shape as the prediction.
    pub grad: Tensor,
}

fn check_shapes(op: &str, prediction: &Tensor, target: &Tensor) {
    assert_eq!(
        prediction.shape(),
        target.shape(),
        "{op}: prediction {} and target {} shapes differ",
        prediction.shape(),
        target.shape()
    );
    assert!(prediction.numel() > 0, "{op}: empty tensors");
}

/// Mean squared error: `mean((ŷ - y)²)` — the paper's training loss.
pub fn mse_loss(prediction: &Tensor, target: &Tensor) -> LossValue {
    check_shapes("mse_loss", prediction, target);
    let n = prediction.numel() as f32;
    let diff = prediction.sub(target);
    LossValue {
        loss: diff.sum_sq() / n,
        grad: diff.scale(2.0 / n),
    }
}

/// Mean absolute error: `mean(|ŷ - y|)`.
pub fn mae_loss(prediction: &Tensor, target: &Tensor) -> LossValue {
    check_shapes("mae_loss", prediction, target);
    let n = prediction.numel() as f32;
    let diff = prediction.sub(target);
    LossValue {
        loss: diff.map(f32::abs).sum() / n,
        grad: diff.map(|d| d.signum() / n),
    }
}

/// Huber loss with threshold `delta`: quadratic near zero, linear in the
/// tails — robust to the deep fades the blockage traces contain.
pub fn huber_loss(prediction: &Tensor, target: &Tensor, delta: f32) -> LossValue {
    assert!(delta > 0.0, "huber_loss: delta must be positive");
    check_shapes("huber_loss", prediction, target);
    let n = prediction.numel() as f32;
    let diff = prediction.sub(target);
    let loss = diff
        .data()
        .iter()
        .map(|&d| {
            if d.abs() <= delta {
                0.5 * d * d
            } else {
                delta * (d.abs() - 0.5 * delta)
            }
        })
        .sum::<f32>()
        / n;
    let grad = diff.map(|d| {
        if d.abs() <= delta {
            d / n
        } else {
            delta * d.signum() / n
        }
    });
    LossValue { loss, grad }
}

/// Root mean squared error between two equally-shaped tensors — the
/// paper's validation metric ("validation loss in RMSE (dB)").
pub fn rmse(prediction: &Tensor, target: &Tensor) -> f32 {
    check_shapes("rmse", prediction, target);
    (prediction.sub(target).sum_sq() / prediction.numel() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_match() {
        let y = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let l = mse_loss(&y, &y);
        assert_eq!(l.loss, 0.0);
        assert_eq!(l.grad.sum(), 0.0);
    }

    #[test]
    fn mse_value_and_grad() {
        let pred = Tensor::from_slice(&[2.0, 0.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let l = mse_loss(&pred, &target);
        assert_eq!(l.loss, 2.0); // (4 + 0)/2
        assert_eq!(l.grad.data(), &[2.0, 0.0]); // 2·diff/n
    }

    #[test]
    fn mse_grad_matches_finite_differences() {
        let pred = Tensor::from_slice(&[0.4, -1.2, 2.2]);
        let target = Tensor::from_slice(&[0.0, 1.0, 2.0]);
        let l = mse_loss(&pred, &target);
        let eps = 1e-3;
        for k in 0..3 {
            let mut p = pred.clone();
            p.data_mut()[k] += eps;
            let up = mse_loss(&p, &target).loss;
            p.data_mut()[k] -= 2.0 * eps;
            let down = mse_loss(&p, &target).loss;
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - l.grad.data()[k]).abs() < 1e-3);
        }
    }

    #[test]
    fn mae_value_and_grad_signs() {
        let pred = Tensor::from_slice(&[2.0, -2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let l = mae_loss(&pred, &target);
        assert_eq!(l.loss, 2.0);
        assert_eq!(l.grad.data(), &[0.5, -0.5]);
    }

    #[test]
    fn huber_interpolates_mse_and_mae() {
        let pred = Tensor::from_slice(&[0.1, 5.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let l = huber_loss(&pred, &target, 1.0);
        // 0.1 is in the quadratic region, 5.0 in the linear region.
        let expect = (0.5 * 0.01 + 1.0 * (5.0 - 0.5)) / 2.0;
        assert!((l.loss - expect).abs() < 1e-6);
        // Linear-region gradient magnitude is delta/n.
        assert!((l.grad.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rmse_is_sqrt_of_mse() {
        let pred = Tensor::from_slice(&[1.0, 3.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let m = mse_loss(&pred, &target).loss;
        assert!((rmse(&pred, &target) - m.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn shape_mismatch_panics() {
        mse_loss(&Tensor::zeros([2]), &Tensor::zeros([3]));
    }
}
