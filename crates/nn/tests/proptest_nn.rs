//! Property-based tests of the NN layers: gradient correctness on random
//! shapes/values, loss identities, optimizer invariants.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_nn::{
    check_gradients, clip_global_norm, huber_loss, mae_loss, mse_loss, rmse, Activation,
    ActivationKind, Dense, Layer, Lstm, Optimizer, Sgd,
};
use sl_tensor::Tensor;

fn tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-3.0f32..3.0, n)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---- gradients hold for arbitrary inputs --------------------------------

    #[test]
    fn dense_gradients_on_random_data(x in tensor(vec![3, 4]), seed in 0u64..1000) {
        let layer = Dense::new(4, 2, &mut StdRng::seed_from_u64(seed));
        let report = check_gradients(layer, &x, 1e-2, 4);
        prop_assert!(report.max_abs_err < 0.1, "err {}", report.max_abs_err);
    }

    #[test]
    fn lstm_gradients_on_random_data(x in tensor(vec![2, 3, 2]), seed in 0u64..1000) {
        let layer = Lstm::new(2, 3, &mut StdRng::seed_from_u64(seed));
        let report = check_gradients(layer, &x, 1e-2, 4);
        prop_assert!(report.max_abs_err < 0.1, "err {}", report.max_abs_err);
    }

    #[test]
    fn activation_gradients_on_random_data(x in tensor(vec![12])) {
        for kind in [ActivationKind::Sigmoid, ActivationKind::Tanh, ActivationKind::Identity] {
            let report = check_gradients(Activation::new(kind), &x, 1e-3, 6);
            prop_assert!(report.max_abs_err < 0.05, "{kind:?}: err {}", report.max_abs_err);
        }
    }

    // ---- loss identities ------------------------------------------------------

    #[test]
    fn losses_are_nonnegative_and_zero_at_match(p in tensor(vec![6]), t in tensor(vec![6])) {
        prop_assert!(mse_loss(&p, &t).loss >= 0.0);
        prop_assert!(mae_loss(&p, &t).loss >= 0.0);
        prop_assert!(huber_loss(&p, &t, 1.0).loss >= 0.0);
        prop_assert!(mse_loss(&p, &p).loss.abs() < 1e-9);
        prop_assert!(rmse(&t, &t).abs() < 1e-9);
    }

    #[test]
    fn huber_between_scaled_mae_and_half_mse(p in tensor(vec![8]), t in tensor(vec![8])) {
        // Pointwise: huber(d) ≤ d²/2 and huber(d) ≤ δ·|d|.
        let h = huber_loss(&p, &t, 1.0).loss;
        let m = mse_loss(&p, &t).loss;
        let a = mae_loss(&p, &t).loss;
        prop_assert!(h <= 0.5 * m + 1e-5);
        prop_assert!(h <= a + 1e-5);
    }

    #[test]
    fn rmse_scales_linearly(p in tensor(vec![8]), t in tensor(vec![8]), s in 0.1f32..5.0) {
        let base = rmse(&p, &t);
        let scaled = rmse(&p.scale(s), &t.scale(s));
        prop_assert!((scaled - s * base).abs() < 1e-3 * (1.0 + base * s));
    }

    #[test]
    fn mse_gradient_descends(p in tensor(vec![8]), t in tensor(vec![8])) {
        // Stepping against the gradient must not increase the loss.
        let l = mse_loss(&p, &t);
        let stepped = p.sub(&l.grad.scale(0.1));
        prop_assert!(mse_loss(&stepped, &t).loss <= l.loss + 1e-6);
    }

    // ---- optimizer invariants -------------------------------------------------

    #[test]
    fn sgd_moves_against_gradient(x0 in -5.0f32..5.0) {
        let mut opt = Sgd::new(0.1);
        let mut x = Tensor::from_slice(&[x0]);
        let mut g = Tensor::from_slice(&[2.0 * x0]); // d/dx x²
        let before = x0 * x0;
        let mut pairs = [(&mut x, &mut g)];
        opt.step(&mut pairs);
        let after = x.data()[0] * x.data()[0];
        prop_assert!(after <= before + 1e-6);
    }

    #[test]
    fn clip_never_increases_norm(v in proptest::collection::vec(-100.0f32..100.0, 1..20), limit in 0.1f32..10.0) {
        let mut t = Tensor::from_slice(&v);
        let before = t.norm();
        clip_global_norm(&mut [&mut t], limit);
        prop_assert!(t.norm() <= before + 1e-4);
        prop_assert!(t.norm() <= limit * 1.001 || before <= limit);
    }

    // ---- layer contracts --------------------------------------------------------

    #[test]
    fn relu_output_nonnegative_and_sparse_grad(x in tensor(vec![10])) {
        let mut layer = Activation::relu();
        let y = layer.forward(&x);
        prop_assert!(y.min() >= 0.0);
        let g = layer.backward(&Tensor::ones([10]));
        // Gradient is 0 exactly where output is 0 (up to ties at x=0).
        for i in 0..10 {
            if y.data()[i] == 0.0 {
                prop_assert_eq!(g.data()[i], 0.0);
            } else {
                prop_assert_eq!(g.data()[i], 1.0);
            }
        }
    }

    #[test]
    fn lstm_output_strictly_bounded(x in tensor(vec![2, 5, 3]), seed in 0u64..100) {
        let mut lstm = Lstm::new(3, 4, &mut StdRng::seed_from_u64(seed));
        let h = lstm.forward(&x);
        prop_assert!(h.max() < 1.0 && h.min() > -1.0);
        prop_assert!(h.all_finite());
    }
}
