//! Loopback integration tests: `slm-bs`'s serving loop and the
//! [`NetTrainer`] UE loop talking over real 127.0.0.1 sockets.
//!
//! The headline contract: the networked runtime reproduces the
//! in-process `SplitTrainer` **byte-identically** — same learning
//! curve bits, same simulated clock, same step counts — both over a
//! clean link and over a lossy one whose retransmissions are realized
//! as corrupted wire frames (Nack → resend recovery).

use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::LinkConfig;
use sl_core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use sl_net::{
    BsServer, FaultAction, FaultPlan, MsgType, NackCode, NetError, NetTrainer, RetryPolicy,
    SessionSpec, SessionSummary, StepRequest, UeClient,
};
use sl_scene::{Scene, SceneConfig, SequenceDataset};

fn dataset(seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

type ServedSessions = Vec<(SocketAddr, Result<SessionSummary, NetError>)>;

fn spawn_bs(sessions: usize) -> (SocketAddr, thread::JoinHandle<ServedSessions>) {
    let server = BsServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = thread::spawn(move || server.run(Some(sessions)));
    (addr, handle)
}

/// Trains the same config in-process and over the socket; returns both
/// outcomes plus the client/server link counters.
fn train_both(
    cfg: ExperimentConfig,
    ds: &SequenceDataset,
) -> (
    sl_core::TrainOutcome,
    sl_core::TrainOutcome,
    sl_net::NetMetrics,
    sl_net::FaultCounters,
    SessionSummary,
) {
    let mut inproc = SplitTrainer::new(cfg.clone(), ds);
    let a = inproc.train(ds);

    let (addr, server) = spawn_bs(1);
    let client = UeClient::connect(addr, RetryPolicy::default()).expect("connect");
    let mut net = NetTrainer::new(cfg, ds, client).expect("handshake");
    let b = net.train(ds).expect("networked training");
    let metrics = net.client_mut().metrics();
    let faults = net.client_mut().fault_counters();
    net.finish().expect("clean shutdown");

    let mut served = server.join().expect("server thread");
    assert_eq!(served.len(), 1);
    let summary = served.pop().unwrap().1.expect("session ok");
    assert!(summary.clean_shutdown);
    (a, b, metrics, faults, summary)
}

fn assert_byte_identical(a: &sl_core::TrainOutcome, b: &sl_core::TrainOutcome) {
    assert_eq!(a.curve.len(), b.curve.len(), "curve lengths differ");
    for (pa, pb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(pa.epoch, pb.epoch);
        assert_eq!(
            pa.elapsed_s.to_bits(),
            pb.elapsed_s.to_bits(),
            "elapsed_s diverged at epoch {}: {} vs {}",
            pa.epoch,
            pa.elapsed_s,
            pb.elapsed_s
        );
        assert_eq!(
            pa.val_rmse_db.to_bits(),
            pb.val_rmse_db.to_bits(),
            "val_rmse_db diverged at epoch {}: {} vs {}",
            pa.epoch,
            pa.val_rmse_db,
            pb.val_rmse_db
        );
    }
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.steps_applied, b.steps_applied);
    assert_eq!(a.steps_voided, b.steps_voided);
    assert_eq!(a.final_rmse_db.to_bits(), b.final_rmse_db.to_bits());
    assert_eq!(a.compute_s.to_bits(), b.compute_s.to_bits());
    assert_eq!(a.airtime_s.to_bits(), b.airtime_s.to_bits());
}

#[test]
fn imgrf_loopback_is_byte_identical_to_in_process() {
    let ds = dataset(90);
    let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4));
    let (a, b, metrics, _faults, summary) = train_both(cfg, &ds);
    assert_byte_identical(&a, &b);
    assert_eq!(summary.steps, b.steps_applied);
    assert!(metrics.handshakes == 1);
    assert!(metrics.frames_sent > 0 && metrics.frames_received > 0);
}

#[test]
fn rf_only_loopback_is_byte_identical_to_in_process() {
    let ds = dataset(91);
    let cfg = ExperimentConfig::quick(Scheme::RfOnly, PoolingDim::new(4, 4));
    let (a, b, _metrics, faults, summary) = train_both(cfg, &ds);
    assert_byte_identical(&a, &b);
    assert_eq!(summary.steps, b.steps_applied);
    // RF-only rides no simulated channel: the wire stays fault-free.
    assert_eq!(faults.corrupted, 0);
}

#[test]
fn lossy_uplink_realizes_retransmissions_as_wire_faults() {
    let ds = dataset(92);
    let mut cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4));
    // ~0.73 per-slot decode probability for the quick 4096-bit payload:
    // plenty of retransmissions, but every payload still delivers.
    cfg.uplink = LinkConfig::paper_uplink().with_mean_snr_db(-5.0);
    let (a, b, metrics, faults, summary) = train_both(cfg, &ds);
    // Byte identity holds *through* the fault/Nack/resend machinery.
    assert_byte_identical(&a, &b);
    assert!(
        faults.corrupted > 0,
        "lossy link injected no wire faults: {faults:?}"
    );
    assert!(
        metrics.retries > 0 && metrics.nacks_received > 0,
        "corrupted uplink frames must be Nack'd and resent: {metrics:?}"
    );
    assert_eq!(summary.nacks_sent, metrics.nacks_received);
    assert_eq!(
        summary.resends, 0,
        "uplink faults resend requests, not replies"
    );
}

#[test]
fn bs_spans_stitch_under_the_ue_trace_across_a_lossy_link() {
    use sl_telemetry::{
        check_spans, MemorySink, SpanRecord, Telemetry, TelemetryMode, BS_SPAN_NAMESPACE,
    };

    let ds = dataset(93);
    let mut cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(4, 4));
    // Lossy enough for plenty of Nack/resend recovery, but every payload
    // still delivers.
    cfg.uplink = LinkConfig::paper_uplink().with_mean_snr_db(-5.0);

    let (addr, server) = spawn_bs(1);
    let client = UeClient::connect(addr, RetryPolicy::default()).expect("connect");
    let mut net = NetTrainer::new_traced(cfg, &ds, client, true).expect("handshake");
    let (sink, events) = MemorySink::new();
    let mut tele = Telemetry::with_sink(TelemetryMode::Jsonl, Box::new(sink));
    tele.set_tracing(true);
    let out = net.train_with(&ds, &mut tele).expect("networked training");
    let metrics = net.client_mut().metrics();
    net.finish().expect("clean shutdown");

    let mut served = server.join().expect("server thread");
    let summary = served.pop().unwrap().1.expect("session ok");
    assert!(summary.clean_shutdown);

    // UE-side spans come back out of the journal sink.
    let ue_spans: Vec<SpanRecord> = events
        .borrow()
        .iter()
        .filter_map(SpanRecord::from_event)
        .collect();
    assert!(!ue_spans.is_empty(), "traced run journaled no spans");
    let trace_id = ue_spans[0].trace_id;
    assert_ne!(trace_id, 0);
    assert!(ue_spans.iter().all(|s| s.trace_id == trace_id));
    assert_eq!(
        ue_spans.iter().filter(|s| s.name == "train.step").count() as u64,
        out.steps_applied + out.steps_voided,
        "one root span per attempted step"
    );

    // The lossy uplink produced real recovery spans.
    assert!(metrics.retries > 0, "lossy link produced no retries");
    assert!(
        ue_spans.iter().any(|s| s.name == "net.retry"),
        "retries must be visible in the trace"
    );

    // BS-side spans stitch under the UE's trace id, in the BS id
    // namespace, each parented to a UE-side `bs.compute` span.
    assert!(!summary.spans.is_empty(), "BS recorded no spans");
    let bs_compute_ids: Vec<u64> = ue_spans
        .iter()
        .filter(|s| s.name == "bs.compute")
        .map(|s| s.span_id)
        .collect();
    for s in &summary.spans {
        assert_eq!(s.trace_id, trace_id, "BS span outside the UE trace");
        assert_ne!(s.span_id & BS_SPAN_NAMESPACE, 0);
        if s.name == "bs.step" {
            assert!(
                bs_compute_ids.contains(&s.parent_id),
                "bs.step parent {:016x} is not a UE bs.compute span",
                s.parent_id
            );
        }
    }
    assert_eq!(
        summary.spans.iter().filter(|s| s.name == "bs.step").count() as u64,
        summary.steps,
        "one bs.step span per applied step"
    );

    // The merged two-sided trace is well-formed.
    let mut merged = ue_spans;
    merged.extend(summary.spans.iter().cloned());
    let stats = check_spans(&merged).expect("merged trace is well-formed");
    assert_eq!(stats.traces, 1);
}

/// A handshaken RF-only session for driving the client directly.
fn rf_spec() -> SessionSpec {
    SessionSpec {
        scheme: Scheme::RfOnly,
        pooling: PoolingDim::new(4, 4),
        image_h: 16,
        image_w: 16,
        seq_len: 4,
        batch_size: 8,
        conv_channels: 2,
        hidden_dim: 8,
        rnn_cell: sl_core::RnnCell::Lstm,
        bit_depth: 8,
        learning_rate: 5e-3,
        grad_clip: 5.0,
        seed: 7,
        trace_id: 0,
    }
}

fn rf_step_request() -> StepRequest {
    StepRequest {
        batch: 8,
        seq_len: 4,
        pooled_h: 0,
        pooled_w: 0,
        packed: Vec::new(),
        powers: (0..32).map(|i| (i as f32) / 32.0).collect(),
        targets: (0..8).map(|i| (i as f32) / 8.0 - 0.5).collect(),
    }
}

#[test]
fn dropped_request_times_out_and_is_retried() {
    let (addr, server) = spawn_bs(1);
    let retry = RetryPolicy {
        max_extra_attempts: 4,
        read_timeout: Duration::from_millis(150),
        backoff: Duration::from_millis(5),
    };
    let mut client = UeClient::connect(addr, retry).expect("connect");
    client.handshake(&rf_spec()).expect("handshake");

    // Swallow the first request frame entirely: the BS never sees it,
    // the read deadline expires, and the client must resend.
    let plan = FaultPlan::from_actions(vec![FaultAction::Drop]);
    let reply = client
        .train_step(&rf_step_request(), false, plan, FaultPlan::clean(), None)
        .expect("step recovers after timeout");
    assert!(reply.loss.is_finite());
    let m = client.metrics();
    assert_eq!(m.timeouts, 1, "exactly one read deadline expired: {m:?}");
    assert!(m.retries >= 1, "the dropped frame was resent: {m:?}");

    client.shutdown().expect("shutdown");
    let served = server.join().expect("server thread");
    let summary = served[0].1.as_ref().expect("session ok");
    // The server saw one request, served one step — the drop happened
    // before its doorstep.
    assert_eq!(summary.steps, 1);
}

#[test]
fn corrupted_reply_is_nacked_and_resent_without_recomputing() {
    let (addr, server) = spawn_bs(1);
    let mut client = UeClient::connect(addr, RetryPolicy::default()).expect("connect");
    client.handshake(&rf_spec()).expect("handshake");

    // Corrupt the *reply* in flight: the client Nacks, the server
    // resends the cached frame instead of double-applying the step.
    let plan = FaultPlan::from_actions(vec![FaultAction::Corrupt]);
    let first = client
        .train_step(&rf_step_request(), false, FaultPlan::clean(), plan, None)
        .expect("step recovers after reply corruption");
    assert!(first.loss.is_finite());
    let m = client.metrics();
    assert!(m.nacks_sent >= 1, "corrupted reply must be Nack'd: {m:?}");

    client.shutdown().expect("shutdown");
    let served = server.join().expect("server thread");
    let summary = served[0].1.as_ref().expect("session ok");
    assert_eq!(summary.steps, 1, "the Adam step must not be re-applied");
    assert_eq!(summary.resends, 1);
    assert_eq!(summary.nacks_received, 1);
}

#[test]
fn miswired_handshake_is_rejected_with_the_shape_trace() {
    let (addr, server) = spawn_bs(1);
    let mut client = UeClient::connect(addr, RetryPolicy::default()).expect("connect");
    let mut spec = rf_spec();
    spec.scheme = Scheme::ImgRf;
    spec.pooling = PoolingDim::new(3, 3); // does not tile 16x16
    match client.handshake(&spec) {
        Err(NetError::HandshakeRejected(detail)) => {
            assert!(detail.contains("does not tile"), "{detail}");
        }
        other => panic!("expected a wiring rejection, got {other:?}"),
    }
    let served = server.join().expect("server thread");
    let summary = served[0].1.as_ref().expect("session closed cleanly");
    assert_eq!(summary.steps, 0);
    assert!(!summary.clean_shutdown);
}

#[test]
fn training_bytes_before_handshake_are_refused() {
    let (addr, server) = spawn_bs(1);
    let mut client = UeClient::connect(addr, RetryPolicy::default()).expect("connect");
    let err = client
        .train_step(
            &rf_step_request(),
            false,
            FaultPlan::clean(),
            FaultPlan::clean(),
            None,
        )
        .expect_err("step without handshake must fail");
    match err {
        NetError::Nack { code, .. } => assert_eq!(code, NackCode::Protocol),
        other => panic!("expected a protocol Nack, got {other}"),
    }
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn version_mismatch_is_nacked_and_closed() {
    use sl_net::wire::{fnv1a_64, HEADER_LEN, MAGIC};
    use std::io::{Read, Write};

    let (addr, server) = spawn_bs(1);
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Hand-roll a Heartbeat frame claiming protocol version 99.
    let mut frame = Vec::with_capacity(HEADER_LEN + 8);
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&99u16.to_le_bytes()); // bad version
    frame.push(MsgType::Heartbeat as u8);
    frame.push(0); // flags
    frame.extend_from_slice(&0u32.to_le_bytes()); // empty payload
    let sum = fnv1a_64(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    stream.write_all(&frame).expect("send bad-version frame");

    // The server Nacks with BadVersion and closes the connection.
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read until close");
    let decoded = sl_net::decode_frame(&reply).expect("reply decodes");
    assert_eq!(decoded.ty, MsgType::Nack);
    let (code, detail) = sl_net::wire::decode_nack(&decoded.payload).expect("nack payload");
    assert_eq!(code, NackCode::BadVersion);
    assert!(detail.contains("version 99"), "{detail}");

    let served = server.join().expect("server thread");
    let summary = served[0].1.as_ref().expect("session closed cleanly");
    assert!(!summary.clean_shutdown);
}
