//! Property-based fuzzing of the wire codec: every frame and payload
//! round-trips bit-exactly, and no mutation of a valid frame — or raw
//! garbage — ever panics the decoder (typed errors only).

use proptest::prelude::*;

use sl_core::{PoolingDim, Scheme};
use sl_net::wire::{
    decode_frame, encode_frame, pack_activations, unpack_activations, MsgType, SessionSpec,
    StepReply, StepRequest, TraceContext, FLAG_TRACE, FLAG_WANT_RATIO,
};
use sl_net::{FaultPlan, NetError};

fn any_msg_type() -> impl Strategy<Value = MsgType> {
    (1u8..=10).prop_map(|b| MsgType::from_u8(b).expect("1..=10 are all valid types"))
}

fn any_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_roundtrip_bit_exactly(ty in any_msg_type(), flags in 0u8..=3, payload in any_payload()) {
        let bytes = encode_frame(ty, flags, &payload);
        let frame = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(frame.ty, ty);
        prop_assert_eq!(frame.flags, flags);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn single_byte_corruption_never_decodes_and_never_panics(
        ty in any_msg_type(),
        payload in any_payload(),
        pos in 0usize..1000,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(ty, 0, &payload);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        // Whatever byte was hit — magic, version, type, length, payload
        // or checksum — the decoder reports a typed error. (A length
        // corruption makes the buffer the wrong size for its header;
        // everything else fails the checksum or field validation.)
        prop_assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn truncation_never_panics(ty in any_msg_type(), payload in any_payload(), keep in 0usize..300) {
        let bytes = encode_frame(ty, 0, &payload);
        let keep = keep.min(bytes.len().saturating_sub(1));
        prop_assert!(decode_frame(&bytes[..keep]).is_err());
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        // Random bytes essentially never carry a valid FNV trailer; what
        // matters is that the decoder returns instead of panicking.
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn activation_packing_roundtrips_every_grid_level(
        bit_depth in 1usize..=24,
        levels in proptest::collection::vec(0u32..=0xFF_FFFF, 1..64),
    ) {
        let max = (1u32 << bit_depth) - 1;
        let values: Vec<f32> = levels.iter().map(|&k| (k % (max + 1)) as f32 / max as f32).collect();
        let packed = pack_activations(&values, bit_depth).expect("grid values pack");
        prop_assert_eq!(packed.len(), (values.len() * bit_depth).div_ceil(8));
        let back = unpack_activations(&packed, values.len(), bit_depth).expect("unpack");
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn off_grid_activations_are_typed_errors(bit_depth in 1usize..=12, noise in 0.00004f32..0.49) {
        // Halfway between grid points is never representable.
        let max = (1u32 << bit_depth) - 1;
        let q = (0.5 + noise) / max as f32;
        let r = pack_activations(&[q], bit_depth);
        prop_assert!(
            matches!(r, Err(NetError::Decode(_))),
            "expected a typed Decode error for off-grid {}, got {:?}", q, r
        );
    }

    #[test]
    fn step_request_roundtrips(
        b in 1usize..9,
        l in 1usize..5,
        ph in 1usize..5,
        pw in 1usize..5,
        bit_depth in 1usize..=16,
        raw in proptest::collection::vec(0u32..=0xFFFF, 1..64),
    ) {
        let max = (1u32 << bit_depth) - 1;
        let count = b * l * ph * pw;
        let values: Vec<f32> = (0..count).map(|i| (raw[i % raw.len()] % (max + 1)) as f32 / max as f32).collect();
        let req = StepRequest {
            batch: b,
            seq_len: l,
            pooled_h: ph,
            pooled_w: pw,
            packed: pack_activations(&values, bit_depth).expect("pack"),
            powers: (0..b * l).map(|i| i as f32 * 0.125 - 1.0).collect(),
            targets: (0..b).map(|i| i as f32 * 0.25).collect(),
        };
        prop_assert_eq!(req.msg_type(), MsgType::Activations);
        let back = StepRequest::decode(&req.encode()).expect("decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn step_reply_roundtrips_with_and_without_ratio(
        loss in 0.0f32..10.0,
        norm in 0.0f32..100.0,
        ratio in 0.0f64..1.0,
        with_ratio in 0u8..2,
        grad in proptest::collection::vec(-1.0f32..1.0, 0..64),
    ) {
        let reply = StepReply {
            loss,
            bs_grad_norm: norm,
            update_ratio_bs: (with_ratio == 1).then_some(ratio),
            cut_grad: grad,
        };
        let (flags, payload) = reply.encode();
        prop_assert_eq!(flags & FLAG_WANT_RATIO != 0, with_ratio == 1);
        let back = StepReply::decode(flags, &payload).expect("decode");
        prop_assert_eq!(back, reply);
    }

    #[test]
    fn session_spec_roundtrips(
        scheme in 0u8..3,
        cell in 0u8..2,
        bit_depth in 1usize..=24,
        dims in (1usize..64, 1usize..64, 1usize..8, 1usize..128),
        widths in (1usize..16, 1usize..64),
        seed in 0u64..u64::MAX,
        trace_id in 0u64..u64::MAX,
    ) {
        let (image_h, image_w, seq_len, batch_size) = dims;
        let (conv_channels, hidden_dim) = widths;
        let spec = SessionSpec {
            scheme: [Scheme::RfOnly, Scheme::ImgOnly, Scheme::ImgRf][scheme as usize],
            pooling: PoolingDim::new(1 + image_h % 8, 1 + image_w % 8),
            image_h,
            image_w,
            seq_len,
            batch_size,
            conv_channels,
            hidden_dim,
            rnn_cell: [sl_core::RnnCell::Lstm, sl_core::RnnCell::Gru][cell as usize],
            bit_depth,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            seed,
            trace_id,
        };
        let back = SessionSpec::decode(&spec.encode()).expect("decode");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn trace_context_rides_any_frame_bit_exactly(
        ty in any_msg_type(),
        want_ratio in proptest::prelude::prop::bool::ANY,
        payload in any_payload(),
        ids in (1u64..u64::MAX, 1u64..u64::MAX),
        window in (0u64..1 << 40, 0u64..1 << 30),
    ) {
        let ctx = TraceContext {
            trace_id: ids.0,
            parent_span: ids.1,
            sim_anchor_us: window.0,
            sim_dur_us: window.1,
        };
        let (flag, with_ctx) = ctx.prepend(&payload);
        prop_assert_eq!(flag, FLAG_TRACE);
        let base = if want_ratio { FLAG_WANT_RATIO } else { 0 };
        let bytes = encode_frame(ty, base | flag, &with_ctx);
        let frame = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(frame.flags & FLAG_WANT_RATIO != 0, want_ratio);
        let (back, body) = TraceContext::strip(frame.flags, &frame.payload).expect("strip");
        prop_assert_eq!(back, Some(ctx));
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn untraced_frames_strip_to_no_context(payload in any_payload()) {
        let bytes = encode_frame(MsgType::Activations, FLAG_WANT_RATIO, &payload);
        let frame = decode_frame(&bytes).expect("decodes");
        let (ctx, body) = TraceContext::strip(frame.flags, &frame.payload).expect("strip");
        prop_assert_eq!(ctx, None);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn corrupted_trace_prefix_is_caught_by_the_checksum(
        payload in any_payload(),
        pos in 0usize..32,
        flip in 1u8..=255,
    ) {
        // Flip one bit inside the 32-byte trace-context prefix: the FNV
        // trailer covers it, so the frame must fail checksum (never
        // deliver a silently-wrong trace id).
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            parent_span: (1 << 63) | 7,
            sim_anchor_us: 1_000_000,
            sim_dur_us: 2_500,
        };
        let (flag, with_ctx) = ctx.prepend(&payload);
        let mut bytes = encode_frame(MsgType::Activations, flag, &with_ctx);
        bytes[sl_net::wire::HEADER_LEN + pos] ^= flip;
        prop_assert!(
            matches!(decode_frame(&bytes), Err(NetError::ChecksumMismatch { .. })),
            "corrupt trace prefix must fail the checksum"
        );
    }

    #[test]
    fn retransmission_plans_have_one_fault_per_extra_slot(extra in 0u64..64) {
        let plan = FaultPlan::retransmissions(extra);
        prop_assert_eq!(plan.len() as u64, extra);
    }
}
