//! Deterministic fault injection for the framed transport.
//!
//! [`Faulty`] wraps any `Read + Write` byte stream and perturbs it at
//! **frame** granularity: it scans the byte stream for `sl-net` frame
//! boundaries (the 12-byte header carries the payload length, and the
//! fault injector never touches headers, so it can always stay aligned)
//! and applies one [`FaultAction`] per matching frame, popped from an
//! armed [`FaultPlan`].
//!
//! Faults are *planned*, not sampled inline: the networked trainer
//! derives each step's plan from the same seeded
//! [`sl_channel::TransferSimulator`] draws the in-process trainer makes
//! — a payload the channel model says took `n` slots to deliver becomes
//! `n − 1` corrupted frames followed by one clean one. That keeps the
//! loopback run byte-identical to the simulation while exercising the
//! real retry machinery. Random plans for stress tests come from
//! [`FaultPlan::seeded`], which draws from a seeded [`rand::rngs::StdRng`].
//!
//! Corruption flips exactly one byte: the first payload byte, or the
//! first checksum byte when the payload is empty. Headers and lengths
//! stay intact, so a corrupted frame is received as a frame-aligned
//! [`crate::NetError::ChecksumMismatch`] — a typed error, never a
//! desynchronized stream.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::{HEADER_LEN, TRAILER_LEN};

/// What happens to one frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass through untouched.
    Deliver,
    /// Flip the first payload byte (first checksum byte for empty
    /// payloads) — the receiver sees a checksum mismatch.
    Corrupt,
    /// Swallow the frame entirely (write side only) — the receiver sees
    /// nothing and the sender's read deadline expires.
    Drop,
    /// Deliver, but account the frame as delayed by this many slots
    /// (bookkeeping only; no wall-clock sleep, determinism is sacred).
    Delay(u32),
}

/// An ordered per-frame fault schedule. Frames beyond the plan are
/// delivered clean.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    actions: VecDeque<FaultAction>,
}

impl FaultPlan {
    /// The empty plan (everything delivers).
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit action list.
    pub fn from_actions(actions: Vec<FaultAction>) -> Self {
        FaultPlan {
            actions: actions.into(),
        }
    }

    /// The channel-derived plan: `failures` corrupted frames, then clean
    /// delivery — exactly a `TransferSimulator` outcome of
    /// `failures + 1` slots.
    pub fn retransmissions(failures: u64) -> Self {
        FaultPlan {
            actions: (0..failures).map(|_| FaultAction::Corrupt).collect(),
        }
    }

    /// A seeded random plan for stress tests: each of `len` frames is
    /// corrupted with probability `corrupt_p`, dropped with `drop_p`,
    /// delayed with `delay_p` (in that priority order), else delivered.
    pub fn seeded(seed: u64, len: usize, corrupt_p: f64, drop_p: f64, delay_p: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let actions = (0..len)
            .map(|_| {
                let u: f64 = rng.random_range(0.0..1.0);
                if u < corrupt_p {
                    FaultAction::Corrupt
                } else if u < corrupt_p + drop_p {
                    FaultAction::Drop
                } else if u < corrupt_p + drop_p + delay_p {
                    FaultAction::Delay(1 + (rng.random_range(0.0..1.0) * 4.0) as u32)
                } else {
                    FaultAction::Deliver
                }
            })
            .collect();
        FaultPlan { actions }
    }

    /// Actions still pending.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are pending.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    fn pop(&mut self) -> FaultAction {
        self.actions.pop_front().unwrap_or(FaultAction::Deliver)
    }
}

/// Counters over every fault actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Frames that passed through the injector (either direction).
    pub frames: u64,
    /// Frames whose payload byte was flipped.
    pub corrupted: u64,
    /// Frames swallowed on the write side.
    pub dropped: u64,
    /// Frames delivered late.
    pub delayed: u64,
    /// Total slots of injected delay.
    pub delay_slots: u64,
}

impl FaultCounters {
    fn apply(&mut self, action: FaultAction) {
        self.frames += 1;
        match action {
            FaultAction::Deliver => {}
            FaultAction::Corrupt => self.corrupted += 1,
            FaultAction::Drop => self.dropped += 1,
            FaultAction::Delay(slots) => {
                self.delayed += 1;
                self.delay_slots += slots as u64;
            }
        }
    }
}

/// One direction's plan plus its message-type scope.
#[derive(Debug, Default)]
struct ArmedPlan {
    plan: FaultPlan,
    /// When set, only frames of this wire type consume plan actions;
    /// all other frames deliver clean. This lets a step's downlink plan
    /// target `Gradients` frames without perturbing the `Nack` chatter
    /// of its own uplink retries.
    scope: Option<u8>,
}

impl ArmedPlan {
    fn action_for(&mut self, msg_type: u8) -> FaultAction {
        match self.scope {
            Some(scope) if scope != msg_type => FaultAction::Deliver,
            _ => self.plan.pop(),
        }
    }
}

/// A fault-injecting `Read + Write` wrapper over any transport.
///
/// Both directions buffer whole frames: a write is forwarded to the
/// inner stream only once the complete frame has been assembled (and
/// possibly corrupted or dropped); a read pulls one complete frame from
/// the inner stream, applies the read-side action, and serves the bytes.
/// Only framed `sl-net` traffic may pass through this wrapper.
#[derive(Debug)]
pub struct Faulty<T> {
    inner: T,
    write_plan: ArmedPlan,
    read_plan: ArmedPlan,
    /// Partial outbound frame not yet fully assembled.
    write_pending: Vec<u8>,
    /// Inbound bytes already faulted and ready for the caller.
    read_ready: Vec<u8>,
    read_pos: usize,
    /// Partial inbound frame accumulated across short reads/timeouts.
    read_pending: Vec<u8>,
    counters: FaultCounters,
}

impl<T> Faulty<T> {
    /// Wraps `inner` with no faults armed (fully transparent).
    pub fn new(inner: T) -> Self {
        Faulty {
            inner,
            write_plan: ArmedPlan::default(),
            read_plan: ArmedPlan::default(),
            write_pending: Vec::new(),
            read_ready: Vec::new(),
            read_pos: 0,
            read_pending: Vec::new(),
            counters: FaultCounters::default(),
        }
    }

    /// Arms the write-side plan. With `scope`, only frames of that
    /// message type consume actions.
    pub fn arm_write(&mut self, plan: FaultPlan, scope: Option<u8>) {
        self.write_plan = ArmedPlan { plan, scope };
    }

    /// Arms the read-side plan (Corrupt/Delay/Deliver only — a frame
    /// that was already received cannot be un-sent).
    pub fn arm_read(&mut self, plan: FaultPlan, scope: Option<u8>) {
        assert!(
            !plan.actions.contains(&FaultAction::Drop),
            "Faulty: Drop is a write-side fault"
        );
        self.read_plan = ArmedPlan { plan, scope };
    }

    /// Fault counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }
}

/// Flips the fault byte of a complete frame in place: the first payload
/// byte, or the first trailer byte when the payload is empty.
fn corrupt_frame(frame: &mut [u8]) {
    debug_assert!(frame.len() >= HEADER_LEN + TRAILER_LEN);
    frame[HEADER_LEN] ^= 0xff;
}

/// Total frame length once the 12 header bytes are known.
fn frame_len(header: &[u8]) -> usize {
    let payload = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    HEADER_LEN + payload + TRAILER_LEN
}

impl<T: Write> Write for Faulty<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_pending.extend_from_slice(buf);
        // Forward every fully-assembled frame.
        while self.write_pending.len() >= HEADER_LEN {
            let total = frame_len(&self.write_pending);
            if self.write_pending.len() < total {
                break;
            }
            let mut frame: Vec<u8> = self.write_pending.drain(..total).collect();
            let action = self.write_plan.action_for(frame[6]);
            self.counters.apply(action);
            match action {
                FaultAction::Drop => {}
                FaultAction::Corrupt => {
                    corrupt_frame(&mut frame);
                    self.inner.write_all(&frame)?;
                }
                FaultAction::Deliver | FaultAction::Delay(_) => {
                    self.inner.write_all(&frame)?;
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Read> Faulty<T> {
    /// Pulls one complete frame from the inner stream into `read_ready`,
    /// applying the read-side action. Resumable: on a timeout mid-frame
    /// the partial bytes stay in `read_pending` for the next call.
    fn fill_one_frame(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        loop {
            let need = if self.read_pending.len() < HEADER_LEN {
                HEADER_LEN
            } else {
                frame_len(&self.read_pending)
            };
            if self.read_pending.len() >= need && need > HEADER_LEN {
                break;
            }
            let want = (need - self.read_pending.len()).min(chunk.len());
            let n = self.inner.read(&mut chunk[..want])?;
            if n == 0 {
                if self.read_pending.is_empty() {
                    return Ok(0); // clean EOF between frames
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame",
                ));
            }
            self.read_pending.extend_from_slice(&chunk[..n]);
        }
        let total = frame_len(&self.read_pending);
        let mut frame: Vec<u8> = self.read_pending.drain(..total).collect();
        let action = self.read_plan.action_for(frame[6]);
        self.counters.apply(action);
        if action == FaultAction::Corrupt {
            corrupt_frame(&mut frame);
        }
        self.read_ready = frame;
        self.read_pos = 0;
        Ok(total)
    }
}

impl<T: Read> Read for Faulty<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read_pos >= self.read_ready.len() && self.fill_one_frame()? == 0 {
            return Ok(0);
        }
        let n = buf.len().min(self.read_ready.len() - self.read_pos);
        buf[..n].copy_from_slice(&self.read_ready[self.read_pos..self.read_pos + n]);
        self.read_pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, MsgType, NetError};
    use std::io::Cursor;

    /// An in-memory sink implementing Write.
    #[derive(Default)]
    struct Sink(Vec<u8>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Read for Sink {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let mut f = Faulty::new(Sink::default());
        let frame = encode_frame(MsgType::Heartbeat, 0, b"ping");
        f.write_all(&frame).unwrap();
        assert_eq!(f.get_ref().0, frame);
        assert_eq!(f.counters().frames, 1);
        assert_eq!(f.counters().corrupted, 0);
    }

    #[test]
    fn corrupt_then_deliver_write_side() {
        let mut f = Faulty::new(Sink::default());
        f.arm_write(FaultPlan::retransmissions(1), None);
        let frame = encode_frame(MsgType::Activations, 0, &[9, 9, 9]);
        f.write_all(&frame).unwrap();
        f.write_all(&frame).unwrap();
        let written = &f.get_ref().0;
        assert_eq!(written.len(), frame.len() * 2);
        // First copy corrupted -> checksum mismatch; second clean.
        assert!(matches!(
            decode_frame(&written[..frame.len()]),
            Err(NetError::ChecksumMismatch { .. })
        ));
        assert!(decode_frame(&written[frame.len()..]).is_ok());
        assert_eq!(f.counters().corrupted, 1);
    }

    #[test]
    fn drop_swallows_the_frame() {
        let mut f = Faulty::new(Sink::default());
        f.arm_write(FaultPlan::from_actions(vec![FaultAction::Drop]), None);
        let frame = encode_frame(MsgType::Heartbeat, 0, &[]);
        f.write_all(&frame).unwrap();
        assert!(f.get_ref().0.is_empty());
        f.write_all(&frame).unwrap();
        assert_eq!(f.get_ref().0, frame);
        assert_eq!(f.counters().dropped, 1);
    }

    #[test]
    fn scope_limits_faults_to_one_message_type() {
        let mut f = Faulty::new(Sink::default());
        f.arm_write(
            FaultPlan::retransmissions(1),
            Some(MsgType::Activations as u8),
        );
        let nack = encode_frame(MsgType::Nack, 0, &[0, 0]);
        let act = encode_frame(MsgType::Activations, 0, &[1]);
        f.write_all(&nack).unwrap();
        f.write_all(&act).unwrap();
        let written = f.get_ref().0.clone();
        assert!(decode_frame(&written[..nack.len()]).is_ok(), "nack clean");
        assert!(
            matches!(
                decode_frame(&written[nack.len()..]),
                Err(NetError::ChecksumMismatch { .. })
            ),
            "activations corrupted"
        );
    }

    #[test]
    fn split_writes_reassemble_frames() {
        // Bytes dribbled one at a time must still fault whole frames.
        let mut f = Faulty::new(Sink::default());
        f.arm_write(FaultPlan::retransmissions(1), None);
        let frame = encode_frame(MsgType::Gradients, 0, &[7; 33]);
        for b in &frame {
            f.write_all(std::slice::from_ref(b)).unwrap();
        }
        assert!(matches!(
            decode_frame(&f.get_ref().0),
            Err(NetError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn read_side_corruption_and_delay() {
        let a = encode_frame(MsgType::Gradients, 0, &[1, 2, 3]);
        let b = encode_frame(MsgType::Gradients, 0, &[4, 5, 6]);
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut f = Faulty::new(Cursor::new(stream));
        f.arm_read(
            FaultPlan::from_actions(vec![FaultAction::Corrupt, FaultAction::Delay(3)]),
            None,
        );
        let mut buf = vec![0u8; a.len()];
        f.read_exact(&mut buf).unwrap();
        assert!(matches!(
            decode_frame(&buf),
            Err(NetError::ChecksumMismatch { .. })
        ));
        f.read_exact(&mut buf).unwrap();
        assert!(decode_frame(&buf).is_ok());
        assert_eq!(f.counters().delayed, 1);
        assert_eq!(f.counters().delay_slots, 3);
    }

    #[test]
    fn read_eof_between_frames_is_clean() {
        let mut f = Faulty::new(Cursor::new(Vec::<u8>::new()));
        let mut buf = [0u8; 16];
        assert_eq!(f.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 0.3, 0.1, 0.1);
        let b = FaultPlan::seeded(42, 100, 0.3, 0.1, 0.1);
        assert_eq!(a.actions, b.actions);
        let c = FaultPlan::seeded(43, 100, 0.3, 0.1, 0.1);
        assert_ne!(a.actions, c.actions);
        assert!(a.actions.iter().any(|x| *x == FaultAction::Corrupt));
    }
}
