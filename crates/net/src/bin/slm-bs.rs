//! **slm-bs** — the BS side of the networked split-learning runtime.
//!
//! Binds a TCP listener, serves UE sessions (one thread per connection,
//! model compute serialized behind a shared lock) and journals one
//! summary line per finished session. With `SLM_TELEMETRY=jsonl` the
//! journal also receives the server-side spans of traced sessions
//! (`SLM_TRACE=on` on the UE side), which `slm-trace` merges with the
//! UE journal into one Perfetto timeline.
//!
//! ```sh
//! cargo run --release -p sl-net --bin slm-bs -- \
//!     --addr 127.0.0.1:0 --sessions 5 --port-file results/bs.port \
//!     --metrics-port 0 --metrics-port-file results/bs.metrics
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--port-file` writes
//! the resolved address so a harness can point `slm-ue` at it.
//! `--sessions N` exits after `N` sessions (default: serve forever).
//!
//! `--metrics-port PORT` additionally serves a read-only plaintext
//! metrics snapshot on `127.0.0.1:PORT` (0: ephemeral) — per-session
//! `net.session.<id>.*` gauges/counters plus fleet-wide `net.*` sums,
//! scrapeable while sessions are in flight (`slm-top --addr …`).
//! `--metrics-port-file` mirrors `--port-file` for that endpoint.
//!
//! Sessions are journaled *as they finish*, and every finished session
//! triggers a telemetry flush plus a `slm_bs.snapshot.json` rewrite
//! next to the journal, so a server killed mid-fleet has already
//! persisted everything its completed sessions produced.

use std::process::ExitCode;
use std::sync::Arc;

use sl_net::{spawn_metrics_endpoint, BsServer, LiveMetrics};
use sl_telemetry::Telemetry;

struct Args {
    addr: String,
    sessions: Option<usize>,
    port_file: Option<String>,
    metrics_port: Option<u16>,
    metrics_port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        sessions: None,
        port_file: None,
        metrics_port: None,
        metrics_port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--sessions" => {
                args.sessions = Some(
                    value("--sessions")?
                        .parse()
                        .map_err(|e| format!("--sessions: {e}"))?,
                )
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--metrics-port" => {
                args.metrics_port = Some(
                    value("--metrics-port")?
                        .parse()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                )
            }
            "--metrics-port-file" => args.metrics_port_file = Some(value("--metrics-port-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: slm-bs [--addr HOST:PORT] [--sessions N] [--port-file PATH] \
                     [--metrics-port PORT] [--metrics-port-file PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.metrics_port_file.is_some() && args.metrics_port.is_none() {
        return Err("--metrics-port-file requires --metrics-port".to_string());
    }
    Ok(args)
}

/// Rewrite `slm_bs.snapshot.json` next to the journal (jsonl mode
/// only). Called after every finished session and at shutdown so the
/// on-disk snapshot always reflects the latest fleet state.
fn write_live_snapshot(tele: &mut Telemetry) {
    let Some(dir) = tele.events_path().and_then(|p| p.parent()) else {
        return;
    };
    let path = dir.join("slm_bs.snapshot.json");
    let body = tele.snapshot().to_json() + "\n";
    if let Err(e) = std::fs::write(&path, body) {
        tele.warn(&format!("slm-bs: write {}: {e}", path.display()));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut tele = Telemetry::from_env("slm_bs");
    let server = match BsServer::bind(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            tele.warn(&format!("slm-bs: bind {}: {e}", args.addr));
            return ExitCode::FAILURE;
        }
    };
    let local = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            tele.warn(&format!("slm-bs: local_addr: {e}"));
            return ExitCode::FAILURE;
        }
    };
    tele.progress(&format!("slm-bs: listening on {local}"));
    if let Some(path) = &args.port_file {
        // The file is the readiness signal: write it only after the
        // listener is live so a polling harness can't race the bind.
        if let Err(e) = std::fs::write(path, local.to_string()) {
            tele.warn(&format!("slm-bs: write {path}: {e}"));
            return ExitCode::FAILURE;
        }
    }

    let live = Arc::new(LiveMetrics::new());
    if let Some(port) = args.metrics_port {
        let bind = format!("127.0.0.1:{port}");
        let metrics_addr = match spawn_metrics_endpoint(&bind, Arc::clone(&live)) {
            Ok(a) => a,
            Err(e) => {
                tele.warn(&format!("slm-bs: metrics bind {bind}: {e}"));
                return ExitCode::FAILURE;
            }
        };
        tele.progress(&format!("slm-bs: metrics on {metrics_addr}"));
        if let Some(path) = &args.metrics_port_file {
            // Same readiness contract as --port-file.
            if let Err(e) = std::fs::write(path, metrics_addr.to_string()) {
                tele.warn(&format!("slm-bs: write {path}: {e}"));
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures = 0usize;
    server.serve(args.sessions, Some(&live), |id, peer, outcome| {
        match outcome {
            Ok(s) => {
                tele.progress(&format!(
                    "slm-bs: {peer} session {id} [{}] steps {} evals {} heartbeats {} \
                     nacks sent/recv {}/{} resends {} frames {} bytes {}{}",
                    if s.config.is_empty() {
                        "no handshake"
                    } else {
                        &s.config
                    },
                    s.steps,
                    s.evals,
                    s.heartbeats,
                    s.nacks_sent,
                    s.nacks_received,
                    s.resends,
                    s.frames_received,
                    s.bytes_received,
                    if s.clean_shutdown { "" } else { " (unclean)" },
                ));
                // Traced sessions carry their server-side spans; journal
                // them so `slm-trace` can stitch UE + BS timelines.
                for span in &s.spans {
                    tele.emit(span.to_event());
                }
                // Fold the session into the registry: per-session scope
                // plus the fleet-wide aggregate (counters sum, gauges
                // last-write, DESIGN.md §11).
                let mut scope = tele.scoped(&format!("net.session.{id}"));
                scope.add("steps", s.steps);
                scope.add("evals", s.evals);
                scope.add("heartbeats", s.heartbeats);
                scope.add("nacks.sent", s.nacks_sent);
                scope.add("nacks.received", s.nacks_received);
                scope.add("resends", s.resends);
                scope.add("frames.received", s.frames_received);
                scope.add("bytes.received", s.bytes_received);
                scope.gauge_set("clean_shutdown", if s.clean_shutdown { 1.0 } else { 0.0 });
                if s.loss_ema.is_finite() && s.steps > 0 {
                    scope.gauge_set("loss_ema", s.loss_ema);
                }
                tele.absorb(&scope, Some("net.fleet"));
            }
            Err(e) => {
                failures += 1;
                tele.warn(&format!("slm-bs: {peer}: session {id} failed: {e}"));
            }
        }
        // Persist after *every* session — a server killed mid-fleet has
        // already journaled and snapshotted everything that finished.
        write_live_snapshot(&mut tele);
        tele.flush();
    });
    write_live_snapshot(&mut tele);
    tele.flush();
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
