//! **slm-bs** — the BS side of the networked split-learning runtime.
//!
//! Binds a TCP listener, serves UE sessions (one thread per connection,
//! model compute serialized behind a shared lock) and journals one
//! summary line per finished session. With `SLM_TELEMETRY=jsonl` the
//! journal also receives the server-side spans of traced sessions
//! (`SLM_TRACE=on` on the UE side), which `slm-trace` merges with the
//! UE journal into one Perfetto timeline.
//!
//! ```sh
//! cargo run --release -p sl-net --bin slm-bs -- \
//!     --addr 127.0.0.1:0 --sessions 5 --port-file results/bs.port
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--port-file` writes
//! the resolved address so a harness can point `slm-ue` at it.
//! `--sessions N` exits after `N` sessions (default: serve forever).

use std::process::ExitCode;

use sl_net::BsServer;
use sl_telemetry::Telemetry;

struct Args {
    addr: String,
    sessions: Option<usize>,
    port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        sessions: None,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--sessions" => {
                args.sessions = Some(
                    value("--sessions")?
                        .parse()
                        .map_err(|e| format!("--sessions: {e}"))?,
                )
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--help" | "-h" => {
                return Err(
                    "usage: slm-bs [--addr HOST:PORT] [--sessions N] [--port-file PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut tele = Telemetry::from_env("slm_bs");
    let server = match BsServer::bind(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            tele.warn(&format!("slm-bs: bind {}: {e}", args.addr));
            return ExitCode::FAILURE;
        }
    };
    let local = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            tele.warn(&format!("slm-bs: local_addr: {e}"));
            return ExitCode::FAILURE;
        }
    };
    tele.progress(&format!("slm-bs: listening on {local}"));
    if let Some(path) = &args.port_file {
        // The file is the readiness signal: write it only after the
        // listener is live so a polling harness can't race the bind.
        if let Err(e) = std::fs::write(path, local.to_string()) {
            tele.warn(&format!("slm-bs: write {path}: {e}"));
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0usize;
    for (peer, outcome) in server.run(args.sessions) {
        match outcome {
            Ok(s) => {
                tele.progress(&format!(
                    "slm-bs: {peer} [{}] steps {} evals {} heartbeats {} \
                     nacks sent/recv {}/{} resends {} frames {} bytes {}{}",
                    if s.config.is_empty() {
                        "no handshake"
                    } else {
                        &s.config
                    },
                    s.steps,
                    s.evals,
                    s.heartbeats,
                    s.nacks_sent,
                    s.nacks_received,
                    s.resends,
                    s.frames_received,
                    s.bytes_received,
                    if s.clean_shutdown { "" } else { " (unclean)" },
                ));
                // Traced sessions carry their server-side spans; journal
                // them so `slm-trace` can stitch UE + BS timelines.
                for span in &s.spans {
                    tele.emit(span.to_event());
                }
            }
            Err(e) => {
                failures += 1;
                tele.warn(&format!("slm-bs: {peer}: session failed: {e}"));
            }
        }
    }
    tele.flush();
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
