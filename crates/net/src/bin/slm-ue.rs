//! **slm-ue** — the UE side of the networked split-learning runtime:
//! Fig. 3a over a real socket.
//!
//! Runs the same five configurations as the in-process `fig3a` bench,
//! but with the BS half living in an `slm-bs` process reached over TCP
//! (one session per configuration). At `SLM_THREADS=1` the resulting
//! `results/fig3a_net/fig3a.csv` is **byte-identical** to
//! `results/fig3a/fig3a.csv` — the headline determinism contract of the
//! networked runtime (DESIGN.md §9), checked by `verify.sh`'s `net`
//! stage with a literal `cmp`.
//!
//! ```sh
//! cargo run --release -p sl-net --bin slm-bs -- \
//!     --addr 127.0.0.1:0 --sessions 5 --port-file /tmp/bs.port &
//! SLM_THREADS=1 cargo run --release -p sl-net --bin slm-ue -- \
//!     --addr "$(cat /tmp/bs.port)"
//! ```

use std::process::ExitCode;

use sl_bench::{
    build_dataset, experiment_config, fig3a_configs, fig3a_curve_rows, fig3a_label, sparkline,
    Experiment, FIG3A_CSV_HEADER,
};
use sl_net::{NetTrainer, RetryPolicy, UeClient};

struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        addr_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--addr-file" => args.addr_file = Some(value("--addr-file")?),
            "--help" | "-h" => {
                return Err("usage: slm-ue (--addr HOST:PORT | --addr-file PATH)".to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_none() && args.addr_file.is_none() {
        return Err("slm-ue: one of --addr or --addr-file is required".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => {
            let path = args.addr_file.as_deref().unwrap_or_default();
            match std::fs::read_to_string(path) {
                Ok(s) => s.trim().to_string(),
                Err(e) => {
                    eprintln!("slm-ue: read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut exp = Experiment::start("fig3a_net");
    let profile = exp.profile();
    let dataset = build_dataset(profile);
    exp.progress(&format!(
        "Fig. 3a over the socket runtime — BS at {addr} ({:?} profile: {} train / {} val sequences)",
        profile,
        dataset.train_indices().len(),
        dataset.val_indices().len()
    ));

    let retry = RetryPolicy::default();
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for (scheme, pooling) in fig3a_configs() {
        let wall = std::time::Instant::now();
        let label = fig3a_label(scheme, pooling);
        let cfg = experiment_config(profile, scheme, pooling);
        exp.record_run(&label, &cfg);
        // One BS session per configuration: connect, handshake, train,
        // clean shutdown.
        let client = match UeClient::connect(&addr, retry) {
            Ok(c) => c,
            Err(e) => {
                exp.telemetry()
                    .warn(&format!("slm-ue: connect {addr}: {e}"));
                return ExitCode::FAILURE;
            }
        };
        let run = NetTrainer::new(cfg, &dataset, client)
            .and_then(|mut t| t.train_with(&dataset, exp.telemetry()).map(|out| (t, out)))
            .and_then(|(t, out)| t.finish().map(|_| out));
        let out = match run {
            Ok(out) => out,
            Err(e) => {
                exp.telemetry().warn(&format!("slm-ue: {label}: {e}"));
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{label:<28} best {:>5.2} dB  final {:>5.2} dB  sim {:>7.2} s (air {:>6.2} s)  epochs {:>3}  stop {:?}  [wall {:.0} s]",
            out.best_rmse_db(),
            out.final_rmse_db,
            out.elapsed_s(),
            out.airtime_s,
            out.epochs,
            out.stop,
            wall.elapsed().as_secs_f64(),
        );
        let curve_vals: Vec<f32> = out.curve.iter().map(|p| p.val_rmse_db).collect();
        exp.progress(&format!("{label:<28} {}", sparkline(&curve_vals)));
        fig3a_curve_rows(&label, &out, &mut rows);
        outcomes.push((label, out));
    }

    exp.write_csv("fig3a.csv", FIG3A_CSV_HEADER, &rows);

    // Same invariant the in-process fig3a bin asserts: the telemetry
    // snapshot's simulated-time totals must agree with the trainers'
    // SimClocks to float precision.
    let snap = exp.telemetry().snapshot();
    if exp.telemetry().is_enabled() {
        let compute: f64 = outcomes.iter().map(|(_, o)| o.compute_s).sum();
        let airtime: f64 = outcomes.iter().map(|(_, o)| o.airtime_s).sum();
        assert!(
            (snap.gauge("sim.compute_s").unwrap_or(0.0) - compute).abs() < 1e-9,
            "telemetry compute time disagrees with SimClock"
        );
        assert!(
            (snap.gauge("sim.airtime_s").unwrap_or(0.0) - airtime).abs() < 1e-9,
            "telemetry airtime disagrees with SimClock"
        );
    }

    // Record the link configuration in the run manifest so a regression
    // report can tell networked runs from in-process ones.
    exp.annotate_raw(
        "net",
        &format!(
            "{{\"bs_addr\":\"{addr}\",\"protocol_version\":{},\"max_extra_attempts\":{},\
             \"read_timeout_ms\":{},\"backoff_ms\":{},\"fault_model\":\"channel-slots\"}}",
            sl_net::PROTOCOL_VERSION,
            retry.max_extra_attempts,
            retry.read_timeout.as_millis(),
            retry.backoff.as_millis(),
        ),
    );
    let dir = exp.finish();
    println!("results: {}", dir.display());
    ExitCode::SUCCESS
}
