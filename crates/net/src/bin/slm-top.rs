//! **slm-top** — live fleet view for the networked split-learning
//! runtime.
//!
//! Two data sources, one table:
//!
//! * `--addr HOST:PORT` polls a running `slm-bs --metrics-port`
//!   endpoint and renders per-session rows (steps, steps/sec from the
//!   scrape-to-scrape delta, eval/nack/resend counters, loss EMA,
//!   health) plus a fleet-aggregate row.
//! * `--series PATH` tails a `series.jsonl` written by a traced run and
//!   renders one row per metric (samples, dropped, min/max/last, trend
//!   sparkline) — works fully offline, after the run has exited.
//!
//! `--once` prints a single frame and exits (harness/CI mode);
//! otherwise the view refreshes every `--interval-ms` (default 1000).
//! `--raw` (with `--addr`) validates the scrape, then prints the
//! exposition text verbatim instead of the table — what verify.sh's
//! `live-metrics` stage greps.
//!
//! ```sh
//! slm-top --addr "$(cat results/fig3a_net/bs.metrics)" --once
//! slm-top --series results/fig3a_net/series.jsonl --once
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

use sl_bench::sparkline;
use sl_net::{parse_exposition, scrape_metrics};
use sl_telemetry::SeriesStore;

struct Args {
    addr: Option<String>,
    series: Option<String>,
    once: bool,
    raw: bool,
    interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        series: None,
        once: false,
        raw: false,
        interval_ms: 1000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--series" => args.series = Some(value("--series")?),
            "--once" => args.once = true,
            "--raw" => args.raw = true,
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                if args.interval_ms == 0 {
                    return Err("--interval-ms must be positive".to_string());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: slm-top (--addr HOST:PORT | --series PATH) [--once] [--raw] \
                     [--interval-ms N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    match (&args.addr, &args.series) {
        (Some(_), Some(_)) => Err("--addr and --series are mutually exclusive".to_string()),
        (None, None) => Err("one of --addr or --series is required".to_string()),
        (None, Some(_)) if args.raw => Err("--raw requires --addr".to_string()),
        _ => Ok(args),
    }
}

/// One session row assembled from `net.session.<id>.*` metrics.
struct SessionRow {
    id: u64,
    steps: u64,
    evals: u64,
    nacks_sent: u64,
    nacks_received: u64,
    resends: u64,
    frames: u64,
    loss_ema: Option<f64>,
    status: &'static str,
}

fn metric(map: &BTreeMap<String, f64>, name: &str) -> f64 {
    map.get(name).copied().unwrap_or(0.0)
}

fn session_rows(map: &BTreeMap<String, f64>) -> Vec<SessionRow> {
    let mut rows = Vec::new();
    for key in map.keys() {
        let Some(rest) = key.strip_prefix("net.session.") else {
            continue;
        };
        let Some(id_str) = rest.strip_suffix(".steps") else {
            continue;
        };
        let Ok(id) = id_str.parse::<u64>() else {
            continue;
        };
        let get = |field: &str| metric(map, &format!("net.session.{id}.{field}"));
        let status = if get("up") >= 1.0 {
            "active"
        } else if get("clean_shutdown") >= 1.0 {
            "done"
        } else {
            "unclean"
        };
        rows.push(SessionRow {
            id,
            steps: get("steps") as u64,
            evals: get("evals") as u64,
            nacks_sent: get("nacks.sent") as u64,
            nacks_received: get("nacks.received") as u64,
            resends: get("resends") as u64,
            frames: get("frames.received") as u64,
            loss_ema: map.get(&format!("net.session.{id}.loss_ema")).copied(),
            status,
        });
    }
    rows
}

fn fmt_loss(l: Option<f64>) -> String {
    match l {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

/// Render one frame of the live (endpoint-backed) view. `prev` holds
/// the previous scrape and its age so per-session steps/sec can be
/// derived from the counter delta.
fn render_live(
    map: &BTreeMap<String, f64>,
    prev: Option<&(BTreeMap<String, f64>, Duration)>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "slm-bs fleet: {} active / {} total sessions\n\n",
        metric(map, "net.sessions.active") as u64,
        metric(map, "net.sessions.total") as u64,
    ));
    out.push_str(&format!(
        "{:>4} {:>8} {:>9} {:>6} {:>9} {:>8} {:>8} {:>10} {:>8}\n",
        "id", "steps", "steps/s", "evals", "nacks s/r", "resends", "frames", "loss_ema", "status"
    ));
    for row in session_rows(map) {
        let rate = prev
            .and_then(|(old, dt)| {
                let before = metric(old, &format!("net.session.{}.steps", row.id));
                let secs = dt.as_secs_f64();
                (secs > 0.0).then(|| (row.steps as f64 - before).max(0.0) / secs)
            })
            .map_or_else(|| "-".to_string(), |r| format!("{r:.1}"));
        out.push_str(&format!(
            "{:>4} {:>8} {:>9} {:>6} {:>9} {:>8} {:>8} {:>10} {:>8}\n",
            row.id,
            row.steps,
            rate,
            row.evals,
            format!("{}/{}", row.nacks_sent, row.nacks_received),
            row.resends,
            row.frames,
            fmt_loss(row.loss_ema),
            row.status,
        ));
    }
    out.push_str(&format!(
        "\nfleet: steps {} evals {} nacks s/r {}/{} resends {} frames {} bytes {}\n",
        metric(map, "net.steps") as u64,
        metric(map, "net.evals") as u64,
        metric(map, "net.nacks.sent") as u64,
        metric(map, "net.nacks.received") as u64,
        metric(map, "net.resends") as u64,
        metric(map, "net.frames.received") as u64,
        metric(map, "net.bytes.received") as u64,
    ));
    out
}

/// Render the offline (series-file) view: one row per metric.
fn render_series(store: &SeriesStore) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>7} {:>7} {:>12} {:>12} {:>12}  trend\n",
        "metric", "n", "dropped", "min", "max", "last"
    ));
    for name in store.names() {
        let Some(series) = store.get(name) else {
            continue;
        };
        let values: Vec<f32> = series.iter().map(|(_, v)| v as f32).collect();
        // Downsample by stride so the sparkline stays readable.
        let stride = values.len().div_ceil(40).max(1);
        let trend: Vec<f32> = values.iter().copied().step_by(stride).collect();
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"));
        out.push_str(&format!(
            "{:<24} {:>7} {:>7} {:>12} {:>12} {:>12}  {}\n",
            name,
            series.len(),
            series.dropped(),
            fmt(series.min_value()),
            fmt(series.max_value()),
            fmt(series.last().map(|(_, v)| v)),
            sparkline(&trend),
        ));
    }
    out
}

fn run_live(addr: &str, once: bool, raw: bool, interval: Duration) -> Result<(), String> {
    let mut prev: Option<(BTreeMap<String, f64>, Duration)> = None;
    loop {
        let text = scrape_metrics(addr).map_err(|e| format!("scrape {addr}: {e}"))?;
        // Parse even in --raw mode: a scrape that does not parse is an
        // error, not output.
        let map = parse_exposition(&text).map_err(|e| format!("scrape {addr}: {e}"))?;
        if once {
            print!("{}", if raw { text } else { render_live(&map, None) });
            return Ok(());
        }
        // Clear screen + home, top(1)-style.
        if raw {
            print!("\x1b[2J\x1b[H{text}");
        } else {
            print!("\x1b[2J\x1b[H{}", render_live(&map, prev.as_ref()));
        }
        prev = Some((map, interval));
        std::thread::sleep(interval);
    }
}

fn run_series(path: &str, once: bool, interval: Duration) -> Result<(), String> {
    loop {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let store = SeriesStore::from_jsonl(&text).map_err(|e| format!("parse {path}: {e}"))?;
        if once {
            print!("{}", render_series(&store));
            return Ok(());
        }
        print!("\x1b[2J\x1b[H{}", render_series(&store));
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let interval = Duration::from_millis(args.interval_ms);
    let result = match (&args.addr, &args.series) {
        (Some(addr), _) => run_live(addr, args.once, args.raw, interval),
        (_, Some(path)) => run_series(path, args.once, interval),
        _ => unreachable!("parse_args enforces one source"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("slm-top: {msg}");
            ExitCode::FAILURE
        }
    }
}
