//! sl-net: the socket-based UE↔BS split-learning runtime.
//!
//! Everything the in-process `sl_core::SplitTrainer` does with a
//! function call, this crate does over a real byte stream (std::net TCP
//! in the `slm-bs` / `slm-ue` binaries, any `Read + Write` in tests):
//!
//! * [`wire`] — the versioned framed binary protocol: 12-byte header
//!   (magic `SLNF`, version, type, flags, length), payload, FNV-1a-64
//!   trailer; bit-packed `R`-bit cut-layer activations; typed
//!   [`NetError`]s for every malformed input.
//! * [`fault`] — [`Faulty`], a deterministic fault-injecting transport
//!   wrapper (seeded or planned corrupt/drop/delay at frame
//!   granularity) that drives the retry machinery in tests and realizes
//!   the channel simulator's retransmissions on the wire.
//! * [`client`] — [`UeClient`]: framed connection, config handshake,
//!   bounded retry/timeout/backoff, `net.*` metrics.
//! * [`server`] — [`BsServer`] / [`serve_session`]: multi-client BS
//!   serving the back half behind a shared compute lock, rejecting
//!   miswired sessions at handshake time via `sl_core::WiringSpec`.
//! * [`trainer`] — [`NetTrainer`]: the UE training loop, byte-identical
//!   (at `SLM_THREADS=1`) to the in-process trainer's learning curve.
//! * [`live`] — [`LiveMetrics`]: per-session live registries the server
//!   publishes into, plus a read-only plaintext scrape endpoint
//!   (`slm-bs --metrics-port`) and the scrape/parse helpers `slm-top`
//!   polls (DESIGN.md §11).
//!
//! The wire protocol carries **exact** `f32` bit patterns (losses,
//! gradients, predictions) and grid-level-packed activations, so
//! nothing is lost crossing the link — determinism is a protocol
//! property, not an accident (DESIGN.md §9).

pub mod client;
pub mod fault;
pub mod live;
pub mod server;
pub mod trainer;
pub mod wire;

pub use client::{Connection, NetMetrics, RetryPolicy, StepTrace, UeClient};
pub use fault::{FaultAction, FaultCounters, FaultPlan, Faulty};
pub use live::{
    parse_exposition, render_exposition, scrape_metrics, spawn_metrics_endpoint, LiveMetrics,
};
pub use server::{serve_session, serve_session_observed, BsServer, SessionSummary};
pub use trainer::NetTrainer;
pub use wire::{
    decode_frame, encode_frame, EvalRequest, Frame, MsgType, NackCode, NetError, SessionSpec,
    StepReply, StepRequest, TraceContext, FLAG_TRACE, FLAG_WANT_RATIO, PROTOCOL_VERSION,
};
