//! Live metrics: per-session state shared with a plaintext scrape
//! endpoint, so a long-running `slm-bs` is observable *while* training
//! is in flight instead of only at exit.
//!
//! The hub ([`LiveMetrics`]) keeps one small bare-named
//! [`MetricsRegistry`] per session, updated by the protocol loop after
//! every handled frame. A scrape folds them — in ascending session-id
//! order, the scoped-registry merge rules of DESIGN.md §11 — into one
//! [`Snapshot`] with `net.session.<id>.*` namespaces plus summed
//! `net.*` aggregates, rendered as Prometheus-style `name value` lines.
//!
//! The endpoint ([`spawn_metrics_endpoint`]) is a read-only observer on
//! the existing std-only TCP stack: scrapes take the session map lock
//! only long enough to copy the registries and never touch model
//! compute, so polling cannot perturb training (and the exposition text
//! carries no host timestamps).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use sl_telemetry::{MetricsRegistry, Snapshot};

use crate::server::SessionSummary;

/// Per-session live state: the session's bare-named metrics plus
/// whether its connection is still being served.
#[derive(Debug, Default)]
struct SessionState {
    registry: MetricsRegistry,
    active: bool,
}

/// The shared hub: session id → live metrics. One instance per server,
/// updated by the per-connection protocol loops and read by scrapes.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    sessions: Mutex<BTreeMap<u64, SessionState>>,
}

impl LiveMetrics {
    /// An empty hub.
    pub fn new() -> Self {
        LiveMetrics::default()
    }

    /// Rebuilds session `id`'s registry from its protocol-loop summary.
    /// Called after every handled frame: cheap (a dozen map inserts)
    /// relative to a training step, and never under the compute lock.
    pub fn update(&self, id: u64, summary: &SessionSummary, active: bool) {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let state = sessions.entry(id).or_default();
        let r = &mut state.registry;
        *r = MetricsRegistry::new();
        r.add("steps", summary.steps);
        r.add("evals", summary.evals);
        r.add("heartbeats", summary.heartbeats);
        r.add("nacks.sent", summary.nacks_sent);
        r.add("nacks.received", summary.nacks_received);
        r.add("resends", summary.resends);
        r.add("frames.received", summary.frames_received);
        r.add("bytes.received", summary.bytes_received);
        r.gauge_set("up", if active { 1.0 } else { 0.0 });
        r.gauge_set(
            "clean_shutdown",
            if summary.clean_shutdown { 1.0 } else { 0.0 },
        );
        if summary.loss_ema.is_finite() && summary.steps > 0 {
            r.gauge_set("loss_ema", summary.loss_ema);
        }
        state.active = active;
    }

    /// Marks session `id` finished, folding in its final summary when
    /// the session ended cleanly enough to produce one.
    pub fn finish(&self, id: u64, summary: Option<&SessionSummary>) {
        match summary {
            Some(s) => self.update(id, s, false),
            None => {
                let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
                sessions.entry(id).or_default().active = false;
            }
        }
    }

    /// A point-in-time view: per-session metrics under
    /// `net.session.<id>.*`, counter sums under `net.*`, and
    /// `net.sessions.{active,total}` gauges. Sessions merge in ascending
    /// id order (the fixed merge order of DESIGN.md §11).
    pub fn snapshot(&self) -> Snapshot {
        let sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = Snapshot::empty();
        let mut active = 0u64;
        for (id, state) in sessions.iter() {
            if state.active {
                active += 1;
            }
            let sub = state.registry.snapshot();
            for (k, v) in &sub.counters {
                snap.counters.insert(format!("net.session.{id}.{k}"), *v);
                *snap.counters.entry(format!("net.{k}")).or_insert(0) += v;
            }
            for (k, v) in &sub.gauges {
                snap.gauges.insert(format!("net.session.{id}.{k}"), *v);
            }
        }
        snap.gauges
            .insert("net.sessions.active".to_string(), active as f64);
        snap.gauges
            .insert("net.sessions.total".to_string(), sessions.len() as f64);
        snap
    }

    /// Renders the snapshot as plaintext exposition: one `name value`
    /// per line, `#`-prefixed comments, names in sorted order.
    pub fn exposition(&self) -> String {
        render_exposition(&self.snapshot())
    }
}

/// Renders a [`Snapshot`]'s counters and gauges as scrape text (see
/// [`LiveMetrics::exposition`]; histograms are an end-of-run artifact
/// and stay out of the live view).
pub fn render_exposition(snap: &Snapshot) -> String {
    let mut out = String::from("# slm-bs live metrics\n");
    for (k, v) in &snap.counters {
        out.push_str(&format!("{k} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}

/// Parses scrape text back into `name -> value` pairs. Comment lines
/// and blanks are skipped; a malformed sample line is an `Err` (the
/// verify gate asserts the exposition parses).
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("exposition line without value: {line:?}"))?;
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("exposition line with bad value: {line:?}"))?;
        out.insert(name.to_string(), v);
    }
    Ok(out)
}

/// Binds `addr` (port 0 for ephemeral) and serves scrapes of `live` on
/// a detached thread, one short-lived connection per scrape. Returns
/// the resolved local address. The endpoint is an observer: it holds no
/// training state and a wedged scraper cannot block the accept loop
/// longer than the per-connection read timeout.
pub fn spawn_metrics_endpoint(addr: &str, live: Arc<LiveMetrics>) -> io::Result<SocketAddr> {
    // slm-lint: allow(no-nondeterminism) the metrics endpoint is real socket I/O by design; it only reads snapshots and never feeds training state (DESIGN.md §11)
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    // slm-lint: allow(no-nondeterminism) scrape serving is sl-net's concurrency domain; the thread only copies read-only snapshots
    thread::spawn(move || {
        for incoming in listener.incoming() {
            let Ok(mut stream) = incoming else { continue };
            serve_one_scrape(&mut stream, &live).ok();
        }
    });
    Ok(local)
}

/// Reads one (best-effort) HTTP request and answers with the exposition
/// body. Any plain-TCP client that just reads to EOF works too.
fn serve_one_scrape(stream: &mut TcpStream, live: &LiveMetrics) -> io::Result<()> {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                let done = request.windows(4).any(|w| w == b"\r\n\r\n")
                    || request.windows(2).any(|w| w == b"\n\n");
                if done || request.len() > 16 * 1024 {
                    break;
                }
            }
            // Timeout or reset: answer anyway; the reply either lands
            // or the write fails harmlessly.
            Err(_) => break,
        }
    }
    let body = live.exposition();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Scrapes a metrics endpoint once, returning the exposition body
/// (headers stripped). The client half of [`spawn_metrics_endpoint`],
/// used by `slm-top` and the verify gate.
pub fn scrape_metrics(addr: &str) -> io::Result<String> {
    // slm-lint: allow(no-nondeterminism) scraping the live endpoint is real socket I/O by design; it observes training without feeding it (DESIGN.md §11)
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "scrape body is not UTF-8"))?;
    Ok(match text.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(steps: u64, loss_ema: f64) -> SessionSummary {
        SessionSummary {
            steps,
            evals: 2,
            nacks_sent: 1,
            frames_received: steps + 3,
            bytes_received: 100 * steps,
            loss_ema,
            ..SessionSummary::default()
        }
    }

    #[test]
    fn snapshot_namespaces_sessions_and_sums_aggregates() {
        let live = LiveMetrics::new();
        live.update(0, &summary(10, 2.5), true);
        live.update(1, &summary(4, 3.5), true);
        live.finish(1, Some(&summary(4, 3.5)));
        let snap = live.snapshot();
        assert_eq!(snap.counter("net.session.0.steps"), 10);
        assert_eq!(snap.counter("net.session.1.steps"), 4);
        assert_eq!(snap.counter("net.steps"), 14);
        assert_eq!(snap.counter("net.frames.received"), 20);
        assert_eq!(snap.gauge("net.session.0.up"), Some(1.0));
        assert_eq!(snap.gauge("net.session.1.up"), Some(0.0));
        assert_eq!(snap.gauge("net.sessions.active"), Some(1.0));
        assert_eq!(snap.gauge("net.sessions.total"), Some(2.0));
        assert_eq!(snap.gauge("net.session.1.loss_ema"), Some(3.5));
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let live = LiveMetrics::new();
        live.update(0, &summary(10, 2.5), true);
        let text = live.exposition();
        assert!(text.contains("net.frames.received 13\n"));
        assert!(text.contains("net.session.0.steps 10\n"));
        let parsed = parse_exposition(&text).unwrap();
        assert_eq!(parsed["net.session.0.steps"], 10.0);
        assert_eq!(parsed["net.session.0.loss_ema"], 2.5);
        assert_eq!(parsed["net.sessions.active"], 1.0);
        // Exposition is deterministic for a fixed hub state.
        assert_eq!(live.exposition(), text);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("# only comments\n\n").unwrap().is_empty());
        assert!(parse_exposition("net.steps\n").is_err());
        assert!(parse_exposition("net.steps ten\n").is_err());
    }

    #[test]
    fn endpoint_serves_scrapes_over_tcp() {
        let live = Arc::new(LiveMetrics::new());
        live.update(0, &summary(7, 1.5), true);
        let addr = spawn_metrics_endpoint("127.0.0.1:0", Arc::clone(&live)).unwrap();
        let body = scrape_metrics(&addr.to_string()).unwrap();
        let parsed = parse_exposition(&body).unwrap();
        assert_eq!(parsed["net.session.0.steps"], 7.0);
        // Updates between scrapes are visible.
        live.update(0, &summary(9, 1.25), true);
        let parsed = parse_exposition(&scrape_metrics(&addr.to_string()).unwrap()).unwrap();
        assert_eq!(parsed["net.session.0.steps"], 9.0);
    }

    #[test]
    fn non_finite_loss_ema_is_omitted() {
        let live = LiveMetrics::new();
        live.update(0, &summary(3, f64::NAN), true);
        assert_eq!(live.snapshot().gauge("net.session.0.loss_ema"), None);
    }
}
