//! The UE side of the split-learning link: a framed connection with
//! bounded retry/timeout/backoff, riding on the fault-injecting
//! [`Faulty`] transport.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sl_telemetry::{Telemetry, Tracer, Value};

use crate::fault::{FaultCounters, FaultPlan, Faulty};
use crate::wire::{
    decode_config_ack, decode_frame, decode_nack, encode_frame, parse_header, Frame, MsgType,
    NackCode, NetError, SessionSpec, StepReply, StepRequest, TraceContext, FLAG_WANT_RATIO,
    HEADER_LEN, TRAILER_LEN,
};

/// Tracing context for one traced training exchange: the wire context
/// to prepend to the request, plus where the retry/Nack/timeout spans
/// this exchange may generate should hang in the UE's trace. The link
/// windows were already charged to the `SimClock` before the real
/// bytes move, so recovery spans are zero-width markers at the step's
/// simulated end, parented to the step's root span (they describe the
/// exchange as a whole; the `window` attribute says which direction
/// misbehaved).
#[derive(Debug)]
pub struct StepTrace<'a> {
    /// The UE-side tracer recording this step.
    pub tracer: &'a mut Tracer,
    /// Context prepended to the request frame (FLAG_TRACE).
    pub ctx: TraceContext,
    /// Span id of the step's root `train.step` span.
    pub root: u64,
    /// Simulated end of the step window, microseconds.
    pub end_us: u64,
}

/// Bounds on the client's persistence. The *base* retry budget for one
/// exchange is the armed fault plan's length (every planned fault earns
/// exactly one retry) plus `max_extra_attempts` headroom for unplanned
/// trouble; once it is spent the exchange fails with
/// [`NetError::RetriesExhausted`] instead of looping forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts beyond the armed fault plan's length.
    pub max_extra_attempts: usize,
    /// Read deadline per reply (maps to `TcpStream::set_read_timeout`).
    pub read_timeout: Duration,
    /// Sleep after a timeout before resending, multiplied by the attempt
    /// number (linear backoff). Nack-triggered retries do not back off —
    /// the peer is demonstrably alive.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_extra_attempts: 4,
            read_timeout: Duration::from_millis(2000),
            backoff: Duration::from_millis(20),
        }
    }
}

/// Connection/frame/retry/fault counters, published under `net.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Frames handed to the transport (including faulted copies).
    pub frames_sent: u64,
    /// Frames received intact.
    pub frames_received: u64,
    /// Bytes handed to the transport.
    pub bytes_sent: u64,
    /// Bytes received (including frames later rejected).
    pub bytes_received: u64,
    /// Exchanges resent after a Nack or timeout.
    pub retries: u64,
    /// Read deadlines that expired.
    pub timeouts: u64,
    /// Nack frames we sent (received-side corruption).
    pub nacks_sent: u64,
    /// Nack frames the peer sent us.
    pub nacks_received: u64,
    /// Completed handshakes.
    pub handshakes: u64,
}

impl NetMetrics {
    /// Publishes every counter (plus the transport's fault counters)
    /// into `tele` under the `net.*` namespace.
    pub fn publish(&self, faults: FaultCounters, tele: &mut Telemetry) {
        tele.add("net.frames.sent", self.frames_sent);
        tele.add("net.frames.received", self.frames_received);
        tele.add("net.bytes.sent", self.bytes_sent);
        tele.add("net.bytes.received", self.bytes_received);
        tele.add("net.retries", self.retries);
        tele.add("net.timeouts", self.timeouts);
        tele.add("net.nacks.sent", self.nacks_sent);
        tele.add("net.nacks.received", self.nacks_received);
        tele.add("net.handshakes", self.handshakes);
        tele.add("net.faults.frames", faults.frames);
        tele.add("net.faults.corrupted", faults.corrupted);
        tele.add("net.faults.dropped", faults.dropped);
        tele.add("net.faults.delayed", faults.delayed);
        tele.add("net.faults.delay_slots", faults.delay_slots);
    }
}

/// A framed, metric-counting connection over any byte stream. Both ends
/// of the protocol use this; fault plans are armed by the UE only.
#[derive(Debug)]
pub struct Connection<S> {
    stream: Faulty<S>,
    /// Live counters for this connection.
    pub metrics: NetMetrics,
}

impl<S: Read + Write> Connection<S> {
    /// Wraps a connected byte stream.
    pub fn new(stream: S) -> Self {
        Connection {
            stream: Faulty::new(stream),
            metrics: NetMetrics::default(),
        }
    }

    /// The fault-injection layer (to arm plans / read counters).
    pub fn faults(&mut self) -> &mut Faulty<S> {
        &mut self.stream
    }

    /// Sends one frame.
    pub fn send(&mut self, ty: MsgType, flags: u8, payload: &[u8]) -> Result<(), NetError> {
        let bytes = encode_frame(ty, flags, payload);
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        self.metrics.frames_sent += 1;
        self.metrics.bytes_sent += bytes.len() as u64;
        Ok(())
    }

    /// Receives one frame, verifying checksum/version/type. A checksum
    /// mismatch leaves the stream aligned on the next frame boundary.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_or_eof(&mut self.stream, &mut header)?;
        let (_, _, _, len) = parse_header(&header)?;
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        let mut frame = vec![0u8; total];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[HEADER_LEN..])
            .map_err(NetError::from)?;
        self.metrics.bytes_received += total as u64;
        let decoded = decode_frame(&frame)?;
        self.metrics.frames_received += 1;
        Ok(decoded)
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), NetError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Protocol("peer closed the connection mid-session".into())
        } else {
            NetError::from(e)
        }
    })
}

/// The UE's protocol driver: handshake, reliable request/reply
/// exchanges with planned fault injection, and clean shutdown.
#[derive(Debug)]
pub struct UeClient<S> {
    conn: Connection<S>,
    retry: RetryPolicy,
}

impl UeClient<TcpStream> {
    /// Connects over TCP and applies the policy's read deadline.
    pub fn connect<A: ToSocketAddrs>(addr: A, retry: RetryPolicy) -> Result<Self, NetError> {
        // slm-lint: allow(no-nondeterminism) sl-net's whole purpose is real socket I/O; determinism is preserved at the protocol layer (DESIGN.md §9)
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream
            .set_read_timeout(Some(retry.read_timeout))
            .map_err(NetError::Io)?;
        stream.set_nodelay(true).ok();
        Ok(UeClient::from_stream(stream, retry))
    }
}

impl<S: Read + Write> UeClient<S> {
    /// Wraps an already-connected byte stream (tests use in-memory or
    /// pre-configured sockets).
    pub fn from_stream(stream: S, retry: RetryPolicy) -> Self {
        UeClient {
            conn: Connection::new(stream),
            retry,
        }
    }

    /// This connection's counters.
    pub fn metrics(&self) -> NetMetrics {
        self.conn.metrics
    }

    /// The transport's fault counters.
    pub fn fault_counters(&mut self) -> FaultCounters {
        self.conn.faults().counters()
    }

    /// Publishes all `net.*` counters into `tele`.
    pub fn publish_metrics(&mut self, tele: &mut Telemetry) {
        let faults = self.conn.faults().counters();
        self.conn.metrics.publish(faults, tele);
    }

    /// Performs the config handshake. The session starts only after the
    /// BS has validated the wiring against `sl_core::WiringSpec`;
    /// a rejection surfaces as [`NetError::HandshakeRejected`] carrying
    /// the BS's per-layer trace.
    pub fn handshake(&mut self, spec: &SessionSpec) -> Result<(usize, usize, u64), NetError> {
        let reply = self.request(
            MsgType::Hello,
            0,
            &spec.encode(),
            MsgType::ConfigAck,
            0,
            None,
        )?;
        let ack = decode_config_ack(&reply.payload)?;
        self.conn.metrics.handshakes += 1;
        Ok(ack)
    }

    /// Runs one training step across the link: the request crosses the
    /// uplink under `uplink_plan`, the gradient reply crosses the
    /// downlink under `downlink_plan` (both usually derived from the
    /// channel simulator's slot counts). When `trace` is given, the
    /// request frame carries the step's [`TraceContext`] (FLAG_TRACE)
    /// so the BS can stitch its spans under the UE's trace, and any
    /// retry/Nack/timeout recovery is recorded as zero-width spans in
    /// the UE's tracer.
    pub fn train_step(
        &mut self,
        req: &StepRequest,
        want_ratio: bool,
        uplink_plan: FaultPlan,
        downlink_plan: FaultPlan,
        mut trace: Option<StepTrace<'_>>,
    ) -> Result<StepReply, NetError> {
        let ty = req.msg_type();
        let mut flags = if want_ratio { FLAG_WANT_RATIO } else { 0 };
        let plan_budget = uplink_plan.len() + downlink_plan.len();
        self.conn.faults().arm_write(uplink_plan, Some(ty as u8));
        self.conn
            .faults()
            .arm_read(downlink_plan, Some(MsgType::Gradients as u8));
        let encoded = req.encode();
        let payload = match &trace {
            Some(t) => {
                let (flag, with_ctx) = t.ctx.prepend(&encoded);
                flags |= flag;
                with_ctx
            }
            None => encoded,
        };
        let reply = self.request(
            ty,
            flags,
            &payload,
            MsgType::Gradients,
            plan_budget,
            trace.as_mut(),
        )?;
        StepReply::decode(reply.flags, &reply.payload)
    }

    /// Runs one validation forward (always clean: validation does not
    /// cross the simulated channel, matching the in-process trainer).
    pub fn eval(&mut self, req: &crate::wire::EvalRequest) -> Result<Vec<f32>, NetError> {
        let reply = self.request(
            MsgType::EvalBatch,
            0,
            &req.encode(),
            MsgType::Predictions,
            0,
            None,
        )?;
        crate::wire::decode_predictions(&reply.payload)
    }

    /// Liveness probe.
    pub fn heartbeat(&mut self) -> Result<(), NetError> {
        self.request(MsgType::Heartbeat, 0, &[], MsgType::Heartbeat, 0, None)
            .map(|_| ())
    }

    /// Clean shutdown: tells the BS the session is over and waits for
    /// the echo.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.request(MsgType::Shutdown, 0, &[], MsgType::Shutdown, 0, None)
            .map(|_| ())
    }

    /// One reliable exchange: send the request, await the expected reply
    /// type, resending on Nack or timeout and Nack-ing corrupted replies
    /// so the BS resends. Bounded by `plan_budget` (one retry per
    /// planned fault) plus the policy's extra attempts. Recovery events
    /// are recorded into `trace` (when given) as zero-width spans
    /// parented to the transfer window they belong to.
    fn request(
        &mut self,
        ty: MsgType,
        flags: u8,
        payload: &[u8],
        expect: MsgType,
        plan_budget: usize,
        mut trace: Option<&mut StepTrace<'_>>,
    ) -> Result<Frame, NetError> {
        // Every planned fault earns exactly one recovery round; the
        // policy's extra attempts absorb unplanned trouble. Every
        // failure event (Nack, corrupted reply, timeout) spends one
        // unit, so even a peer streaming corrupt frames forever cannot
        // pin the client in a loop.
        let budget = plan_budget + self.retry.max_extra_attempts;
        let mut failures = 0usize;
        let mut resends = 0usize;
        'resend: loop {
            self.conn.send(ty, flags, payload)?;
            // Await the reply; corrupted replies are Nack'd and re-read
            // without resending the request.
            loop {
                match self.conn.recv() {
                    Ok(frame) if frame.ty == expect => return Ok(frame),
                    Ok(frame) if frame.ty == MsgType::Nack => {
                        self.conn.metrics.nacks_received += 1;
                        let (code, detail) = decode_nack(&frame.payload)?;
                        match code {
                            // The peer saw a corrupted copy — resend.
                            NackCode::ChecksumMismatch => {
                                self.conn.metrics.retries += 1;
                                failures += 1;
                                if failures > budget {
                                    return Err(NetError::RetriesExhausted {
                                        attempts: resends + 1,
                                    });
                                }
                                resends += 1;
                                if let Some(t) = trace.as_deref_mut() {
                                    t.tracer.record_under(
                                        t.root,
                                        "net.retry",
                                        "net",
                                        t.end_us,
                                        0,
                                        vec![
                                            ("attempt".into(), Value::U64(resends as u64)),
                                            ("window".into(), Value::Str("uplink".into())),
                                        ],
                                    );
                                }
                                continue 'resend;
                            }
                            NackCode::WiringRejected => {
                                return Err(NetError::HandshakeRejected(detail))
                            }
                            _ => return Err(NetError::Nack { code, detail }),
                        }
                    }
                    Ok(frame) => {
                        return Err(NetError::Protocol(format!(
                            "expected {expect:?} or Nack, got {:?}",
                            frame.ty
                        )))
                    }
                    Err(NetError::ChecksumMismatch { .. }) => {
                        // Reply corrupted in flight: ask the BS to resend
                        // its cached reply; our request was delivered.
                        self.conn.metrics.retries += 1;
                        failures += 1;
                        if failures > budget {
                            return Err(NetError::RetriesExhausted {
                                attempts: resends + 1,
                            });
                        }
                        self.conn.send(
                            MsgType::Nack,
                            0,
                            &crate::wire::encode_nack(
                                NackCode::ChecksumMismatch,
                                "reply failed checksum",
                            ),
                        )?;
                        self.conn.metrics.nacks_sent += 1;
                        if let Some(t) = trace.as_deref_mut() {
                            t.tracer.record_under(
                                t.root,
                                "net.nack_sent",
                                "net",
                                t.end_us,
                                0,
                                vec![
                                    ("attempt".into(), Value::U64(failures as u64)),
                                    ("window".into(), Value::Str("downlink".into())),
                                ],
                            );
                        }
                        continue;
                    }
                    Err(NetError::Timeout) => {
                        // Nothing arrived (request or reply dropped):
                        // back off linearly and resend the request.
                        self.conn.metrics.timeouts += 1;
                        self.conn.metrics.retries += 1;
                        failures += 1;
                        if failures > budget {
                            return Err(NetError::RetriesExhausted {
                                attempts: resends + 1,
                            });
                        }
                        if !self.retry.backoff.is_zero() {
                            std::thread::sleep(self.retry.backoff * failures as u32);
                        }
                        resends += 1;
                        if let Some(t) = trace.as_deref_mut() {
                            t.tracer.record_under(
                                t.root,
                                "net.timeout",
                                "net",
                                t.end_us,
                                0,
                                vec![("attempt".into(), Value::U64(resends as u64))],
                            );
                        }
                        continue 'resend;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
}
