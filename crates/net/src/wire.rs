//! The `sl-net` framed binary wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic  b"SLNF"
//!      4     2  protocol version, u16 LE (currently 2)
//!      6     1  message type (MsgType)
//!      7     1  flags (bit 0: FLAG_WANT_RATIO on step requests,
//!               "ratio present" on gradient replies; bit 1:
//!               FLAG_TRACE — the payload starts with a 32-byte
//!               TraceContext prefix)
//!      8     4  payload length, u32 LE
//!     12     N  payload
//!   12+N     8  FNV-1a 64 checksum over header+payload, u64 LE
//! ```
//!
//! Version 2 added distributed-tracing support: the [`SessionSpec`]
//! carries the UE's trace id, and any frame may prepend a
//! [`TraceContext`] to its payload behind [`FLAG_TRACE`]. The prefix
//! lives *inside* the payload, so it is counted by the length field,
//! covered by the FNV trailer (corruption of the trace field is caught
//! exactly like any payload corruption), and invisible to the fault
//! injector's frame arithmetic.
//!
//! The 12-byte header is always intact on the wire — the fault injector
//! ([`crate::Faulty`]) only flips payload/checksum bytes — so a receiver
//! can stay frame-aligned across corrupted frames, reject them with a
//! typed [`NetError::ChecksumMismatch`], and resynchronize on the next
//! frame without tearing the TCP stream down.
//!
//! All multi-byte integers are little-endian. Floating-point tensors are
//! raw IEEE-754 bit patterns, so a delivered frame reproduces the
//! sender's values **bit-exactly** — the foundation of the loopback
//! byte-identity contract (DESIGN.md §9). Quantized cut-layer
//! activations are not sent as floats at all: they are bit-packed
//! `R`-bit level indices ([`pack_activations`]), exactly the payload the
//! paper's `B_UL = B·L·p·R` formula charges for.

use std::fmt;
use std::io;

use sl_tensor::Tensor;

/// Protocol magic, first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SLNF";
/// Protocol version this build speaks. Version 2 added the trace-id
/// handshake field and the [`FLAG_TRACE`] payload prefix; version-1
/// peers are rejected with a [`NackCode::BadVersion`] Nack at decode.
pub const PROTOCOL_VERSION: u16 = 2;
/// Frame header length in bytes.
pub const HEADER_LEN: usize = 12;
/// Checksum trailer length in bytes.
pub const TRAILER_LEN: usize = 8;
/// Upper bound on a frame payload (guards allocation on garbage input).
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Step requests carry this flag when the UE wants the BS-side update
/// ratio computed; gradient replies carry it when the ratio is present.
pub const FLAG_WANT_RATIO: u8 = 0b0000_0001;

/// The payload starts with a [`TraceContext::WIRE_LEN`]-byte
/// [`TraceContext`] prefix (distributed tracing, protocol version 2).
pub const FLAG_TRACE: u8 = 0b0000_0010;

/// Message types. The numbering is part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// UE -> BS: session handshake carrying a [`SessionSpec`].
    Hello = 1,
    /// BS -> UE: handshake accepted (wiring validated).
    ConfigAck = 2,
    /// UE -> BS: RF-only training step (powers + targets, no images).
    RfSamples = 3,
    /// UE -> BS: image-scheme training step (packed cut activations +
    /// powers + targets).
    Activations = 4,
    /// BS -> UE: loss, BS gradient norm, optional update ratio, and the
    /// cut-layer gradient.
    Gradients = 5,
    /// UE -> BS: validation forward request.
    EvalBatch = 6,
    /// BS -> UE: validation predictions.
    Predictions = 7,
    /// Either direction: liveness probe; the peer echoes it.
    Heartbeat = 8,
    /// UE -> BS: clean end of session; the BS echoes it and closes.
    Shutdown = 9,
    /// Either direction: the last frame was rejected ([`NackCode`]).
    Nack = 10,
}

impl MsgType {
    /// Every wire message type, in wire-byte order. `slm-lint
    /// --protocol` checks this list against the enum declaration, so a
    /// new variant that skips the decode table or a handler match is
    /// caught before it ships.
    pub const ALL: [MsgType; 10] = [
        MsgType::Hello,
        MsgType::ConfigAck,
        MsgType::RfSamples,
        MsgType::Activations,
        MsgType::Gradients,
        MsgType::EvalBatch,
        MsgType::Predictions,
        MsgType::Heartbeat,
        MsgType::Shutdown,
        MsgType::Nack,
    ];

    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<MsgType> {
        Some(match b {
            1 => MsgType::Hello,
            2 => MsgType::ConfigAck,
            3 => MsgType::RfSamples,
            4 => MsgType::Activations,
            5 => MsgType::Gradients,
            6 => MsgType::EvalBatch,
            7 => MsgType::Predictions,
            8 => MsgType::Heartbeat,
            9 => MsgType::Shutdown,
            10 => MsgType::Nack,
            _ => return None,
        })
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum NackCode {
    /// The FNV-1a trailer did not match (corruption in flight).
    ChecksumMismatch = 1,
    /// The frame's protocol version is not spoken here.
    BadVersion = 2,
    /// Unknown message type byte.
    BadType = 3,
    /// The handshake's [`SessionSpec`] failed the wiring check.
    WiringRejected = 4,
    /// The frame was well-formed but illegal in the current state.
    Protocol = 5,
}

impl NackCode {
    /// Decodes a wire code.
    pub fn from_u16(v: u16) -> Option<NackCode> {
        Some(match v {
            1 => NackCode::ChecksumMismatch,
            2 => NackCode::BadVersion,
            3 => NackCode::BadType,
            4 => NackCode::WiringRejected,
            5 => NackCode::Protocol,
            _ => return None,
        })
    }
}

/// Every way the networked runtime can fail. No code path in this crate
/// panics on malformed or hostile input — it returns one of these.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(io::Error),
    /// Frame did not start with [`MAGIC`] — the stream is desynchronized
    /// and the connection must be torn down.
    BadMagic([u8; 4]),
    /// Peer speaks a different protocol version.
    BadVersion(u16),
    /// Unknown message-type byte.
    BadType(u8),
    /// The checksum trailer did not match; the frame is frame-aligned
    /// but its payload cannot be trusted.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        got: u64,
        /// Checksum recomputed over the received bytes.
        want: u64,
    },
    /// A structurally-valid frame whose payload failed to decode.
    Decode(String),
    /// The peer rejected our frame.
    Nack {
        /// Why.
        code: NackCode,
        /// Human-readable detail from the peer.
        detail: String,
    },
    /// The BS rejected the session handshake.
    HandshakeRejected(String),
    /// A blocking read exceeded its deadline.
    Timeout,
    /// The bounded retry budget ran out without a delivered exchange.
    RetriesExhausted {
        /// Attempts made.
        attempts: usize,
    },
    /// The peer sent a legal frame at an illegal time.
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (stream desynchronized)"),
            NetError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            NetError::BadType(t) => write!(f, "unknown message type {t}"),
            NetError::ChecksumMismatch { got, want } => {
                write!(
                    f,
                    "frame checksum mismatch: got {got:#018x}, want {want:#018x}"
                )
            }
            NetError::Decode(msg) => write!(f, "payload decode error: {msg}"),
            NetError::Nack { code, detail } => {
                write!(f, "peer rejected frame ({code:?}): {detail}")
            }
            NetError::HandshakeRejected(msg) => write!(f, "handshake rejected: {msg}"),
            NetError::Timeout => write!(f, "read deadline exceeded"),
            NetError::RetriesExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io(e),
        }
    }
}

/// FNV-1a 64-bit — the same dependency-free hash `sl-bench` uses for
/// config fingerprints, duplicated here so the wire crate stays
/// self-contained at the byte level.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded (verified) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type.
    pub ty: MsgType,
    /// Flag bits.
    pub flags: u8,
    /// Payload bytes (checksum already verified).
    pub payload: Vec<u8>,
}

/// Encodes a complete frame (header + payload + checksum trailer).
pub fn encode_frame(ty: MsgType, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(ty as u8);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a_64(&out[..HEADER_LEN + payload.len()]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses a frame header, returning `(version, type_byte, flags,
/// payload_len)`. Only the magic is validated here — version and type
/// are checked in [`decode_frame`] *after* the whole frame has been
/// consumed, so a reject never desynchronizes the stream.
pub fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(u16, u8, u8, u32), NetError> {
    if h[0..4] != MAGIC {
        return Err(NetError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if len > MAX_PAYLOAD {
        return Err(NetError::Decode(format!(
            "frame payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    Ok((version, h[6], h[7], len))
}

/// Validates a complete frame (header + payload + trailer) and returns
/// the decoded [`Frame`]. Checksum is verified before version/type so a
/// corrupted frame is always reported as corruption, never as a bogus
/// version.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(NetError::Decode(format!(
            "frame of {} bytes is shorter than header+trailer",
            bytes.len()
        )));
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (version, ty, flags, len) = parse_header(&header)?;
    let body_end = HEADER_LEN + len as usize;
    if bytes.len() != body_end + TRAILER_LEN {
        return Err(NetError::Decode(format!(
            "frame length {} disagrees with header payload length {len}",
            bytes.len()
        )));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[body_end..]);
    let got = u64::from_le_bytes(sum);
    let want = fnv1a_64(&bytes[..body_end]);
    if got != want {
        return Err(NetError::ChecksumMismatch { got, want });
    }
    if version != PROTOCOL_VERSION {
        return Err(NetError::BadVersion(version));
    }
    let ty = MsgType::from_u8(ty).ok_or(NetError::BadType(ty))?;
    Ok(Frame {
        ty,
        flags,
        payload: bytes[HEADER_LEN..body_end].to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Trace context (FLAG_TRACE payload prefix)
// ---------------------------------------------------------------------------

/// Distributed-tracing context carried as a fixed-size payload prefix
/// behind [`FLAG_TRACE`]: which trace the frame belongs to, which UE
/// span the receiver's work should be parented under, and the simulated
/// window the receiver's spans must land in (the receiver has no
/// `SimClock` of its own — simulated time is UE-owned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id of the originating run (never 0 when tracing).
    pub trace_id: u64,
    /// UE span id the receiver parents its spans under.
    pub parent_span: u64,
    /// Simulated start of the receiver's window, microseconds.
    pub sim_anchor_us: u64,
    /// Simulated duration of the receiver's window, microseconds.
    pub sim_dur_us: u64,
}

impl TraceContext {
    /// Encoded size of the payload prefix.
    pub const WIRE_LEN: usize = 32;

    /// Fixed-layout little-endian encoding.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.parent_span.to_le_bytes());
        out[16..24].copy_from_slice(&self.sim_anchor_us.to_le_bytes());
        out[24..32].copy_from_slice(&self.sim_dur_us.to_le_bytes());
        out
    }

    /// Returns the payload with this context prepended, plus the flag
    /// bit the frame must carry.
    pub fn prepend(&self, payload: &[u8]) -> (u8, Vec<u8>) {
        let mut out = Vec::with_capacity(Self::WIRE_LEN + payload.len());
        out.extend_from_slice(&self.encode());
        out.extend_from_slice(payload);
        (FLAG_TRACE, out)
    }

    /// Splits a received payload according to `flags`: the context (when
    /// [`FLAG_TRACE`] is set) and the remaining message payload.
    pub fn strip(flags: u8, payload: &[u8]) -> Result<(Option<TraceContext>, &[u8]), NetError> {
        if flags & FLAG_TRACE == 0 {
            return Ok((None, payload));
        }
        if payload.len() < Self::WIRE_LEN {
            return Err(NetError::Decode(format!(
                "FLAG_TRACE set but payload is {} bytes (< {} context bytes)",
                payload.len(),
                Self::WIRE_LEN
            )));
        }
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let ctx = TraceContext {
            trace_id: u64_at(0),
            parent_span: u64_at(8),
            sim_anchor_us: u64_at(16),
            sim_dur_us: u64_at(24),
        };
        Ok((Some(ctx), &payload[Self::WIRE_LEN..]))
    }
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` LE.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` LE.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` LE.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bits, LE.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits, LE.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed (u16) UTF-8 string, truncated to 64 KiB.
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let n = bytes.len().min(u16::MAX as usize);
        self.u16(n as u16);
        self.buf.extend_from_slice(&bytes[..n]);
    }

    /// Appends every element of `t` as raw f32 LE bits.
    pub fn f32_slice(&mut self, data: &[f32]) {
        self.buf.reserve(data.len() * 4);
        for &v in data {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Little-endian payload reader with typed errors (never panics on
/// truncated input).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn expect_empty(&self) -> Result<(), NetError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(NetError::Decode(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Decode(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` LE.
    pub fn u16(&mut self) -> Result<u16, NetError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` LE.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` LE.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` from its LE bits.
    pub fn f32(&mut self) -> Result<f32, NetError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64` from its LE bits.
    pub fn f64(&mut self) -> Result<f64, NetError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, NetError> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| NetError::Decode("string field is not UTF-8".into()))
    }

    /// Reads `n` raw f32 values.
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, NetError> {
        let b = self.take(
            n.checked_mul(4)
                .ok_or_else(|| NetError::Decode("f32 vector length overflows".into()))?,
        )?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        self.take(n)
    }
}

// ---------------------------------------------------------------------------
// SessionSpec (Hello payload)
// ---------------------------------------------------------------------------

use sl_core::{PoolingDim, RnnCell, Scheme};

/// Everything the BS needs to mirror the UE's model half: the handshake
/// payload. The BS rebuilds the *identical* [`sl_core::SplitModel`] from
/// these fields plus `seed` before any training byte flows, and the
/// wiring is validated through [`sl_core::WiringSpec`] first.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Input scheme (RF / Img / Img+RF).
    pub scheme: Scheme,
    /// Cut-layer pooling window.
    pub pooling: PoolingDim,
    /// Camera image height.
    pub image_h: usize,
    /// Camera image width.
    pub image_w: usize,
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Minibatch size `B`.
    pub batch_size: usize,
    /// UE conv channels.
    pub conv_channels: usize,
    /// BS recurrent width.
    pub hidden_dim: usize,
    /// BS recurrent cell.
    pub rnn_cell: RnnCell,
    /// Cut-layer quantizer depth `R` (1..=24).
    pub bit_depth: usize,
    /// Adam learning rate (the BS optimizer must match the UE's).
    pub learning_rate: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Model-init seed; both halves draw identical initial parameters
    /// from it.
    pub seed: u64,
    /// Distributed-tracing id for this run; `0` means tracing is off
    /// and the BS records no spans for the session.
    pub trace_id: u64,
}

impl SessionSpec {
    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(match self.scheme {
            Scheme::RfOnly => 0,
            Scheme::ImgOnly => 1,
            Scheme::ImgRf => 2,
        });
        e.u8(match self.rnn_cell {
            RnnCell::Lstm => 0,
            RnnCell::Gru => 1,
        });
        e.u8(self.bit_depth as u8);
        e.u16(self.pooling.h as u16);
        e.u16(self.pooling.w as u16);
        e.u16(self.image_h as u16);
        e.u16(self.image_w as u16);
        e.u16(self.seq_len as u16);
        e.u16(self.batch_size as u16);
        e.u16(self.conv_channels as u16);
        e.u16(self.hidden_dim as u16);
        e.f32(self.learning_rate);
        e.f32(self.grad_clip);
        e.u64(self.seed);
        e.u64(self.trace_id);
        e.finish()
    }

    /// Wire decoding with typed errors.
    pub fn decode(payload: &[u8]) -> Result<SessionSpec, NetError> {
        let mut d = Dec::new(payload);
        let scheme = match d.u8()? {
            0 => Scheme::RfOnly,
            1 => Scheme::ImgOnly,
            2 => Scheme::ImgRf,
            v => return Err(NetError::Decode(format!("unknown scheme byte {v}"))),
        };
        let rnn_cell = match d.u8()? {
            0 => RnnCell::Lstm,
            1 => RnnCell::Gru,
            v => return Err(NetError::Decode(format!("unknown rnn cell byte {v}"))),
        };
        let bit_depth = d.u8()? as usize;
        if !(1..=24).contains(&bit_depth) {
            return Err(NetError::Decode(format!(
                "bit depth {bit_depth} outside 1..=24"
            )));
        }
        let spec = SessionSpec {
            scheme,
            rnn_cell,
            bit_depth,
            pooling: PoolingDim::new(d.u16()? as usize, d.u16()? as usize),
            image_h: d.u16()? as usize,
            image_w: d.u16()? as usize,
            seq_len: d.u16()? as usize,
            batch_size: d.u16()? as usize,
            conv_channels: d.u16()? as usize,
            hidden_dim: d.u16()? as usize,
            learning_rate: d.f32()?,
            grad_clip: d.f32()?,
            seed: d.u64()?,
            trace_id: d.u64()?,
        };
        d.expect_empty()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Quantized activation packing
// ---------------------------------------------------------------------------

/// Recovers the integer level `k` such that `k / max == q` **bitwise**,
/// for `q` produced by [`sl_core::Quantizer::quantize`] (which computes
/// `round(clamp(v)·max) / max` in f32). `round(q·max)` can land one off
/// after the division round-trip, so the three neighbouring candidates
/// are tested against the exact bit pattern.
pub fn level_of(q: f32, max: u32) -> Result<u32, NetError> {
    if !q.is_finite() {
        return Err(NetError::Decode(format!(
            "activation {q} is not finite (not on the quantizer grid)"
        )));
    }
    let maxf = max as f32;
    let k0 = (q * maxf).round() as i64;
    for dk in [0i64, -1, 1] {
        let k = k0 + dk;
        if !(0..=max as i64).contains(&k) {
            continue;
        }
        if ((k as f32) / maxf).to_bits() == q.to_bits() {
            return Ok(k as u32);
        }
    }
    Err(NetError::Decode(format!(
        "activation {q} is not on the {}-level quantizer grid",
        max as u64 + 1
    )))
}

/// Bit-packs quantized activations (each on the `2^R`-level grid) into
/// `R` bits per value, MSB-first. This is the *actual* uplink payload —
/// `values.len() · R` bits, matching the paper's `B_UL` formula.
pub fn pack_activations(values: &[f32], bit_depth: usize) -> Result<Vec<u8>, NetError> {
    let max = (1u32 << bit_depth) - 1;
    let mut out = vec![0u8; (values.len() * bit_depth).div_ceil(8)];
    let mut bit = 0usize;
    for &q in values {
        let k = level_of(q, max)?;
        for i in (0..bit_depth).rev() {
            if (k >> i) & 1 == 1 {
                out[bit / 8] |= 1 << (7 - bit % 8);
            }
            bit += 1;
        }
    }
    Ok(out)
}

/// Unpacks `count` `R`-bit levels and reconstructs the grid values
/// `k / (2^R − 1)` — bit-identical to what the UE quantizer produced.
pub fn unpack_activations(
    packed: &[u8],
    count: usize,
    bit_depth: usize,
) -> Result<Vec<f32>, NetError> {
    let need = (count * bit_depth).div_ceil(8);
    if packed.len() != need {
        return Err(NetError::Decode(format!(
            "packed activations: got {} bytes, want {need} for {count} x {bit_depth}-bit values",
            packed.len()
        )));
    }
    let maxf = ((1u32 << bit_depth) - 1) as f32;
    let mut out = Vec::with_capacity(count);
    let mut bit = 0usize;
    for _ in 0..count {
        let mut k = 0u32;
        for _ in 0..bit_depth {
            k = (k << 1) | ((packed[bit / 8] >> (7 - bit % 8)) & 1) as u32;
            bit += 1;
        }
        out.push(k as f32 / maxf);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Message payload codecs
// ---------------------------------------------------------------------------

/// One training-step request as it crosses the uplink: shapes, packed
/// cut activations (empty for RF-only), the normalized power history,
/// and the normalized targets.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRequest {
    /// Minibatch size `B`.
    pub batch: usize,
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Pooled activation height (0 for RF-only).
    pub pooled_h: usize,
    /// Pooled activation width (0 for RF-only).
    pub pooled_w: usize,
    /// Bit-packed `R`-bit cut activations, `B·L·ph·pw` values.
    pub packed: Vec<u8>,
    /// Normalized powers, `B·L` values.
    pub powers: Vec<f32>,
    /// Normalized targets, `B` values.
    pub targets: Vec<f32>,
}

impl StepRequest {
    /// The message type this request travels as.
    pub fn msg_type(&self) -> MsgType {
        if self.pooled_h == 0 {
            MsgType::RfSamples
        } else {
            MsgType::Activations
        }
    }

    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u16(self.batch as u16);
        e.u16(self.seq_len as u16);
        e.u16(self.pooled_h as u16);
        e.u16(self.pooled_w as u16);
        e.u32(self.packed.len() as u32);
        e.bytes(&self.packed);
        e.f32_slice(&self.powers);
        e.f32_slice(&self.targets);
        e.finish()
    }

    /// Wire decoding with typed errors.
    pub fn decode(payload: &[u8]) -> Result<StepRequest, NetError> {
        let mut d = Dec::new(payload);
        let batch = d.u16()? as usize;
        let seq_len = d.u16()? as usize;
        let pooled_h = d.u16()? as usize;
        let pooled_w = d.u16()? as usize;
        if batch == 0 || seq_len == 0 {
            return Err(NetError::Decode(format!(
                "degenerate step shape B={batch} L={seq_len}"
            )));
        }
        let packed_len = d.u32()? as usize;
        let packed = d.bytes(packed_len)?.to_vec();
        let powers = d.f32_vec(batch * seq_len)?;
        let targets = d.f32_vec(batch)?;
        d.expect_empty()?;
        Ok(StepRequest {
            batch,
            seq_len,
            pooled_h,
            pooled_w,
            packed,
            powers,
            targets,
        })
    }
}

/// The BS's reply to a training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReply {
    /// Minibatch MSE loss.
    pub loss: f32,
    /// BS-half post-clip global gradient norm.
    pub bs_grad_norm: f32,
    /// `‖Δθ_BS‖/‖θ_BS‖` for this update, when the request asked for it.
    pub update_ratio_bs: Option<f64>,
    /// Raw (unclipped) cut-layer gradient, `B·L·ph·pw` values; empty for
    /// RF-only.
    pub cut_grad: Vec<f32>,
}

impl StepReply {
    /// Wire encoding; the ratio's presence is signalled by
    /// [`FLAG_WANT_RATIO`] on the frame.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut e = Enc::new();
        e.f32(self.loss);
        e.f32(self.bs_grad_norm);
        let mut flags = 0u8;
        if let Some(r) = self.update_ratio_bs {
            flags |= FLAG_WANT_RATIO;
            e.f64(r);
        }
        e.u32(self.cut_grad.len() as u32);
        e.f32_slice(&self.cut_grad);
        (flags, e.finish())
    }

    /// Wire decoding with typed errors.
    pub fn decode(flags: u8, payload: &[u8]) -> Result<StepReply, NetError> {
        let mut d = Dec::new(payload);
        let loss = d.f32()?;
        let bs_grad_norm = d.f32()?;
        let update_ratio_bs = if flags & FLAG_WANT_RATIO != 0 {
            Some(d.f64()?)
        } else {
            None
        };
        let n = d.u32()? as usize;
        let cut_grad = d.f32_vec(n)?;
        d.expect_empty()?;
        Ok(StepReply {
            loss,
            bs_grad_norm,
            update_ratio_bs,
            cut_grad,
        })
    }
}

/// A validation forward request (no gradients, no optimizer step).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Minibatch size `B`.
    pub batch: usize,
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Pooled activation height (0 for RF-only).
    pub pooled_h: usize,
    /// Pooled activation width (0 for RF-only).
    pub pooled_w: usize,
    /// Bit-packed cut activations (empty for RF-only).
    pub packed: Vec<u8>,
    /// Normalized powers, `B·L` values.
    pub powers: Vec<f32>,
}

impl EvalRequest {
    /// Wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u16(self.batch as u16);
        e.u16(self.seq_len as u16);
        e.u16(self.pooled_h as u16);
        e.u16(self.pooled_w as u16);
        e.u32(self.packed.len() as u32);
        e.bytes(&self.packed);
        e.f32_slice(&self.powers);
        e.finish()
    }

    /// Wire decoding with typed errors.
    pub fn decode(payload: &[u8]) -> Result<EvalRequest, NetError> {
        let mut d = Dec::new(payload);
        let batch = d.u16()? as usize;
        let seq_len = d.u16()? as usize;
        let pooled_h = d.u16()? as usize;
        let pooled_w = d.u16()? as usize;
        if batch == 0 || seq_len == 0 {
            return Err(NetError::Decode(format!(
                "degenerate eval shape B={batch} L={seq_len}"
            )));
        }
        let packed_len = d.u32()? as usize;
        let packed = d.bytes(packed_len)?.to_vec();
        let powers = d.f32_vec(batch * seq_len)?;
        d.expect_empty()?;
        Ok(EvalRequest {
            batch,
            seq_len,
            pooled_h,
            pooled_w,
            packed,
            powers,
        })
    }
}

/// Encodes a `Predictions` payload from the `[B, 1]` prediction tensor.
pub fn encode_predictions(pred: &Tensor) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(pred.data().len() as u32);
    e.f32_slice(pred.data());
    e.finish()
}

/// Decodes a `Predictions` payload.
pub fn decode_predictions(payload: &[u8]) -> Result<Vec<f32>, NetError> {
    let mut d = Dec::new(payload);
    let n = d.u32()? as usize;
    let out = d.f32_vec(n)?;
    d.expect_empty()?;
    Ok(out)
}

/// Encodes a `Nack` payload.
pub fn encode_nack(code: NackCode, detail: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(code as u16);
    e.str(detail);
    e.finish()
}

/// Decodes a `Nack` payload.
pub fn decode_nack(payload: &[u8]) -> Result<(NackCode, String), NetError> {
    let mut d = Dec::new(payload);
    let raw = d.u16()?;
    let code = NackCode::from_u16(raw)
        .ok_or_else(|| NetError::Decode(format!("unknown nack code {raw}")))?;
    let detail = d.str()?;
    d.expect_empty()?;
    Ok((code, detail))
}

/// Encodes a `ConfigAck` payload: the BS echoes the wiring facts it
/// derived so the UE can cross-check before the first step.
pub fn encode_config_ack(pooled_pixels: usize, feature_dim: usize, params: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(pooled_pixels as u32);
    e.u32(feature_dim as u32);
    e.u64(params);
    e.finish()
}

/// Decodes a `ConfigAck` payload into `(pooled_pixels, feature_dim,
/// parameter_count)`.
pub fn decode_config_ack(payload: &[u8]) -> Result<(usize, usize, u64), NetError> {
    let mut d = Dec::new(payload);
    let p = d.u32()? as usize;
    let f = d.u32()? as usize;
    let params = d.u64()?;
    d.expect_empty()?;
    Ok((p, f, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn msg_type_all_roundtrips_through_the_wire_byte() {
        for (i, ty) in MsgType::ALL.iter().enumerate() {
            assert_eq!(*ty as u8, i as u8 + 1, "ALL must stay in wire-byte order");
            assert_eq!(MsgType::from_u8(*ty as u8), Some(*ty));
        }
        assert_eq!(MsgType::from_u8(0), None);
        assert_eq!(MsgType::from_u8(MsgType::ALL.len() as u8 + 1), None);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello split learning".to_vec();
        let bytes = encode_frame(MsgType::Heartbeat, 0b1, &payload);
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.ty, MsgType::Heartbeat);
        assert_eq!(frame.flags, 1);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn corrupted_payload_is_a_typed_checksum_error() {
        let mut bytes = encode_frame(MsgType::Gradients, 0, &[1, 2, 3, 4]);
        bytes[HEADER_LEN] ^= 0xff;
        match decode_frame(&bytes) {
            Err(NetError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_trailer_is_a_typed_checksum_error() {
        let mut bytes = encode_frame(MsgType::Heartbeat, 0, &[]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_typed_and_checked_after_checksum() {
        // Hand-roll a version-99 frame with a correct checksum.
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&99u16.to_le_bytes());
        raw.push(MsgType::Hello as u8);
        raw.push(0);
        raw.extend_from_slice(&0u32.to_le_bytes());
        let sum = fnv1a_64(&raw);
        raw.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_frame(&raw), Err(NetError::BadVersion(99))));
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = encode_frame(MsgType::Heartbeat, 0, &[]);
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(NetError::BadMagic(_))));
    }

    #[test]
    fn unknown_type_is_typed() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        raw.push(200);
        raw.push(0);
        raw.extend_from_slice(&0u32.to_le_bytes());
        let sum = fnv1a_64(&raw);
        raw.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_frame(&raw), Err(NetError::BadType(200))));
    }

    #[test]
    fn session_spec_roundtrip() {
        let spec = SessionSpec {
            scheme: Scheme::ImgRf,
            pooling: PoolingDim::new(4, 4),
            image_h: 16,
            image_w: 16,
            seq_len: 8,
            batch_size: 16,
            conv_channels: 3,
            hidden_dim: 24,
            rnn_cell: RnnCell::Gru,
            bit_depth: 8,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            seed: 0xdead_beef,
            trace_id: 0x0123_4567_89ab_cdef,
        };
        let decoded = SessionSpec::decode(&spec.encode()).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn trace_context_prepend_strip_roundtrip() {
        let ctx = TraceContext {
            trace_id: u64::MAX - 7,
            parent_span: (1 << 63) | 42,
            sim_anchor_us: 1_250_000,
            sim_dur_us: 310,
        };
        let body = b"inner payload".to_vec();
        let (flags, payload) = ctx.prepend(&body);
        assert_eq!(flags, FLAG_TRACE);
        assert_eq!(payload.len(), TraceContext::WIRE_LEN + body.len());
        let (got, rest) = TraceContext::strip(flags, &payload).unwrap();
        assert_eq!(got, Some(ctx));
        assert_eq!(rest, &body[..]);
        // Without the flag the payload passes through untouched.
        let (none, all) = TraceContext::strip(0, &payload).unwrap();
        assert!(none.is_none());
        assert_eq!(all, &payload[..]);
    }

    #[test]
    fn trace_flag_without_context_bytes_is_a_typed_error() {
        let short = [0u8; TraceContext::WIRE_LEN - 1];
        assert!(matches!(
            TraceContext::strip(FLAG_TRACE, &short),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn activations_pack_bit_exact_across_depths() {
        let mut rng = StdRng::seed_from_u64(9);
        for bit_depth in [1usize, 2, 3, 7, 8, 12, 16, 24] {
            let max = (1u32 << bit_depth) - 1;
            let values: Vec<f32> = (0..257)
                .map(|_| rng.random_range(0..=max) as f32 / max as f32)
                .collect();
            let packed = pack_activations(&values, bit_depth).unwrap();
            assert_eq!(packed.len(), (values.len() * bit_depth).div_ceil(8));
            let back = unpack_activations(&packed, values.len(), bit_depth).unwrap();
            for (a, b) in values.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "R={bit_depth}");
            }
        }
    }

    #[test]
    fn quantizer_output_is_exactly_representable() {
        // End to end with the real quantizer: arbitrary floats in, the
        // packed wire payload reconstructs the quantized tensor bitwise.
        let mut rng = StdRng::seed_from_u64(10);
        let q = sl_core::Quantizer::new(8);
        let raw: Vec<f32> = (0..512).map(|_| rng.random_range(-0.2..1.2)).collect();
        let t = Tensor::from_slice(&raw);
        let quant = q.quantize(&t);
        let packed = pack_activations(quant.data(), 8).unwrap();
        let back = unpack_activations(&packed, quant.data().len(), 8).unwrap();
        for (a, b) in quant.data().iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn off_grid_value_is_a_typed_error_not_a_panic() {
        assert!(matches!(
            pack_activations(&[0.123_456_7], 8),
            Err(NetError::Decode(_))
        ));
        assert!(matches!(
            pack_activations(&[f32::NAN], 8),
            Err(NetError::Decode(_))
        ));
    }

    #[test]
    fn step_request_roundtrip() {
        let req = StepRequest {
            batch: 4,
            seq_len: 3,
            pooled_h: 2,
            pooled_w: 2,
            packed: pack_activations(&[0.0f32; 48], 8).unwrap(),
            powers: (0..12).map(|i| i as f32 * 0.25).collect(),
            targets: vec![0.5, -0.5, 1.0, 0.0],
        };
        assert_eq!(req.msg_type(), MsgType::Activations);
        let back = StepRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn step_reply_roundtrip_with_and_without_ratio() {
        for ratio in [None, Some(0.001234f64)] {
            let reply = StepReply {
                loss: 0.75,
                bs_grad_norm: 2.5,
                update_ratio_bs: ratio,
                cut_grad: vec![0.1, -0.2, 0.3],
            };
            let (flags, payload) = reply.encode();
            let back = StepReply::decode(flags, &payload).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn truncated_payloads_decode_to_typed_errors() {
        let req = StepRequest {
            batch: 2,
            seq_len: 2,
            pooled_h: 0,
            pooled_w: 0,
            packed: Vec::new(),
            powers: vec![0.0; 4],
            targets: vec![0.0; 2],
        };
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(
                matches!(StepRequest::decode(&bytes[..cut]), Err(NetError::Decode(_))),
                "truncation at {cut} must not panic or succeed"
            );
        }
    }

    #[test]
    fn nack_roundtrip() {
        let payload = encode_nack(NackCode::WiringRejected, "pooling exceeds image");
        let (code, detail) = decode_nack(&payload).unwrap();
        assert_eq!(code, NackCode::WiringRejected);
        assert_eq!(detail, "pooling exceeds image");
    }
}
