//! The BS side of the split-learning link: a multi-client TCP server
//! whose per-session protocol loop is generic over any `Read + Write`
//! stream (so tests can drive it without sockets).
//!
//! Handshake state machine (DESIGN.md §9):
//!
//! ```text
//!         Hello(SessionSpec)
//!   Idle ────────────────────▶ wiring check (sl_core::WiringSpec)
//!                               │ ok: ConfigAck        │ err: Nack(WiringRejected)
//!                               ▼                      ▼
//!                            Training ◀─┐            closed
//!     Activations/RfSamples ──▶ step ───┘ Gradients
//!     EvalBatch ──────────────▶ forward ─┘ Predictions
//!     Nack ───────────────────▶ resend cached reply
//!     Heartbeat ──────────────▶ echo
//!     Shutdown ───────────────▶ echo, close
//! ```
//!
//! Every session rebuilds the *identical* model both trainers derive
//! from the handshake seed, applies the same Adam/clip schedule to the
//! BS half, and never panics on malformed input — bad frames come back
//! as typed `Nack`s.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Mutex};
use std::thread;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{update_ratio, Scheme, SplitModel, WiringSpec};
use sl_nn::{clip_global_norm, mse_loss, Adam, Optimizer};
use sl_tensor::Tensor;

use sl_telemetry::{SpanRecord, Tracer, Value, BS_SPAN_NAMESPACE};

use crate::client::Connection;
use crate::live::LiveMetrics;
use crate::wire::{
    encode_config_ack, encode_nack, encode_predictions, unpack_activations, EvalRequest, MsgType,
    NackCode, NetError, SessionSpec, StepReply, StepRequest, TraceContext, FLAG_WANT_RATIO,
};

/// What one session did, for operator reporting.
#[derive(Debug, Clone, Default)]
pub struct SessionSummary {
    /// Human-readable config label (empty before a handshake).
    pub config: String,
    /// Training steps applied.
    pub steps: u64,
    /// Validation forwards served.
    pub evals: u64,
    /// Heartbeats echoed.
    pub heartbeats: u64,
    /// Nacks sent (corrupted/invalid frames received).
    pub nacks_sent: u64,
    /// Nacks received (our replies corrupted in flight).
    pub nacks_received: u64,
    /// Cached replies resent on request.
    pub resends: u64,
    /// Frames received intact.
    pub frames_received: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Whether the session ended with a clean Shutdown exchange.
    pub clean_shutdown: bool,
    /// Exponential moving average of the per-step training loss
    /// (α = 0.1; 0.0 until the first step) — the live-view health
    /// signal published as the `loss_ema` session gauge.
    pub loss_ema: f64,
    /// BS-side spans recorded under the UE's trace id (empty unless the
    /// handshake carried a nonzero `SessionSpec::trace_id`). Span ids
    /// live in [`BS_SPAN_NAMESPACE`] so they never collide with the
    /// UE-side counter.
    pub spans: Vec<SpanRecord>,
}

/// Per-session training state, built after a validated handshake.
struct Session {
    spec: SessionSpec,
    model: SplitModel,
    opt_bs: Adam,
    pooled: (usize, usize),
}

impl Session {
    fn build(spec: SessionSpec) -> Result<(Session, Vec<u8>), String> {
        let wiring = WiringSpec {
            scheme: spec.scheme,
            pooling: spec.pooling,
            image_h: spec.image_h,
            image_w: spec.image_w,
            seq_len: spec.seq_len,
            batch_size: spec.batch_size,
            conv_channels: spec.conv_channels,
            hidden_dim: spec.hidden_dim,
            rnn_cell: spec.rnn_cell,
            bs_feature_dim: None,
        };
        let report = wiring.check().map_err(|e| e.to_string())?;
        // Identical init draws to the UE: same seed, same constructor
        // argument order, same RNG stream.
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut model = SplitModel::with_cell(
            spec.scheme,
            spec.pooling,
            spec.image_h,
            spec.image_w,
            spec.seq_len,
            spec.conv_channels,
            spec.hidden_dim,
            spec.bit_depth,
            spec.rnn_cell,
            &mut rng,
        );
        let ack = encode_config_ack(
            report.pooled_pixels,
            report.feature_dim,
            model.parameter_count() as u64,
        );
        let pooled = spec.pooling.output_size(spec.image_h, spec.image_w);
        Ok((
            Session {
                opt_bs: Adam::new(spec.learning_rate, 0.9, 0.999, 1e-8),
                spec,
                model,
                pooled,
            },
            ack,
        ))
    }

    /// Decodes the request's cut activations (validating shape) and the
    /// power history.
    fn decode_inputs(
        &self,
        batch: usize,
        seq_len: usize,
        pooled_h: usize,
        pooled_w: usize,
        packed: &[u8],
        powers: Vec<f32>,
    ) -> Result<(Option<Tensor>, Tensor), String> {
        if seq_len != self.spec.seq_len {
            return Err(format!(
                "sequence length {seq_len} != session L {}",
                self.spec.seq_len
            ));
        }
        let uses_images = self.spec.scheme.uses_images();
        let cut = if uses_images {
            let (ph, pw) = self.pooled;
            if (pooled_h, pooled_w) != (ph, pw) {
                return Err(format!(
                    "pooled shape {pooled_h}x{pooled_w} != session {ph}x{pw}"
                ));
            }
            let count = batch * seq_len * ph * pw;
            let values = unpack_activations(packed, count, self.spec.bit_depth)
                .map_err(|e| e.to_string())?;
            Some(
                Tensor::from_vec([batch * seq_len, 1, ph, pw], values)
                    .map_err(|e| format!("cut tensor: {e}"))?,
            )
        } else {
            if pooled_h != 0 || pooled_w != 0 || !packed.is_empty() {
                return Err("RF-only session received image activations".into());
            }
            None
        };
        let powers =
            Tensor::from_vec([batch, seq_len], powers).map_err(|e| format!("power tensor: {e}"))?;
        Ok((cut, powers))
    }

    /// One BS-side training step — the same arithmetic, in the same
    /// order, as the BS portion of `sl_core::SplitTrainer::step_inner`.
    fn train_step(&mut self, req: &StepRequest, want_ratio: bool) -> Result<StepReply, String> {
        if req.batch != self.spec.batch_size {
            return Err(format!(
                "step batch {} != session batch {}",
                req.batch, self.spec.batch_size
            ));
        }
        let (cut, powers) = self.decode_inputs(
            req.batch,
            req.seq_len,
            req.pooled_h,
            req.pooled_w,
            &req.packed,
            req.powers.clone(),
        )?;
        let targets = Tensor::from_vec([req.batch, 1], req.targets.clone())
            .map_err(|e| format!("target tensor: {e}"))?;
        let pred = self
            .model
            .forward_bs(cut.as_ref(), &powers, req.batch, req.seq_len);
        let loss = mse_loss(&pred, &targets);
        // The cut gradient ships *unclipped* — clipping applies to
        // parameter gradients, and the UE half clips its own.
        let cut_grad = self.model.backward_bs(&loss.grad);
        let bs_norm = {
            let mut pairs = self.model.bs_params_and_grads();
            let mut grads: Vec<&mut Tensor> = pairs.iter_mut().map(|(_, g)| &mut **g).collect();
            clip_global_norm(&mut grads, self.spec.grad_clip)
        };
        let prev_bs: Option<Vec<Tensor>> = want_ratio.then(|| {
            self.model
                .bs_params_and_grads()
                .iter()
                .map(|(p, _)| (**p).clone())
                .collect()
        });
        self.opt_bs.step(&mut self.model.bs_params_and_grads());
        self.model.zero_grads();
        let ratio = prev_bs.map(|prev| update_ratio(&prev, &self.model.bs_params_and_grads()));
        Ok(StepReply {
            loss: loss.loss,
            bs_grad_norm: bs_norm,
            update_ratio_bs: ratio,
            cut_grad: cut_grad.map(|t| t.data().to_vec()).unwrap_or_default(),
        })
    }

    /// One validation forward (no gradients, no update).
    fn eval(&mut self, req: &EvalRequest) -> Result<Vec<u8>, String> {
        let (cut, powers) = self.decode_inputs(
            req.batch,
            req.seq_len,
            req.pooled_h,
            req.pooled_w,
            &req.packed,
            req.powers.clone(),
        )?;
        let pred = self
            .model
            .forward_bs(cut.as_ref(), &powers, req.batch, req.seq_len);
        Ok(encode_predictions(&pred))
    }

    fn label(&self) -> String {
        if self.spec.scheme == Scheme::RfOnly {
            self.spec.scheme.to_string()
        } else {
            format!("{}, {}", self.spec.scheme, self.spec.pooling)
        }
    }
}

/// Serves one complete session over any byte stream. `compute_lock`
/// serializes model compute across concurrent sessions of a
/// multi-client server (network I/O stays concurrent).
///
/// Returns the session summary; protocol-fatal conditions (desync,
/// socket death) surface as `Err`.
pub fn serve_session<S: Read + Write>(
    stream: S,
    compute_lock: &Mutex<()>,
) -> Result<SessionSummary, NetError> {
    serve_session_observed(stream, compute_lock, None)
}

/// [`serve_session`] with an optional live-metrics observer: after
/// every handled frame the running [`SessionSummary`] is published to
/// `live` under the given session id, so a scrape sees steps, nacks and
/// the loss EMA move while training is in flight.
pub fn serve_session_observed<S: Read + Write>(
    stream: S,
    compute_lock: &Mutex<()>,
    live: Option<(&LiveMetrics, u64)>,
) -> Result<SessionSummary, NetError> {
    let mut conn = Connection::new(stream);
    let mut summary = SessionSummary::default();
    let mut session: Option<Session> = None;
    // The last substantive reply, cached so a Nack'd (corrupted) reply
    // can be resent without recomputing — recomputing would double-apply
    // the optimizer step.
    let mut last_reply: Option<(MsgType, u8, Vec<u8>)> = None;
    // BS-side tracing: created at handshake when the UE announces a
    // trace id; spans stitch under the UE's trace via the per-step
    // wire context. `last_end_us` is the latest simulated instant the
    // UE has told us about — recovery spans (which arrive without a
    // readable context) anchor there.
    let mut tracer: Option<Tracer> = None;
    let mut last_end_us: u64 = 0;

    macro_rules! nack {
        ($code:expr, $detail:expr) => {{
            conn.send(MsgType::Nack, 0, &encode_nack($code, $detail))?;
            summary.nacks_sent += 1;
        }};
    }

    loop {
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(NetError::ChecksumMismatch { .. }) => {
                // Corrupted in flight but frame-aligned: ask for a resend.
                nack!(NackCode::ChecksumMismatch, "frame failed checksum");
                if let Some(t) = tracer.as_mut() {
                    t.record_under(
                        0,
                        "bs.nack_sent",
                        "net",
                        last_end_us,
                        0,
                        vec![("count".into(), Value::U64(summary.nacks_sent))],
                    );
                }
                continue;
            }
            Err(NetError::BadVersion(v)) => {
                // Speak-once mismatch: tell the peer, then close — there
                // is no point retrying a version disagreement.
                nack!(
                    NackCode::BadVersion,
                    &format!("protocol version {v} not supported")
                );
                summary.frames_received = conn.metrics.frames_received;
                summary.bytes_received = conn.metrics.bytes_received;
                return Ok(summary);
            }
            Err(NetError::BadType(t)) => {
                nack!(NackCode::BadType, &format!("unknown message type {t}"));
                continue;
            }
            Err(e) => return Err(e),
        };

        match frame.ty {
            MsgType::Hello => {
                if session.is_some() {
                    nack!(NackCode::Protocol, "duplicate Hello");
                    continue;
                }
                let spec = match SessionSpec::decode(&frame.payload) {
                    Ok(s) => s,
                    Err(e) => {
                        nack!(NackCode::Protocol, &format!("bad SessionSpec: {e}"));
                        continue;
                    }
                };
                // The wiring contract gates the session: not a single
                // training byte flows over a miswired split.
                match Session::build(spec) {
                    Ok((s, ack)) => {
                        summary.config = s.label();
                        if s.spec.trace_id != 0 {
                            tracer = Some(Tracer::with_namespace(
                                s.spec.trace_id,
                                "bs",
                                BS_SPAN_NAMESPACE,
                            ));
                        }
                        session = Some(s);
                        conn.send(MsgType::ConfigAck, 0, &ack)?;
                        last_reply = Some((MsgType::ConfigAck, 0, ack));
                    }
                    Err(detail) => {
                        nack!(NackCode::WiringRejected, &detail);
                        summary.frames_received = conn.metrics.frames_received;
                        summary.bytes_received = conn.metrics.bytes_received;
                        return Ok(summary);
                    }
                }
            }
            MsgType::Activations | MsgType::RfSamples => {
                let Some(sess) = session.as_mut() else {
                    nack!(NackCode::Protocol, "training step before handshake");
                    continue;
                };
                // Peel the optional trace context off the payload before
                // the step request proper.
                let (ctx, body) = match TraceContext::strip(frame.flags, &frame.payload) {
                    Ok(x) => x,
                    Err(e) => {
                        nack!(NackCode::Protocol, &format!("bad trace context: {e}"));
                        continue;
                    }
                };
                if let Some(c) = ctx {
                    last_end_us = c.sim_anchor_us.saturating_add(c.sim_dur_us);
                }
                let req = match StepRequest::decode(body) {
                    Ok(r) => r,
                    Err(e) => {
                        nack!(NackCode::Protocol, &format!("bad step request: {e}"));
                        continue;
                    }
                };
                let want_ratio = frame.flags & FLAG_WANT_RATIO != 0;
                let reply = {
                    let _guard = compute_lock.lock().unwrap_or_else(|e| e.into_inner());
                    sess.train_step(&req, want_ratio)
                };
                match reply {
                    Ok(reply) => {
                        summary.steps += 1;
                        let loss = f64::from(reply.loss);
                        if loss.is_finite() {
                            summary.loss_ema = if summary.steps == 1 {
                                loss
                            } else {
                                0.9 * summary.loss_ema + 0.1 * loss
                            };
                        }
                        // Stitch the BS compute under the UE's per-step
                        // `bs.compute` span via the wire context.
                        if let (Some(t), Some(c)) = (tracer.as_mut(), ctx) {
                            t.record_under(
                                c.parent_span,
                                "bs.step",
                                "bs",
                                c.sim_anchor_us,
                                c.sim_dur_us,
                                vec![
                                    ("session".into(), Value::Str(sess.label())),
                                    ("step".into(), Value::U64(summary.steps)),
                                    ("loss".into(), Value::F64(f64::from(reply.loss))),
                                ],
                            );
                        }
                        let (flags, payload) = reply.encode();
                        conn.send(MsgType::Gradients, flags, &payload)?;
                        last_reply = Some((MsgType::Gradients, flags, payload));
                    }
                    Err(detail) => nack!(NackCode::Protocol, &detail),
                }
            }
            MsgType::EvalBatch => {
                let Some(sess) = session.as_mut() else {
                    nack!(NackCode::Protocol, "eval before handshake");
                    continue;
                };
                let req = match EvalRequest::decode(&frame.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        nack!(NackCode::Protocol, &format!("bad eval request: {e}"));
                        continue;
                    }
                };
                let reply = {
                    let _guard = compute_lock.lock().unwrap_or_else(|e| e.into_inner());
                    sess.eval(&req)
                };
                match reply {
                    Ok(payload) => {
                        summary.evals += 1;
                        conn.send(MsgType::Predictions, 0, &payload)?;
                        last_reply = Some((MsgType::Predictions, 0, payload));
                    }
                    Err(detail) => nack!(NackCode::Protocol, &detail),
                }
            }
            MsgType::Nack => {
                // Our reply got corrupted in flight: resend the cached
                // copy byte-for-byte.
                summary.nacks_received += 1;
                match &last_reply {
                    Some((ty, flags, payload)) => {
                        summary.resends += 1;
                        conn.send(*ty, *flags, payload)?;
                        if let Some(t) = tracer.as_mut() {
                            t.record_under(
                                0,
                                "bs.resend",
                                "net",
                                last_end_us,
                                0,
                                vec![("count".into(), Value::U64(summary.resends))],
                            );
                        }
                    }
                    None => nack!(NackCode::Protocol, "nothing to resend"),
                }
            }
            MsgType::Heartbeat => {
                summary.heartbeats += 1;
                conn.send(MsgType::Heartbeat, 0, &[])?;
                last_reply = Some((MsgType::Heartbeat, 0, Vec::new()));
            }
            MsgType::Shutdown => {
                conn.send(MsgType::Shutdown, 0, &[])?;
                summary.clean_shutdown = true;
                summary.frames_received = conn.metrics.frames_received;
                summary.bytes_received = conn.metrics.bytes_received;
                if let Some(t) = tracer.as_mut() {
                    summary.spans = t.drain();
                }
                return Ok(summary);
            }
            MsgType::ConfigAck | MsgType::Gradients | MsgType::Predictions => {
                nack!(
                    NackCode::Protocol,
                    &format!("{:?} is a BS->UE message", frame.ty)
                );
            }
        }

        // Keep transport totals current and publish the running summary
        // to the live view so scrapes observe training in flight.
        summary.frames_received = conn.metrics.frames_received;
        summary.bytes_received = conn.metrics.bytes_received;
        if let Some((hub, id)) = live {
            hub.update(id, &summary, true);
        }
    }
}

/// A multi-client BS server: one OS thread per connection, model compute
/// serialized through a shared lock.
#[derive(Debug)]
pub struct BsServer {
    listener: TcpListener,
}

impl BsServer {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<BsServer> {
        // slm-lint: allow(no-nondeterminism) sl-net's whole purpose is real socket I/O; determinism is preserved at the protocol layer (DESIGN.md §9)
        let listener = TcpListener::bind(addr)?;
        Ok(BsServer { listener })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves sessions until `max_sessions` have completed
    /// (`None`: serve forever). Each connection runs on its own thread;
    /// returns every finished session's outcome with its peer address.
    pub fn run(
        &self,
        max_sessions: Option<usize>,
    ) -> Vec<(SocketAddr, Result<SessionSummary, NetError>)> {
        let mut out = Vec::new();
        self.serve(max_sessions, None, |_id, peer, result| {
            out.push((peer, result));
        });
        out
    }

    /// The streaming form of [`BsServer::run`]: accepts and serves
    /// sessions, invoking `on_session` *as each session finishes* (in
    /// completion order) rather than collecting everything until the
    /// accept loop ends. A journaling caller can therefore flush
    /// per-session state the moment it exists — a dying server never
    /// holds hours of summaries only in memory.
    ///
    /// Session ids are the accept order (0-based); with `live` given,
    /// every session publishes its running summary under that id while
    /// it is in flight, and its final state when it completes.
    pub fn serve<F>(&self, max_sessions: Option<usize>, live: Option<&LiveMetrics>, on_session: F)
    where
        F: FnMut(u64, SocketAddr, Result<SessionSummary, NetError>),
    {
        let mut on_session = on_session;
        let compute_lock = Mutex::new(());
        let (tx, rx) = mpsc::channel();
        thread::scope(|scope| {
            let lock = &compute_lock;
            let accept_tx = tx;
            // slm-lint: allow(no-nondeterminism) connection handling is sl-net's concurrency domain; model compute stays serialized behind the session lock
            scope.spawn(move || {
                let mut accepted = 0u64;
                for incoming in self.listener.incoming() {
                    let stream: TcpStream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    stream.set_nodelay(true).ok();
                    let peer = stream
                        .peer_addr()
                        .unwrap_or_else(|_| SocketAddr::from(([0, 0, 0, 0], 0)));
                    let id = accepted;
                    let tx = accept_tx.clone();
                    // slm-lint: allow(no-nondeterminism) connection handling is sl-net's concurrency domain; model compute stays serialized behind the session lock
                    scope.spawn(move || {
                        let result =
                            serve_session_observed(stream, lock, live.map(|hub| (hub, id)));
                        if let Some(hub) = live {
                            hub.finish(id, result.as_ref().ok());
                        }
                        tx.send((id, peer, result)).ok();
                    });
                    accepted += 1;
                    if let Some(max) = max_sessions {
                        if accepted >= max as u64 {
                            break;
                        }
                    }
                }
                // Dropping the accept loop's sender (and its clones as
                // sessions finish) ends the result stream below.
            });
            for (id, peer, result) in rx {
                on_session(id, peer, result);
            }
        });
    }
}
