//! The UE side of the networked split-training loop.
//!
//! [`NetTrainer`] is `sl_core::SplitTrainer` with the BS half moved to
//! the other end of a [`UeClient`] link: each SGD step runs the UE CNN
//! locally, ships the bit-packed quantized cut activations to the BS,
//! and applies the returned cut-layer gradient — the paper's Fig. 1
//! loop over a real byte stream instead of a function call.
//!
//! **Determinism contract** (DESIGN.md §9): with `SLM_THREADS=1` a
//! `NetTrainer` run produces the *byte-identical* learning curve of the
//! in-process `SplitTrainer` under the same `ExperimentConfig`. The
//! pieces that make that hold:
//!
//! * one RNG, owned here, seeded from `config.seed`, consumed in the
//!   exact in-process order (model init → per-step channel draws →
//!   batch sampling);
//! * the BS rebuilds the identical model from the handshake seed and
//!   applies the identical Adam/clip arithmetic (`f32` losses and
//!   gradients cross the wire bit-exactly);
//! * the channel simulator still decides each step's fate *before* any
//!   bytes move: a voided step touches the socket not at all, and a
//!   delivered step's extra slots are realized as that many injected
//!   wire faults (corrupt frames → Nack → resend), so the fault layer
//!   exercises real recovery paths without perturbing the numerics.

use std::io::{Read, Write};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::{RetransmissionPolicy, TransferSimulator};
use sl_core::{
    subsample, update_ratio, Batch, CurvePoint, ExperimentConfig, HealthAction, HealthConfig,
    HealthMonitor, Scheme, SimClock, SplitModel, StepStats, StopReason, TrainOutcome,
};
use sl_nn::{clip_global_norm, rmse, Adam, Optimizer};
use sl_scene::SequenceDataset;
use sl_telemetry::{
    sim_us, trace_env_enabled, EventBuilder, SimSpan, Stopwatch, Telemetry, Tracer, Value,
};
use sl_tensor::Tensor;

use crate::client::{StepTrace, UeClient};
use crate::fault::FaultPlan;
use crate::wire::{
    pack_activations, EvalRequest, NetError, SessionSpec, StepRequest, TraceContext,
};

/// Outcome of one networked SGD step (mirrors the in-process
/// `StepResult`, which `sl_core` keeps private).
enum NetStep {
    Applied,
    Voided,
    HealthAborted,
}

/// Trains the UE half of one [`SplitModel`] against a remote BS session.
pub struct NetTrainer<S: Read + Write> {
    config: ExperimentConfig,
    model: SplitModel,
    opt_ue: Adam,
    uplink: TransferSimulator,
    downlink: TransferSimulator,
    clock: SimClock,
    rng: StdRng,
    health: HealthMonitor,
    client: UeClient<S>,
    pooled: (usize, usize),
    tracer: Option<Tracer>,
    steps_seen: u64,
}

impl<S: Read + Write> NetTrainer<S> {
    /// Builds the trainer and performs the config handshake: the BS
    /// validates the wiring (via `sl_core::WiringSpec`) and rebuilds the
    /// identical model before a single training byte flows. A rejection
    /// surfaces as [`NetError::HandshakeRejected`].
    ///
    /// Tracing follows `SLM_TRACE` (the handshake announces the trace
    /// id, so the decision is made here, not at `train_with` time); use
    /// [`NetTrainer::new_traced`] to control it explicitly.
    pub fn new(
        config: ExperimentConfig,
        dataset: &SequenceDataset,
        client: UeClient<S>,
    ) -> Result<Self, NetError> {
        let traced = trace_env_enabled();
        Self::new_traced(config, dataset, client, traced)
    }

    /// [`NetTrainer::new`] with tracing decided by the caller instead of
    /// the `SLM_TRACE` environment variable.
    pub fn new_traced(
        config: ExperimentConfig,
        dataset: &SequenceDataset,
        mut client: UeClient<S>,
        traced: bool,
    ) -> Result<Self, NetError> {
        config.validate();
        // Deterministic trace id: derived from the run's identity, never
        // from wall-clock or ambient randomness (DESIGN.md §9).
        let tracer = traced.then(|| {
            Tracer::for_run(
                &format!("{}|{}|seed={}", config.scheme, config.pooling, config.seed),
                "ue",
            )
        });
        let mut rng = StdRng::seed_from_u64(config.seed);
        let frame = &dataset.trace().frames[0];
        let (h, w) = (frame.dims()[0], frame.dims()[1]);
        let spec = SessionSpec {
            scheme: config.scheme,
            pooling: config.pooling,
            image_h: h,
            image_w: w,
            seq_len: dataset.seq_len(),
            batch_size: config.batch_size,
            conv_channels: config.conv_channels,
            hidden_dim: config.hidden_dim,
            rnn_cell: config.rnn_cell,
            bit_depth: config.bit_depth,
            learning_rate: config.learning_rate,
            grad_clip: config.grad_clip,
            seed: config.seed,
            trace_id: tracer.as_ref().map_or(0, Tracer::trace_id),
        };
        let (pooled_pixels, feature_dim, _params) = client.handshake(&spec)?;
        // Identical init draws to the BS (and to the in-process
        // trainer): same seed, same constructor, same RNG stream.
        let model = SplitModel::with_cell(
            config.scheme,
            config.pooling,
            h,
            w,
            dataset.seq_len(),
            config.conv_channels,
            config.hidden_dim,
            config.bit_depth,
            config.rnn_cell,
            &mut rng,
        );
        let pooled = config.pooling.output_size(h, w);
        if pooled_pixels != model.pooled_pixels()
            || feature_dim != config.scheme.feature_dim(model.pooled_pixels())
        {
            return Err(NetError::Protocol(format!(
                "BS acked {pooled_pixels} pooled pixels / feature width {feature_dim}, \
                 UE wired {} / {}",
                model.pooled_pixels(),
                config.scheme.feature_dim(model.pooled_pixels())
            )));
        }
        let lr = config.learning_rate;
        Ok(NetTrainer {
            opt_ue: Adam::new(lr, 0.9, 0.999, 1e-8),
            uplink: TransferSimulator::new(config.uplink.clone(), config.retransmission),
            downlink: TransferSimulator::new(config.downlink.clone(), config.retransmission),
            clock: SimClock::new(),
            model,
            config,
            rng,
            health: HealthMonitor::from_env(),
            client,
            pooled,
            tracer,
            steps_seen: 0,
        })
    }

    /// Replaces the `SLM_HEALTH`-derived watchdog configuration.
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health = HealthMonitor::new(cfg);
    }

    /// The simulated clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// The underlying client link (for metrics/fault counters).
    pub fn client_mut(&mut self) -> &mut UeClient<S> {
        &mut self.client
    }

    /// Sends the shutdown exchange and returns the client, ending the
    /// BS session cleanly.
    pub fn finish(mut self) -> Result<UeClient<S>, NetError> {
        self.client.shutdown()?;
        Ok(self.client)
    }

    /// The config label used for span/session attribution (matches the
    /// BS server's `Session::label`).
    fn session_label(&self) -> String {
        if self.config.scheme == Scheme::RfOnly {
            self.config.scheme.to_string()
        } else {
            format!("{}, {}", self.config.scheme, self.config.pooling)
        }
    }

    /// Extra slots beyond the clean minimum for this payload — each one
    /// was a simulated retransmission, realized on the wire as one
    /// injected corrupt frame (→ Nack → resend).
    fn excess_slots(sim: &TransferSimulator, payload_bits: u64, slots: u64) -> u64 {
        let clean = match sim.policy() {
            RetransmissionPolicy::WholePayload { .. } => 1,
            RetransmissionPolicy::Segmented { segment_bits, .. } => {
                payload_bits.div_ceil(segment_bits).max(1)
            }
        };
        slots.saturating_sub(clean)
    }

    /// Runs the full training loop (telemetry-free).
    pub fn train(&mut self, dataset: &SequenceDataset) -> Result<TrainOutcome, NetError> {
        self.train_with(dataset, &mut Telemetry::disabled())
    }

    /// Runs the full training loop, recording the same metric and event
    /// stream as `SplitTrainer::train_with` plus the link's `net.*`
    /// counters at the end.
    pub fn train_with(
        &mut self,
        dataset: &SequenceDataset,
        tele: &mut Telemetry,
    ) -> Result<TrainOutcome, NetError> {
        let b = self.config.batch_size;
        let steps_per_epoch = dataset.steps_per_epoch(b);
        let mut curve = Vec::new();
        let mut steps_applied = 0u64;
        let mut steps_voided = 0u64;
        let mut consecutive_voids = 0usize;
        if tele.is_enabled() {
            self.model.enable_profiling();
        }

        // Epoch-0 point: the untrained model.
        let mut val = self.validate_with(dataset, tele)?;
        curve.push(CurvePoint {
            elapsed_s: self.clock.elapsed_s(),
            epoch: 0,
            val_rmse_db: val,
        });

        let mut stop = StopReason::EpochLimit;
        let mut epochs = 0usize;
        'outer: for epoch in 1..=self.config.max_epochs {
            for _ in 0..steps_per_epoch {
                match self.step(dataset, b, tele)? {
                    NetStep::Applied => {
                        steps_applied += 1;
                        consecutive_voids = 0;
                    }
                    NetStep::Voided => {
                        steps_voided += 1;
                        consecutive_voids += 1;
                        if consecutive_voids >= self.config.stall_limit {
                            stop = StopReason::LinkStalled;
                            epochs = epoch;
                            break 'outer;
                        }
                    }
                    NetStep::HealthAborted => {
                        steps_applied += 1;
                        stop = StopReason::HealthAborted;
                        epochs = epoch;
                        break 'outer;
                    }
                }
            }
            epochs = epoch;
            val = self.validate_with(dataset, tele)?;
            curve.push(CurvePoint {
                elapsed_s: self.clock.elapsed_s(),
                epoch,
                val_rmse_db: val,
            });
            if tele.is_enabled() {
                tele.gauge_set("train.val_rmse_db", val as f64);
                // Every epoch lands in the series (no step-cadence
                // gating): validation points are rare and each one is a
                // curve point worth keeping.
                tele.series_point("train.val_rmse_db", self.clock.elapsed_s(), f64::from(val));
                tele.emit(
                    EventBuilder::new("epoch")
                        .u64("epoch", epoch as u64)
                        .f64("val_rmse_db", val as f64)
                        .f64("elapsed_s", self.clock.elapsed_s())
                        .f64("compute_s", self.clock.compute_s())
                        .f64("airtime_s", self.clock.airtime_s())
                        .u64("steps_applied", steps_applied)
                        .u64("steps_voided", steps_voided),
                );
            }
            // Flush the epoch's spans to the journal as we go so a
            // crashed run still leaves a usable partial trace.
            if tele.trace_enabled() {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.drain_into(tele);
                }
            }
            if val <= self.config.target_rmse_db {
                stop = StopReason::TargetReached;
                break;
            }
        }

        if tele.is_enabled() {
            self.model.publish_profiles(tele);
            self.model.disable_profiling();
            sl_tensor::ComputePool::global().publish_metrics(tele);
            tele.add("train.steps.applied", steps_applied);
            tele.add("train.steps.voided", steps_voided);
            tele.gauge_add("sim.compute_s", self.clock.compute_s());
            tele.gauge_add("sim.airtime_s", self.clock.airtime_s());
            self.uplink.publish_metrics(tele, "train.uplink");
            self.downlink.publish_metrics(tele, "train.downlink");
            self.client.publish_metrics(tele);
            tele.emit(
                EventBuilder::new("train_end")
                    .str("scheme", &self.config.scheme.to_string())
                    .str("pooling", &self.config.pooling.to_string())
                    .str("stop", &format!("{stop:?}"))
                    .u64("epochs", epochs as u64)
                    .u64("steps_applied", steps_applied)
                    .u64("steps_voided", steps_voided)
                    .f64("final_rmse_db", val as f64)
                    .f64("compute_s", self.clock.compute_s())
                    .f64("airtime_s", self.clock.airtime_s()),
            );
        }
        if tele.trace_enabled() {
            if let Some(tr) = self.tracer.as_mut() {
                tr.drain_into(tele);
            }
        }

        Ok(TrainOutcome {
            curve,
            stop,
            final_rmse_db: val,
            epochs,
            steps_applied,
            steps_voided,
            compute_s: self.clock.compute_s(),
            airtime_s: self.clock.airtime_s(),
        })
    }

    /// One networked SGD step with the in-process step's instrumentation
    /// envelope.
    fn step(
        &mut self,
        dataset: &SequenceDataset,
        b: usize,
        tele: &mut Telemetry,
    ) -> Result<NetStep, NetError> {
        let instrument = tele.is_enabled();
        let host = instrument.then(Stopwatch::start);
        let span = SimSpan::begin(self.clock.compute_s(), self.clock.airtime_s());

        let result = self.step_inner(dataset, b, tele)?;

        if instrument {
            if let Some(host) = host {
                host.observe(tele, "train.step");
            }
            span.observe(
                tele,
                "train.step",
                self.clock.compute_s(),
                self.clock.airtime_s(),
            );
        }
        Ok(result)
    }

    fn step_inner(
        &mut self,
        dataset: &SequenceDataset,
        b: usize,
        tele: &mut Telemetry,
    ) -> Result<NetStep, NetError> {
        let label = self.session_label();
        let cfg = &self.config;
        let uses_images = cfg.scheme.uses_images();
        self.steps_seen += 1;
        let seq = self.steps_seen;

        // The simulated channel decides each transfer's fate *first*,
        // drawing from the shared RNG in the exact in-process order. A
        // voided step never touches the socket; a delivered step's extra
        // slots become injected wire faults below. The simulated
        // timestamps `t0..t4` bracket the step's windows for tracing.
        let t0 = sim_us(self.clock.elapsed_s());
        self.clock
            .add_compute(cfg.compute.ue_seconds(self.model.ue_step_flops(b)));
        let t1 = sim_us(self.clock.elapsed_s());

        let mut uplink_plan = FaultPlan::clean();
        // (payload bits, slots, excess slots) when the window exists.
        let mut ul_stats: Option<(u64, u64, u64)> = None;
        if uses_images {
            let ul_bits = self.model.uplink_payload_bits(b);
            let out = self.uplink.transfer(ul_bits, &mut self.rng);
            self.clock
                .add_airtime(self.uplink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                if let Some(tr) = self.tracer.as_mut() {
                    let tv = sim_us(self.clock.elapsed_s());
                    let root = tr.begin("train.step", "step", t0);
                    tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
                    tr.record(
                        "uplink.transfer",
                        "link",
                        t1,
                        tv - t1,
                        vec![
                            ("bits".into(), Value::U64(ul_bits)),
                            ("slots".into(), Value::U64(out.slots())),
                            ("delivered".into(), Value::Bool(false)),
                        ],
                    );
                    tr.end_with(
                        root,
                        tv,
                        vec![
                            ("step".into(), Value::U64(seq)),
                            ("voided".into(), Value::Bool(true)),
                            ("session".into(), Value::Str(label)),
                        ],
                    );
                }
                return Ok(NetStep::Voided);
            }
            let excess = Self::excess_slots(&self.uplink, ul_bits, out.slots());
            ul_stats = Some((ul_bits, out.slots(), excess));
            uplink_plan = FaultPlan::retransmissions(excess);
        }
        let t2 = sim_us(self.clock.elapsed_s());

        self.clock
            .add_compute(cfg.compute.bs_seconds(self.model.bs_step_flops(b)));
        let t3 = sim_us(self.clock.elapsed_s());

        let mut downlink_plan = FaultPlan::clean();
        let mut dl_stats: Option<(u64, u64, u64)> = None;
        if uses_images {
            let dl_bits = self.model.downlink_payload_bits(b);
            let out = self.downlink.transfer(dl_bits, &mut self.rng);
            self.clock
                .add_airtime(self.downlink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                if let Some(tr) = self.tracer.as_mut() {
                    let tv = sim_us(self.clock.elapsed_s());
                    let root = tr.begin("train.step", "step", t0);
                    tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
                    if let Some((bits, slots, excess)) = ul_stats {
                        tr.record(
                            "uplink.transfer",
                            "link",
                            t1,
                            t2 - t1,
                            vec![
                                ("bits".into(), Value::U64(bits)),
                                ("slots".into(), Value::U64(slots)),
                                ("excess".into(), Value::U64(excess)),
                            ],
                        );
                    }
                    tr.record("bs.compute", "bs", t2, t3 - t2, Vec::new());
                    tr.record(
                        "downlink.transfer",
                        "link",
                        t3,
                        tv - t3,
                        vec![
                            ("bits".into(), Value::U64(dl_bits)),
                            ("slots".into(), Value::U64(out.slots())),
                            ("delivered".into(), Value::Bool(false)),
                        ],
                    );
                    tr.end_with(
                        root,
                        tv,
                        vec![
                            ("step".into(), Value::U64(seq)),
                            ("voided".into(), Value::Bool(true)),
                            ("session".into(), Value::Str(label)),
                        ],
                    );
                }
                return Ok(NetStep::Voided);
            }
            let excess = Self::excess_slots(&self.downlink, dl_bits, out.slots());
            dl_stats = Some((dl_bits, out.slots(), excess));
            downlink_plan = FaultPlan::retransmissions(excess);
        }
        let t4 = sim_us(self.clock.elapsed_s());

        // Record the delivered step's window spans now — every window is
        // already charged — and allocate the `bs.compute` span id the
        // wire context points the BS at.
        let mut open_root: Option<(sl_telemetry::OpenSpan, TraceContext)> = None;
        if let Some(tr) = self.tracer.as_mut() {
            let root = tr.begin("train.step", "step", t0);
            tr.record("ue.forward", "ue", t0, t1 - t0, Vec::new());
            tr.record(
                "quantize.pack",
                "ue",
                t1,
                0,
                vec![("bit_depth".into(), Value::U64(cfg.bit_depth as u64))],
            );
            if let Some((bits, slots, excess)) = ul_stats {
                tr.record(
                    "uplink.transfer",
                    "link",
                    t1,
                    t2 - t1,
                    vec![
                        ("bits".into(), Value::U64(bits)),
                        ("slots".into(), Value::U64(slots)),
                        ("excess".into(), Value::U64(excess)),
                    ],
                );
            }
            let bs_id = tr.record("bs.compute", "bs", t2, t3 - t2, Vec::new());
            if let Some((bits, slots, excess)) = dl_stats {
                tr.record(
                    "downlink.transfer",
                    "link",
                    t3,
                    t4 - t3,
                    vec![
                        ("bits".into(), Value::U64(bits)),
                        ("slots".into(), Value::U64(slots)),
                        ("excess".into(), Value::U64(excess)),
                    ],
                );
            }
            let ctx = TraceContext {
                trace_id: tr.trace_id(),
                parent_span: bs_id,
                sim_anchor_us: t2,
                sim_dur_us: t3 - t2,
            };
            open_root = Some((root, ctx));
        }

        let instrument = tele.is_enabled();
        let idx = dataset.sample_train_batch(b, &mut self.rng);
        let batch = Batch::assemble(dataset, dataset.normalizer(), &idx, uses_images);
        let l = batch.seq_len;

        // UE forward: CNN + pool + quantize — the exact payload values.
        let fwd = instrument.then(Stopwatch::start);
        let cut = self.model.forward_ue(&batch);
        if let Some(w) = fwd {
            w.observe(tele, "train.model");
        }

        let (pooled_h, pooled_w) = if uses_images { self.pooled } else { (0, 0) };
        let packed = match &cut {
            Some(t) => pack_activations(t.data(), cfg.bit_depth)?,
            None => Vec::new(),
        };
        let req = StepRequest {
            batch: b,
            seq_len: l,
            pooled_h,
            pooled_w,
            packed,
            powers: batch.powers_norm.data().to_vec(),
            targets: batch.targets_norm.data().to_vec(),
        };
        // `wants_update_ratio` flips off only after a warn-mode trip
        // inside `observe_step`, which happens after this point — so
        // reading it here matches the in-process read below the clip.
        let track_ratio = self.health.wants_update_ratio();
        let tracer = self.tracer.as_mut();
        let trace = match (tracer, &open_root) {
            (Some(tr), Some((root, ctx))) => Some(StepTrace {
                tracer: tr,
                ctx: *ctx,
                root: root.id(),
                end_us: t4,
            }),
            _ => None,
        };
        let reply = self
            .client
            .train_step(&req, track_ratio, uplink_plan, downlink_plan, trace)?;

        // UE backward from the delivered cut-layer gradient.
        let bwd = instrument.then(Stopwatch::start);
        if uses_images {
            let (ph, pw) = self.pooled;
            let cut_grad = Tensor::from_vec([b * l, 1, ph, pw], reply.cut_grad.clone())
                .map_err(|e| NetError::Decode(format!("cut gradient: {e}")))?;
            self.model.backward_ue(&cut_grad);
        }
        if let Some(w) = bwd {
            w.observe(tele, "train.model");
        }

        let ue_norm = {
            let mut pairs = self.model.ue_params_and_grads();
            let mut grads: Vec<&mut Tensor> = pairs.iter_mut().map(|(_, g)| &mut **g).collect();
            clip_global_norm(&mut grads, self.config.grad_clip)
        };
        let bs_norm = reply.bs_grad_norm;
        if instrument {
            if reply.loss.is_finite() {
                tele.observe("train.loss", reply.loss.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.loss");
            }
            if ue_norm.is_finite() {
                tele.observe("train.grad_norm.ue", ue_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
            if bs_norm.is_finite() {
                tele.observe("train.grad_norm.bs", bs_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
            // Time-series sampling keys on the step counter and stamps
            // the *simulated* clock, so two runs emit byte-identical
            // series regardless of wall clock or SLM_THREADS. The
            // networked trainer also samples its cumulative link
            // counters — the live view of retry pressure.
            if tele.should_sample(seq) {
                let now = self.clock.elapsed_s();
                if reply.loss.is_finite() {
                    tele.series_point("train.loss", now, f64::from(reply.loss.max(0.0)));
                }
                let m = self.client.metrics();
                tele.series_point("net.frames.sent", now, m.frames_sent as f64);
                tele.series_point("net.retries", now, m.retries as f64);
            }
        }

        let prev_ue: Option<Vec<Tensor>> = track_ratio.then(|| {
            self.model
                .ue_params_and_grads()
                .iter()
                .map(|(p, _)| (**p).clone())
                .collect()
        });
        self.opt_ue.step(&mut self.model.ue_params_and_grads());
        self.model.zero_grads();

        if let (Some(tr), Some((root, _ctx))) = (self.tracer.as_mut(), open_root) {
            tr.record("ue.backward", "ue", t4, 0, Vec::new());
            tr.record("opt.apply", "ue", t4, 0, Vec::new());
            tr.end_with(
                root,
                t4,
                vec![
                    ("step".into(), Value::U64(seq)),
                    ("loss".into(), Value::F64(f64::from(reply.loss))),
                    ("voided".into(), Value::Bool(false)),
                    ("session".into(), Value::Str(label)),
                ],
            );
        }

        if self.health.config().action != HealthAction::Off && !self.health.tripped() {
            let ratio_ue = prev_ue
                .map(|prev| update_ratio(&prev, &self.model.ue_params_and_grads()))
                .unwrap_or(0.0);
            let ratio_bs = reply.update_ratio_bs.unwrap_or(0.0);
            let stats = StepStats {
                loss: reply.loss as f64,
                grad_norm_ue: ue_norm as f64,
                grad_norm_bs: bs_norm as f64,
                update_ratio_ue: ratio_ue,
                update_ratio_bs: ratio_bs,
            };
            if let Some(verdict) = self.health.observe_step(stats) {
                let action = self.health.config().action;
                if tele.is_enabled() {
                    tele.emit(
                        EventBuilder::new("health.diverged")
                            .str("metric", verdict.metric())
                            .str("detail", &verdict.to_string())
                            .str(
                                "action",
                                if action == HealthAction::Abort {
                                    "abort"
                                } else {
                                    "warn"
                                },
                            )
                            .u64("nonfinite_loss", self.health.nonfinite_loss())
                            .u64("nonfinite_grad", self.health.nonfinite_grad()),
                    );
                }
                tele.warn(&format!("health watchdog tripped: {verdict}"));
                tele.warn(&self.health.report());
                if action == HealthAction::Abort {
                    return Ok(NetStep::HealthAborted);
                }
            }
        }
        Ok(NetStep::Applied)
    }

    /// Validation RMSE in dB over the (possibly subsampled) validation
    /// set, with each chunk's forward crossing the link (always clean —
    /// validation does not ride the simulated channel, matching the
    /// in-process trainer).
    pub fn validate(&mut self, dataset: &SequenceDataset) -> Result<f32, NetError> {
        self.validate_with(dataset, &mut Telemetry::disabled())
    }

    fn validate_with(
        &mut self,
        dataset: &SequenceDataset,
        tele: &mut Telemetry,
    ) -> Result<f32, NetError> {
        let indices = subsample(dataset.val_indices(), self.config.val_subsample);
        assert!(!indices.is_empty(), "validate: no indices");
        let normalizer = dataset.normalizer();
        let uses_images = self.config.scheme.uses_images();
        let mut preds = Vec::with_capacity(indices.len());
        let mut targets = Vec::with_capacity(indices.len());
        for chunk in indices.chunks(128) {
            let batch = Batch::assemble(dataset, normalizer, chunk, uses_images);
            let watch = tele.is_enabled().then(Stopwatch::start);
            let cut = self.model.forward_ue(&batch);
            let (pooled_h, pooled_w) = if uses_images { self.pooled } else { (0, 0) };
            let packed = match &cut {
                Some(t) => pack_activations(t.data(), self.config.bit_depth)?,
                None => Vec::new(),
            };
            let req = EvalRequest {
                batch: chunk.len(),
                seq_len: batch.seq_len,
                pooled_h,
                pooled_w,
                packed,
                powers: batch.powers_norm.data().to_vec(),
            };
            let p = self.client.eval(&req)?;
            if let Some(w) = watch {
                w.observe(tele, "train.model");
            }
            if p.len() != chunk.len() {
                return Err(NetError::Protocol(format!(
                    "BS returned {} predictions for a {}-sample batch",
                    p.len(),
                    chunk.len()
                )));
            }
            preds.extend_from_slice(&p);
            targets.extend_from_slice(batch.targets_norm.data());
        }
        let r = rmse(&Tensor::from_slice(&preds), &Tensor::from_slice(&targets));
        Ok(normalizer.rmse_to_db(r))
    }
}
