//! The UE side of the networked split-training loop.
//!
//! [`NetTrainer`] is `sl_core::SplitTrainer` with the BS half moved to
//! the other end of a [`UeClient`] link: each SGD step runs the UE CNN
//! locally, ships the bit-packed quantized cut activations to the BS,
//! and applies the returned cut-layer gradient — the paper's Fig. 1
//! loop over a real byte stream instead of a function call.
//!
//! **Determinism contract** (DESIGN.md §9): with `SLM_THREADS=1` a
//! `NetTrainer` run produces the *byte-identical* learning curve of the
//! in-process `SplitTrainer` under the same `ExperimentConfig`. The
//! pieces that make that hold:
//!
//! * one RNG, owned here, seeded from `config.seed`, consumed in the
//!   exact in-process order (model init → per-step channel draws →
//!   batch sampling);
//! * the BS rebuilds the identical model from the handshake seed and
//!   applies the identical Adam/clip arithmetic (`f32` losses and
//!   gradients cross the wire bit-exactly);
//! * the channel simulator still decides each step's fate *before* any
//!   bytes move: a voided step touches the socket not at all, and a
//!   delivered step's extra slots are realized as that many injected
//!   wire faults (corrupt frames → Nack → resend), so the fault layer
//!   exercises real recovery paths without perturbing the numerics.

use std::io::{Read, Write};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::{RetransmissionPolicy, TransferSimulator};
use sl_core::{
    subsample, update_ratio, Batch, CurvePoint, ExperimentConfig, HealthAction, HealthConfig,
    HealthMonitor, SimClock, SplitModel, StepStats, StopReason, TrainOutcome,
};
use sl_nn::{clip_global_norm, rmse, Adam, Optimizer};
use sl_scene::SequenceDataset;
use sl_telemetry::{EventBuilder, SimSpan, Stopwatch, Telemetry};
use sl_tensor::Tensor;

use crate::client::UeClient;
use crate::fault::FaultPlan;
use crate::wire::{pack_activations, EvalRequest, NetError, SessionSpec, StepRequest};

/// Outcome of one networked SGD step (mirrors the in-process
/// `StepResult`, which `sl_core` keeps private).
enum NetStep {
    Applied,
    Voided,
    HealthAborted,
}

/// Trains the UE half of one [`SplitModel`] against a remote BS session.
pub struct NetTrainer<S: Read + Write> {
    config: ExperimentConfig,
    model: SplitModel,
    opt_ue: Adam,
    uplink: TransferSimulator,
    downlink: TransferSimulator,
    clock: SimClock,
    rng: StdRng,
    health: HealthMonitor,
    client: UeClient<S>,
    pooled: (usize, usize),
}

impl<S: Read + Write> NetTrainer<S> {
    /// Builds the trainer and performs the config handshake: the BS
    /// validates the wiring (via `sl_core::WiringSpec`) and rebuilds the
    /// identical model before a single training byte flows. A rejection
    /// surfaces as [`NetError::HandshakeRejected`].
    pub fn new(
        config: ExperimentConfig,
        dataset: &SequenceDataset,
        mut client: UeClient<S>,
    ) -> Result<Self, NetError> {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let frame = &dataset.trace().frames[0];
        let (h, w) = (frame.dims()[0], frame.dims()[1]);
        let spec = SessionSpec {
            scheme: config.scheme,
            pooling: config.pooling,
            image_h: h,
            image_w: w,
            seq_len: dataset.seq_len(),
            batch_size: config.batch_size,
            conv_channels: config.conv_channels,
            hidden_dim: config.hidden_dim,
            rnn_cell: config.rnn_cell,
            bit_depth: config.bit_depth,
            learning_rate: config.learning_rate,
            grad_clip: config.grad_clip,
            seed: config.seed,
        };
        let (pooled_pixels, feature_dim, _params) = client.handshake(&spec)?;
        // Identical init draws to the BS (and to the in-process
        // trainer): same seed, same constructor, same RNG stream.
        let model = SplitModel::with_cell(
            config.scheme,
            config.pooling,
            h,
            w,
            dataset.seq_len(),
            config.conv_channels,
            config.hidden_dim,
            config.bit_depth,
            config.rnn_cell,
            &mut rng,
        );
        let pooled = config.pooling.output_size(h, w);
        if pooled_pixels != model.pooled_pixels()
            || feature_dim != config.scheme.feature_dim(model.pooled_pixels())
        {
            return Err(NetError::Protocol(format!(
                "BS acked {pooled_pixels} pooled pixels / feature width {feature_dim}, \
                 UE wired {} / {}",
                model.pooled_pixels(),
                config.scheme.feature_dim(model.pooled_pixels())
            )));
        }
        let lr = config.learning_rate;
        Ok(NetTrainer {
            opt_ue: Adam::new(lr, 0.9, 0.999, 1e-8),
            uplink: TransferSimulator::new(config.uplink.clone(), config.retransmission),
            downlink: TransferSimulator::new(config.downlink.clone(), config.retransmission),
            clock: SimClock::new(),
            model,
            config,
            rng,
            health: HealthMonitor::from_env(),
            client,
            pooled,
        })
    }

    /// Replaces the `SLM_HEALTH`-derived watchdog configuration.
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health = HealthMonitor::new(cfg);
    }

    /// The simulated clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// The underlying client link (for metrics/fault counters).
    pub fn client_mut(&mut self) -> &mut UeClient<S> {
        &mut self.client
    }

    /// Sends the shutdown exchange and returns the client, ending the
    /// BS session cleanly.
    pub fn finish(mut self) -> Result<UeClient<S>, NetError> {
        self.client.shutdown()?;
        Ok(self.client)
    }

    /// Extra slots beyond the clean minimum for this payload — each one
    /// was a simulated retransmission, realized on the wire as one
    /// injected corrupt frame (→ Nack → resend).
    fn excess_slots(sim: &TransferSimulator, payload_bits: u64, slots: u64) -> u64 {
        let clean = match sim.policy() {
            RetransmissionPolicy::WholePayload { .. } => 1,
            RetransmissionPolicy::Segmented { segment_bits, .. } => {
                payload_bits.div_ceil(segment_bits).max(1)
            }
        };
        slots.saturating_sub(clean)
    }

    /// Runs the full training loop (telemetry-free).
    pub fn train(&mut self, dataset: &SequenceDataset) -> Result<TrainOutcome, NetError> {
        self.train_with(dataset, &mut Telemetry::disabled())
    }

    /// Runs the full training loop, recording the same metric and event
    /// stream as `SplitTrainer::train_with` plus the link's `net.*`
    /// counters at the end.
    pub fn train_with(
        &mut self,
        dataset: &SequenceDataset,
        tele: &mut Telemetry,
    ) -> Result<TrainOutcome, NetError> {
        let b = self.config.batch_size;
        let steps_per_epoch = dataset.steps_per_epoch(b);
        let mut curve = Vec::new();
        let mut steps_applied = 0u64;
        let mut steps_voided = 0u64;
        let mut consecutive_voids = 0usize;
        if tele.is_enabled() {
            self.model.enable_profiling();
        }

        // Epoch-0 point: the untrained model.
        let mut val = self.validate_with(dataset, tele)?;
        curve.push(CurvePoint {
            elapsed_s: self.clock.elapsed_s(),
            epoch: 0,
            val_rmse_db: val,
        });

        let mut stop = StopReason::EpochLimit;
        let mut epochs = 0usize;
        'outer: for epoch in 1..=self.config.max_epochs {
            for _ in 0..steps_per_epoch {
                match self.step(dataset, b, tele)? {
                    NetStep::Applied => {
                        steps_applied += 1;
                        consecutive_voids = 0;
                    }
                    NetStep::Voided => {
                        steps_voided += 1;
                        consecutive_voids += 1;
                        if consecutive_voids >= self.config.stall_limit {
                            stop = StopReason::LinkStalled;
                            epochs = epoch;
                            break 'outer;
                        }
                    }
                    NetStep::HealthAborted => {
                        steps_applied += 1;
                        stop = StopReason::HealthAborted;
                        epochs = epoch;
                        break 'outer;
                    }
                }
            }
            epochs = epoch;
            val = self.validate_with(dataset, tele)?;
            curve.push(CurvePoint {
                elapsed_s: self.clock.elapsed_s(),
                epoch,
                val_rmse_db: val,
            });
            if tele.is_enabled() {
                tele.gauge_set("train.val_rmse_db", val as f64);
                tele.emit(
                    EventBuilder::new("epoch")
                        .u64("epoch", epoch as u64)
                        .f64("val_rmse_db", val as f64)
                        .f64("elapsed_s", self.clock.elapsed_s())
                        .f64("compute_s", self.clock.compute_s())
                        .f64("airtime_s", self.clock.airtime_s())
                        .u64("steps_applied", steps_applied)
                        .u64("steps_voided", steps_voided),
                );
            }
            if val <= self.config.target_rmse_db {
                stop = StopReason::TargetReached;
                break;
            }
        }

        if tele.is_enabled() {
            self.model.publish_profiles(tele);
            self.model.disable_profiling();
            sl_tensor::ComputePool::global().publish_metrics(tele);
            tele.add("train.steps.applied", steps_applied);
            tele.add("train.steps.voided", steps_voided);
            tele.gauge_add("sim.compute_s", self.clock.compute_s());
            tele.gauge_add("sim.airtime_s", self.clock.airtime_s());
            self.uplink.publish_metrics(tele, "train.uplink");
            self.downlink.publish_metrics(tele, "train.downlink");
            self.client.publish_metrics(tele);
            tele.emit(
                EventBuilder::new("train_end")
                    .str("scheme", &self.config.scheme.to_string())
                    .str("pooling", &self.config.pooling.to_string())
                    .str("stop", &format!("{stop:?}"))
                    .u64("epochs", epochs as u64)
                    .u64("steps_applied", steps_applied)
                    .u64("steps_voided", steps_voided)
                    .f64("final_rmse_db", val as f64)
                    .f64("compute_s", self.clock.compute_s())
                    .f64("airtime_s", self.clock.airtime_s()),
            );
        }

        Ok(TrainOutcome {
            curve,
            stop,
            final_rmse_db: val,
            epochs,
            steps_applied,
            steps_voided,
            compute_s: self.clock.compute_s(),
            airtime_s: self.clock.airtime_s(),
        })
    }

    /// One networked SGD step with the in-process step's instrumentation
    /// envelope.
    fn step(
        &mut self,
        dataset: &SequenceDataset,
        b: usize,
        tele: &mut Telemetry,
    ) -> Result<NetStep, NetError> {
        let instrument = tele.is_enabled();
        let host = instrument.then(Stopwatch::start);
        let span = SimSpan::begin(self.clock.compute_s(), self.clock.airtime_s());

        let result = self.step_inner(dataset, b, tele)?;

        if instrument {
            if let Some(host) = host {
                host.observe(tele, "train.step");
            }
            span.observe(
                tele,
                "train.step",
                self.clock.compute_s(),
                self.clock.airtime_s(),
            );
        }
        Ok(result)
    }

    fn step_inner(
        &mut self,
        dataset: &SequenceDataset,
        b: usize,
        tele: &mut Telemetry,
    ) -> Result<NetStep, NetError> {
        let cfg = &self.config;
        let uses_images = cfg.scheme.uses_images();

        // The simulated channel decides each transfer's fate *first*,
        // drawing from the shared RNG in the exact in-process order. A
        // voided step never touches the socket; a delivered step's extra
        // slots become injected wire faults below.
        self.clock
            .add_compute(cfg.compute.ue_seconds(self.model.ue_step_flops(b)));

        let mut uplink_plan = FaultPlan::clean();
        if uses_images {
            let ul_bits = self.model.uplink_payload_bits(b);
            let out = self.uplink.transfer(ul_bits, &mut self.rng);
            self.clock
                .add_airtime(self.uplink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                return Ok(NetStep::Voided);
            }
            uplink_plan =
                FaultPlan::retransmissions(Self::excess_slots(&self.uplink, ul_bits, out.slots()));
        }

        self.clock
            .add_compute(cfg.compute.bs_seconds(self.model.bs_step_flops(b)));

        let mut downlink_plan = FaultPlan::clean();
        if uses_images {
            let dl_bits = self.model.downlink_payload_bits(b);
            let out = self.downlink.transfer(dl_bits, &mut self.rng);
            self.clock
                .add_airtime(self.downlink.slots_to_seconds(out.slots()));
            if !out.delivered() {
                return Ok(NetStep::Voided);
            }
            downlink_plan = FaultPlan::retransmissions(Self::excess_slots(
                &self.downlink,
                dl_bits,
                out.slots(),
            ));
        }

        let instrument = tele.is_enabled();
        let idx = dataset.sample_train_batch(b, &mut self.rng);
        let batch = Batch::assemble(dataset, dataset.normalizer(), &idx, uses_images);
        let l = batch.seq_len;

        // UE forward: CNN + pool + quantize — the exact payload values.
        let fwd = instrument.then(Stopwatch::start);
        let cut = self.model.forward_ue(&batch);
        if let Some(w) = fwd {
            w.observe(tele, "train.model");
        }

        let (pooled_h, pooled_w) = if uses_images { self.pooled } else { (0, 0) };
        let packed = match &cut {
            Some(t) => pack_activations(t.data(), cfg.bit_depth)?,
            None => Vec::new(),
        };
        let req = StepRequest {
            batch: b,
            seq_len: l,
            pooled_h,
            pooled_w,
            packed,
            powers: batch.powers_norm.data().to_vec(),
            targets: batch.targets_norm.data().to_vec(),
        };
        // `wants_update_ratio` flips off only after a warn-mode trip
        // inside `observe_step`, which happens after this point — so
        // reading it here matches the in-process read below the clip.
        let track_ratio = self.health.wants_update_ratio();
        let reply = self
            .client
            .train_step(&req, track_ratio, uplink_plan, downlink_plan)?;

        // UE backward from the delivered cut-layer gradient.
        let bwd = instrument.then(Stopwatch::start);
        if uses_images {
            let (ph, pw) = self.pooled;
            let cut_grad = Tensor::from_vec([b * l, 1, ph, pw], reply.cut_grad.clone())
                .map_err(|e| NetError::Decode(format!("cut gradient: {e}")))?;
            self.model.backward_ue(&cut_grad);
        }
        if let Some(w) = bwd {
            w.observe(tele, "train.model");
        }

        let ue_norm = {
            let mut pairs = self.model.ue_params_and_grads();
            let mut grads: Vec<&mut Tensor> = pairs.iter_mut().map(|(_, g)| &mut **g).collect();
            clip_global_norm(&mut grads, self.config.grad_clip)
        };
        let bs_norm = reply.bs_grad_norm;
        if instrument {
            if reply.loss.is_finite() {
                tele.observe("train.loss", reply.loss.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.loss");
            }
            if ue_norm.is_finite() {
                tele.observe("train.grad_norm.ue", ue_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
            if bs_norm.is_finite() {
                tele.observe("train.grad_norm.bs", bs_norm.max(0.0) as f64);
            } else {
                tele.inc("train.nonfinite.grad");
            }
        }

        let prev_ue: Option<Vec<Tensor>> = track_ratio.then(|| {
            self.model
                .ue_params_and_grads()
                .iter()
                .map(|(p, _)| (**p).clone())
                .collect()
        });
        self.opt_ue.step(&mut self.model.ue_params_and_grads());
        self.model.zero_grads();

        if self.health.config().action != HealthAction::Off && !self.health.tripped() {
            let ratio_ue = prev_ue
                .map(|prev| update_ratio(&prev, &self.model.ue_params_and_grads()))
                .unwrap_or(0.0);
            let ratio_bs = reply.update_ratio_bs.unwrap_or(0.0);
            let stats = StepStats {
                loss: reply.loss as f64,
                grad_norm_ue: ue_norm as f64,
                grad_norm_bs: bs_norm as f64,
                update_ratio_ue: ratio_ue,
                update_ratio_bs: ratio_bs,
            };
            if let Some(verdict) = self.health.observe_step(stats) {
                let action = self.health.config().action;
                if tele.is_enabled() {
                    tele.emit(
                        EventBuilder::new("health.diverged")
                            .str("metric", verdict.metric())
                            .str("detail", &verdict.to_string())
                            .str(
                                "action",
                                if action == HealthAction::Abort {
                                    "abort"
                                } else {
                                    "warn"
                                },
                            )
                            .u64("nonfinite_loss", self.health.nonfinite_loss())
                            .u64("nonfinite_grad", self.health.nonfinite_grad()),
                    );
                }
                tele.warn(&format!("health watchdog tripped: {verdict}"));
                tele.warn(&self.health.report());
                if action == HealthAction::Abort {
                    return Ok(NetStep::HealthAborted);
                }
            }
        }
        Ok(NetStep::Applied)
    }

    /// Validation RMSE in dB over the (possibly subsampled) validation
    /// set, with each chunk's forward crossing the link (always clean —
    /// validation does not ride the simulated channel, matching the
    /// in-process trainer).
    pub fn validate(&mut self, dataset: &SequenceDataset) -> Result<f32, NetError> {
        self.validate_with(dataset, &mut Telemetry::disabled())
    }

    fn validate_with(
        &mut self,
        dataset: &SequenceDataset,
        tele: &mut Telemetry,
    ) -> Result<f32, NetError> {
        let indices = subsample(dataset.val_indices(), self.config.val_subsample);
        assert!(!indices.is_empty(), "validate: no indices");
        let normalizer = dataset.normalizer();
        let uses_images = self.config.scheme.uses_images();
        let mut preds = Vec::with_capacity(indices.len());
        let mut targets = Vec::with_capacity(indices.len());
        for chunk in indices.chunks(128) {
            let batch = Batch::assemble(dataset, normalizer, chunk, uses_images);
            let watch = tele.is_enabled().then(Stopwatch::start);
            let cut = self.model.forward_ue(&batch);
            let (pooled_h, pooled_w) = if uses_images { self.pooled } else { (0, 0) };
            let packed = match &cut {
                Some(t) => pack_activations(t.data(), self.config.bit_depth)?,
                None => Vec::new(),
            };
            let req = EvalRequest {
                batch: chunk.len(),
                seq_len: batch.seq_len,
                pooled_h,
                pooled_w,
                packed,
                powers: batch.powers_norm.data().to_vec(),
            };
            let p = self.client.eval(&req)?;
            if let Some(w) = watch {
                w.observe(tele, "train.model");
            }
            if p.len() != chunk.len() {
                return Err(NetError::Protocol(format!(
                    "BS returned {} predictions for a {}-sample batch",
                    p.len(),
                    chunk.len()
                )));
            }
            preds.extend_from_slice(&p);
            targets.extend_from_slice(batch.targets_norm.data());
        }
        let r = rmse(&Tensor::from_slice(&preds), &Tensor::from_slice(&targets));
        Ok(normalizer.rmse_to_db(r))
    }
}
