//! Micro-benchmarks of the tensor/NN kernels at the shapes the paper's
//! split network actually uses (40×40 images, 3×3 convolutions, L = 4
//! LSTM sequences).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_nn::{Layer, Lstm};
use sl_tensor::{
    avg_pool2d, conv2d, conv2d_backward_in, conv2d_in, matmul, matmul_in, randn, ComputePool,
    Padding, Tensor,
};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = randn([64, 64], 0.0, 1.0, &mut rng);
    let b = randn([64, 64], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // The UE CNN's first layer on one sequence of the minibatch:
    // [L, 1, 40, 40] ⊛ [8, 1, 3, 3].
    let x = randn([4, 1, 40, 40], 0.0, 1.0, &mut rng);
    let w = randn([8, 1, 3, 3], 0.0, 0.3, &mut rng);
    let b = Tensor::zeros([8]);
    c.bench_function("conv2d_40x40_1to8", |bch| {
        bch.iter(|| black_box(conv2d(black_box(&x), &w, &b, Padding::Same)))
    });
}

fn bench_pool(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = randn([16, 1, 40, 40], 0.0, 1.0, &mut rng);
    c.bench_function("avg_pool2d_40x40_to_1pixel", |bch| {
        bch.iter(|| black_box(avg_pool2d(black_box(&x), 40, 40)))
    });
    c.bench_function("avg_pool2d_40x40_w4", |bch| {
        bch.iter(|| black_box(avg_pool2d(black_box(&x), 4, 4)))
    });
}

/// Serial vs pooled compute backend at the paper shapes — results are
/// bitwise identical across the two pools; only throughput differs.
/// (On a single-core host the pooled variant measures dispatch overhead.)
fn bench_backend(c: &mut Criterion) {
    let serial = ComputePool::new(1);
    let pooled = ComputePool::new(4);
    let mut rng = StdRng::seed_from_u64(5);

    // Dense-layer shape: a 256-sample minibatch through a 16→64 layer.
    let a = randn([256, 16], 0.0, 1.0, &mut rng);
    let b = randn([16, 64], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_256x16x64_serial", |bch| {
        bch.iter(|| black_box(matmul_in(&serial, black_box(&a), &b)))
    });
    c.bench_function("matmul_256x16x64_pool4", |bch| {
        bch.iter(|| black_box(matmul_in(&pooled, black_box(&a), &b)))
    });

    let x = randn([4, 1, 40, 40], 0.0, 1.0, &mut rng);
    let w = randn([8, 1, 3, 3], 0.0, 0.3, &mut rng);
    let bias = Tensor::zeros([8]);
    c.bench_function("conv2d_40x40_1to8_serial", |bch| {
        bch.iter(|| black_box(conv2d_in(&serial, black_box(&x), &w, &bias, Padding::Same)))
    });
    c.bench_function("conv2d_40x40_1to8_pool4", |bch| {
        bch.iter(|| black_box(conv2d_in(&pooled, black_box(&x), &w, &bias, Padding::Same)))
    });

    let g = conv2d_in(&serial, &x, &w, &bias, Padding::Same);
    c.bench_function("conv2d_bwd_40x40_1to8_serial", |bch| {
        bch.iter(|| {
            black_box(conv2d_backward_in(
                &serial,
                black_box(&x),
                &w,
                &g,
                Padding::Same,
            ))
        })
    });
    c.bench_function("conv2d_bwd_40x40_1to8_pool4", |bch| {
        bch.iter(|| {
            black_box(conv2d_backward_in(
                &pooled,
                black_box(&x),
                &w,
                &g,
                Padding::Same,
            ))
        })
    });
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // The BS half on a one-pixel Img+RF batch: [64, 4, 2] → hidden 32.
    let mut lstm = Lstm::new(2, 32, &mut rng);
    let x = randn([64, 4, 2], 0.0, 1.0, &mut rng);
    c.bench_function("lstm_fwd_b64_l4_h32", |bch| {
        bch.iter(|| black_box(lstm.forward(black_box(&x))))
    });
    c.bench_function("lstm_fwd_bwd_b64_l4_h32", |bch| {
        bch.iter(|| {
            let h = lstm.forward(black_box(&x));
            let g = lstm.backward(&Tensor::ones(h.dims()));
            lstm.zero_grads();
            black_box(g)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_pool, bench_backend, bench_lstm
}
criterion_main!(kernels);
