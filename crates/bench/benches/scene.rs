//! Scene-substrate benches: depth-frame rendering and full trace
//! generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_scene::{DepthCamera, Scene, SceneConfig};

fn bench_render(c: &mut Criterion) {
    let cfg = SceneConfig::paper();
    let scene = Scene::generate(cfg.clone(), &mut StdRng::seed_from_u64(1));
    let camera = DepthCamera::new(cfg.camera.clone(), cfg.distance_m);
    // A time in the middle of the trace (pedestrians likely present).
    let t = cfg.duration_s() / 2.0;
    c.bench_function("render_depth_frame_40x40", |bch| {
        bch.iter(|| black_box(camera.render(scene.pedestrians(), black_box(t))))
    });
}

fn bench_trace(c: &mut Criterion) {
    let cfg = SceneConfig {
        num_frames: 200,
        ..SceneConfig::paper()
    };
    c.bench_function("simulate_trace_200_frames", |bch| {
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let scene = Scene::generate(cfg.clone(), &mut rng);
            black_box(scene.simulate(&mut rng))
        })
    });
}

criterion_group! {
    name = scene;
    config = Criterion::default().sample_size(10);
    targets = bench_render, bench_trace
}
criterion_main!(scene);
