//! Privacy-metric benches: distance matrices, classical MDS and the full
//! leakage pipeline at Table 1's working set size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_privacy::{distance_matrix, mds, privacy_leakage};
use sl_tensor::{uniform, Tensor};

fn sample_images(n: usize, px: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| uniform([px, px], 0.0, 1.0, &mut rng))
        .collect()
}

fn bench_distance(c: &mut Criterion) {
    let imgs = sample_images(60, 40, 1);
    let refs: Vec<&Tensor> = imgs.iter().collect();
    c.bench_function("distance_matrix_60x40x40", |bch| {
        bch.iter(|| black_box(distance_matrix(black_box(&refs))))
    });
}

fn bench_mds(c: &mut Criterion) {
    let imgs = sample_images(60, 40, 2);
    let refs: Vec<&Tensor> = imgs.iter().collect();
    let d = distance_matrix(&refs);
    c.bench_function("mds_60_points_dim2", |bch| {
        bch.iter(|| black_box(mds(black_box(&d), 2)))
    });
}

fn bench_leakage(c: &mut Criterion) {
    let raw = sample_images(60, 40, 3);
    let feat = sample_images(60, 10, 4);
    let raw_refs: Vec<&Tensor> = raw.iter().collect();
    let feat_refs: Vec<&Tensor> = feat.iter().collect();
    c.bench_function("privacy_leakage_60_frames", |bch| {
        bch.iter(|| black_box(privacy_leakage(black_box(&raw_refs), black_box(&feat_refs))))
    });
}

criterion_group! {
    name = mds_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_distance, bench_mds, bench_leakage
}
criterion_main!(mds_benches);
