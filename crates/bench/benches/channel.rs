//! Channel-simulator benches: cost of slot-level transfers for the
//! Table 1 pooling payloads, under both retransmission policies.
//! Doubles as the performance ablation for the segmented-transfer
//! extension (DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_channel::{
    success_probability, LinkConfig, PayloadSpec, RetransmissionPolicy, TransferSimulator,
};

fn calibrated() -> LinkConfig {
    LinkConfig::paper_uplink().with_mean_snr_db(14.94)
}

fn bench_transfers(c: &mut Criterion) {
    let spec = PayloadSpec::paper(64);
    let mut group = c.benchmark_group("transfer_whole_payload");
    for (label, wh) in [("4x4", 4usize), ("10x10", 10), ("40x40_1pixel", 40)] {
        let bits = spec.uplink_bits(wh, wh);
        group.bench_function(label, |bch| {
            let mut sim = TransferSimulator::new(
                calibrated(),
                RetransmissionPolicy::WholePayload { max_slots: 100_000 },
            );
            let mut rng = StdRng::seed_from_u64(1);
            bch.iter(|| black_box(sim.transfer(bits, &mut rng)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("transfer_segmented");
    for (label, wh) in [("1x1", 1usize), ("4x4", 4)] {
        let bits = spec.uplink_bits(wh, wh);
        group.bench_function(label, |bch| {
            let mut sim = TransferSimulator::new(
                calibrated(),
                RetransmissionPolicy::Segmented {
                    segment_bits: 15_000,
                    max_slots: 10_000_000,
                },
            );
            let mut rng = StdRng::seed_from_u64(2);
            bch.iter(|| black_box(sim.transfer(bits, &mut rng)))
        });
    }
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let spec = PayloadSpec::paper(64);
    let link = calibrated();
    c.bench_function("success_probability_analytic_x4", |bch| {
        bch.iter(|| {
            for wh in [1usize, 4, 10, 40] {
                black_box(success_probability(
                    black_box(&link),
                    spec.uplink_bits(wh, wh) as f64,
                ));
            }
        })
    });
}

criterion_group! {
    name = channel;
    config = Criterion::default().sample_size(30);
    targets = bench_transfers, bench_analytics
}
criterion_main!(channel);
