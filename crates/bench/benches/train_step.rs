//! Macro-bench: the cost of one full split-learning SGD step (forward,
//! channel transfers, backward, Adam) per scheme × pooling. This is the
//! host-side counterpart of the simulated per-step time that drives
//! Fig. 3a.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use sl_scene::{Scene, SceneConfig, SequenceDataset};

fn tiny_dataset() -> SequenceDataset {
    let cfg = SceneConfig {
        num_frames: 800,
        ..SceneConfig::tiny()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let scene = Scene::generate(cfg, &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

fn bench_steps(c: &mut Criterion) {
    let dataset = tiny_dataset();
    let mut group = c.benchmark_group("train_epoch_16x16_b8");
    for (scheme, pooling, label) in [
        (Scheme::RfOnly, PoolingDim::new(16, 16), "rf_only"),
        (Scheme::ImgOnly, PoolingDim::new(16, 16), "img_1pixel"),
        (Scheme::ImgRf, PoolingDim::new(16, 16), "img_rf_1pixel"),
        (Scheme::ImgRf, PoolingDim::new(4, 4), "img_rf_4x4"),
    ] {
        group.bench_function(label, |bch| {
            bch.iter(|| {
                let mut cfg = ExperimentConfig::quick(scheme, pooling);
                cfg.max_epochs = 1;
                let mut trainer = SplitTrainer::new(cfg, &dataset);
                black_box(trainer.train(&dataset))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = train_step;
    config = Criterion::default().sample_size(10);
    targets = bench_steps
}
criterion_main!(train_step);
