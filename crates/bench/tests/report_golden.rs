//! Golden test for `slm-report`: run a real (tiny) experiment through
//! the [`sl_bench::Experiment`] harness, generate the markdown report
//! from its `results/` directory, and check the per-layer table, the
//! profiler-vs-trainer time coverage, the `BENCH_*.json` round-trip and
//! the regression gate (including the end-to-end binary exit code).

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_bench::report::{
    append_trajectory, bench_path, check, entry_from_run, load_run, load_trajectory,
    render_markdown, run_metrics, CheckConfig,
};
use sl_bench::{Experiment, Profile};
use sl_core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use sl_scene::{Scene, SceneConfig, SequenceDataset};

fn tiny_dataset(seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene = Scene::generate(SceneConfig::tiny(), &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

/// Runs one tiny instrumented training run under `base/<name>/` and
/// returns the run directory.
fn run_experiment(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let mut exp =
        Experiment::start_configured(dir.clone(), name, Some("jsonl"), Some(Profile::Smoke));
    let ds = tiny_dataset(42);
    let cfg = ExperimentConfig::quick(Scheme::ImgRf, PoolingDim::new(16, 16));
    exp.record_run("Img+RF, 1-pixel", &cfg);
    let mut trainer = SplitTrainer::new(cfg, &ds);
    let _ = trainer.train_with(&ds, exp.telemetry());
    exp.finish();
    dir
}

#[test]
fn report_golden_round_trip() {
    let base = std::env::temp_dir().join("slm_report_golden");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let dir = run_experiment(&base, "goldenexp");

    let run = load_run(&dir).expect("artifacts load");
    assert_eq!(run.name, "goldenexp");
    assert_eq!(run.profile, "smoke");
    assert_eq!(run.config_hashes.len(), 1);
    assert!(run.health_events.is_empty(), "{:?}", run.health_events);

    // The markdown report contains the per-layer table with both model
    // halves and the UE stack's layers.
    let md = render_markdown(&run);
    assert!(md.contains("# slm-report: goldenexp"), "{md}");
    assert!(md.contains("## Per-layer profile"), "{md}");
    assert!(md.contains("| ue | 0 |"), "missing UE layer rows:\n{md}");
    assert!(md.contains("| bs | 0 |"), "missing BS layer rows:\n{md}");
    assert!(md.contains("## Health"), "{md}");
    assert!(md.contains("No health events."), "{md}");

    // Acceptance bar: per-layer host time sums to the trainer's model
    // time within 5%.
    let m = run_metrics(&run);
    assert!(m.model_host_s > 0.0);
    let coverage = m.profile_coverage().expect("model time recorded");
    assert!(
        coverage > 0.95 && coverage <= 1.001,
        "per-layer time covers {:.1}% of train.model.host_s",
        100.0 * coverage
    );

    // Trajectory entry round-trips through the hand-rolled JSON parser.
    let entry = entry_from_run(&run, 123);
    assert!(entry.val_rmse_db.is_finite());
    let traj = bench_path(&run);
    assert!(traj.ends_with("BENCH_goldenexp.json"), "{traj:?}");
    assert_eq!(append_trajectory(&traj, &run.name, &entry).unwrap(), 1);
    let back = load_trajectory(&traj).unwrap();
    assert_eq!(back, vec![entry.clone()]);

    // The gate: identical metrics pass, an injected 2× RMSE regression
    // fails.
    let cfg = CheckConfig::default();
    assert!(check(&entry, &back, &cfg).passed());
    let mut regressed = entry.clone();
    regressed.val_rmse_db *= 2.0;
    assert!(!check(&regressed, &back, &cfg).passed());

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn slm_report_binary_gates_regressions() {
    use std::process::Command;
    let base = std::env::temp_dir().join("slm_report_bin_gate");
    let _ = std::fs::remove_dir_all(&base);
    let dir = run_experiment(&base, "binexp");
    let bin = env!("CARGO_BIN_EXE_slm-report");

    // First --check: no baseline -> PASS (exit 0) and appends the entry.
    let out = Command::new(bin)
        .arg("--check")
        .arg(&dir)
        .output()
        .expect("slm-report runs");
    assert!(
        out.status.success(),
        "first check failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(base.join("BENCH_binexp.json").exists());

    // Second --check against the fresh baseline: identical run -> PASS.
    let out = Command::new(bin)
        .arg("--check")
        .arg(&dir)
        .output()
        .expect("slm-report runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    // Inject a 2× RMSE regression into the snapshot -> FAIL (exit != 0).
    let snap_path = dir.join("snapshot.json");
    let snap_text = std::fs::read_to_string(&snap_path).unwrap();
    let snap = sl_telemetry::Snapshot::from_json(&snap_text).unwrap();
    let mut worse = snap.clone();
    let rmse = worse.gauges["train.val_rmse_db"];
    worse.gauges.insert("train.val_rmse_db".into(), 2.0 * rmse);
    std::fs::write(&snap_path, worse.to_json() + "\n").unwrap();

    let out = Command::new(bin)
        .arg("--check")
        .arg(&dir)
        .output()
        .expect("slm-report runs");
    assert!(
        !out.status.success(),
        "2x RMSE regression must fail the gate:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAIL"));

    // Report mode renders markdown to stdout.
    std::fs::write(&snap_path, snap.to_json() + "\n").unwrap();
    let out = Command::new(bin)
        .arg("--no-append")
        .arg(&dir)
        .output()
        .expect("slm-report runs");
    assert!(out.status.success());
    let md = String::from_utf8_lossy(&out.stdout);
    assert!(md.contains("## Per-layer profile"), "{md}");

    std::fs::remove_dir_all(&base).ok();
}
