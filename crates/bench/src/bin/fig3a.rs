//! **Fig. 3a** — learning curves: validation RMSE (dB) versus elapsed
//! simulated training time (s) for the paper's five configurations:
//!
//! * `RF` — received-power history only (no split, no communication),
//! * `Img` with 1-pixel (40×40) pooling,
//! * `Img` with 4×4 pooling,
//! * `Img+RF` with 4×4 pooling,
//! * `Img+RF` with 1-pixel pooling (the proposal).
//!
//! The elapsed axis is the `sl-core` simulated clock: modelled compute
//! plus slot-accurate airtime of every cut-layer transfer over the
//! calibrated uplink (DESIGN.md §5). Reproduction targets: RF converges
//! first but plateaus highest; among image schemes the 1-pixel Img+RF
//! both converges fastest (cheapest payload ⇒ most SGD steps per second)
//! and reaches the lowest RMSE.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin fig3a            # quick profile
//! SLM_PROFILE=full cargo run --release -p sl-bench --bin fig3a
//! ```

use sl_bench::{
    build_dataset, experiment_config, fig3a_configs, fig3a_curve_rows, fig3a_label, sparkline,
    Experiment, FIG3A_CSV_HEADER,
};
use sl_core::{PoolingDim, Scheme, SplitTrainer, TrainOutcome};

fn run(
    exp: &mut Experiment,
    scheme: Scheme,
    pooling: PoolingDim,
    label: &str,
    dataset: &sl_scene::SequenceDataset,
) -> TrainOutcome {
    let cfg = experiment_config(exp.profile(), scheme, pooling);
    exp.record_run(label, &cfg);
    let mut trainer = SplitTrainer::new(cfg, dataset);
    trainer.train_with(dataset, exp.telemetry())
}

fn main() {
    let mut exp = Experiment::start("fig3a");
    let profile = exp.profile();
    let dataset = build_dataset(profile);
    exp.progress(&format!(
        "Fig. 3a — learning curves ({:?} profile: {} train / {} val sequences)",
        profile,
        dataset.train_indices().len(),
        dataset.val_indices().len()
    ));

    // Context row: a closed-form linear autoregression on the RF history
    // (zero training time). Any learned scheme must beat this floor.
    let ols = sl_core::LinearRfBaseline::fit(&dataset);
    println!(
        "{:<28} best {:>5.2} dB  (closed-form OLS on the RF history; no training)",
        "linear-AR baseline",
        ols.val_rmse(&dataset)
    );

    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for (scheme, pooling) in fig3a_configs() {
        let wall = std::time::Instant::now();
        let label = fig3a_label(scheme, pooling);
        let out = run(&mut exp, scheme, pooling, &label, &dataset);
        println!(
            "{label:<28} best {:>5.2} dB  final {:>5.2} dB  sim {:>7.2} s (air {:>6.2} s)  epochs {:>3}  stop {:?}  [wall {:.0} s]",
            out.best_rmse_db(),
            out.final_rmse_db,
            out.elapsed_s(),
            out.airtime_s,
            out.epochs,
            out.stop,
            wall.elapsed().as_secs_f64(),
        );
        let curve_vals: Vec<f32> = out.curve.iter().map(|p| p.val_rmse_db).collect();
        exp.progress(&format!("{label:<28} {}", sparkline(&curve_vals)));
        fig3a_curve_rows(&label, &out, &mut rows);
        outcomes.push((label, out));
    }

    exp.write_csv("fig3a.csv", FIG3A_CSV_HEADER, &rows);

    // The telemetry snapshot's simulated-time totals must agree with the
    // trainers' own SimClocks (the Fig. 3a time axis) to float precision.
    let snap = exp.telemetry().snapshot();
    if exp.telemetry().is_enabled() {
        let compute: f64 = outcomes.iter().map(|(_, o)| o.compute_s).sum();
        let airtime: f64 = outcomes.iter().map(|(_, o)| o.airtime_s).sum();
        assert!(
            (snap.gauge("sim.compute_s").unwrap_or(0.0) - compute).abs() < 1e-9,
            "telemetry compute time disagrees with SimClock"
        );
        assert!(
            (snap.gauge("sim.airtime_s").unwrap_or(0.0) - airtime).abs() < 1e-9,
            "telemetry airtime disagrees with SimClock"
        );
    }

    // ---- paper-shape checks -------------------------------------------------
    println!("\npaper-shape check:");
    let find = |label: &str| {
        &outcomes
            .iter()
            .find(|(l, _)| l == label)
            .expect("configuration ran")
            .1
    };
    let rf = find("RF");
    let img_rf_pixel = find("Img+RF, 40x40 (1-pixel)");
    let img_rf_medium = find("Img+RF, 4x4");
    let img_pixel = find("Img, 40x40 (1-pixel)");

    // (1) RF converges earliest in elapsed time (lowest airtime) but
    //     plateaus above the image-assisted schemes.
    let rf_first_epoch_time = rf.curve.get(1).map(|p| p.elapsed_s).unwrap_or(f64::MAX);
    let pix_first_epoch_time = img_rf_pixel
        .curve
        .get(1)
        .map(|p| p.elapsed_s)
        .unwrap_or(0.0);
    println!(
        "  RF cheapest per epoch ({:.3} s vs {:.3} s for 1-pixel Img+RF): {}",
        rf_first_epoch_time,
        pix_first_epoch_time,
        yes(rf_first_epoch_time < pix_first_epoch_time)
    );
    println!(
        "  RF plateaus above 1-pixel Img+RF ({:.2} dB vs {:.2} dB): {}",
        rf.best_rmse_db(),
        img_rf_pixel.best_rmse_db(),
        yes(rf.best_rmse_db() > img_rf_pixel.best_rmse_db())
    );
    // (2) 1-pixel Img+RF trains faster per wall-second than 4×4 Img+RF
    //     (smaller payload ⇒ less airtime per step).
    let pix_rate = img_rf_pixel.steps_applied as f64 / img_rf_pixel.elapsed_s().max(1e-9);
    let med_rate = img_rf_medium.steps_applied as f64 / img_rf_medium.elapsed_s().max(1e-9);
    println!(
        "  1-pixel Img+RF does more steps/simulated-second than 4x4 ({:.1} vs {:.1}): {}",
        pix_rate,
        med_rate,
        yes(pix_rate > med_rate)
    );
    // (3) Img+RF beats Img-only at the same pooling (multimodality helps).
    println!(
        "  Img+RF (1-pixel) beats Img-only (1-pixel) ({:.2} dB vs {:.2} dB): {}",
        img_rf_pixel.best_rmse_db(),
        img_pixel.best_rmse_db(),
        yes(img_rf_pixel.best_rmse_db() < img_pixel.best_rmse_db())
    );

    exp.finish();
}

fn yes(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
