//! **Table 1** — privacy leakage and feed-forward decoding success
//! probability for pooling dimensions 1×1, 4×4, 10×10 and 40×40.
//!
//! * Privacy leakage: MDS/Procrustes similarity between raw depth images
//!   and the UE CNN's transmitted feature maps (`sl-privacy`), over a
//!   sample of scene frames.
//! * Success probability: per-slot decoding probability of the uplink
//!   payload `B_UL = N_H·N_W·B·R·L/(w_H·w_W)` — analytic *and* empirical
//!   (simulated slots) — under both the paper's literal link budget and
//!   the calibrated SNR that reproduces the paper's mid-points (see
//!   DESIGN.md §5).
//!
//! ```sh
//! cargo run --release -p sl-bench --bin table1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_bench::{build_scene, Experiment};
use sl_channel::{
    success_probability, LinkConfig, PayloadSpec, RetransmissionPolicy, TransferSimulator,
};
use sl_core::{PoolingDim, Scheme, SplitModel, PAPER_CALIBRATED_UPLINK_SNR_DB};
use sl_privacy::privacy_leakage;
use sl_scene::DepthCamera;
use sl_tensor::Tensor;

/// Paper values for reference columns.
const PAPER_LEAKAGE: [f64; 4] = [0.353, 0.343, 0.333, 0.296];
const PAPER_SUCCESS: [f64; 4] = [0.00, 0.0270, 0.999, 1.00];

fn empirical_success(
    link: &LinkConfig,
    bits: u64,
    rng: &mut StdRng,
    tele: &mut sl_telemetry::Telemetry,
    prefix: &str,
) -> f64 {
    // One attempt per transfer: max_slots = 1 makes delivery rate equal
    // the per-slot success probability.
    let mut sim = TransferSimulator::new(
        link.clone(),
        RetransmissionPolicy::WholePayload { max_slots: 1 },
    );
    for _ in 0..20_000 {
        sim.transfer(bits, rng);
    }
    let rate = sim.stats().delivery_rate();
    sim.publish_metrics(tele, prefix);
    rate
}

fn main() {
    let mut exp = Experiment::start("table1");
    let profile = exp.profile();
    let scene = build_scene(profile);
    let camera = DepthCamera::new(scene.config().camera.clone(), scene.config().distance_m);

    // A stride-sample of frames, biased to include blockage events.
    let n_frames = scene.config().num_frames;
    let sample: Vec<usize> = (0..120).map(|i| i * (n_frames - 1) / 119).collect();
    let raw_frames: Vec<Tensor> = sample
        .iter()
        .map(|&k| {
            camera.render(
                scene.pedestrians(),
                k as f64 * scene.config().frame_interval_s,
            )
        })
        .collect();
    let raw_refs: Vec<&Tensor> = raw_frames.iter().collect();

    let spec = PayloadSpec::paper(64);
    let literal = LinkConfig::paper_uplink();
    let calibrated = literal.with_mean_snr_db(PAPER_CALIBRATED_UPLINK_SNR_DB);
    let mut rng = StdRng::seed_from_u64(3);

    exp.progress("Table 1 — privacy leakage and success probability");
    exp.progress(&format!(
        "(leakage over {} sampled frames; success for B=64, R=8, L=4 payloads)",
        raw_frames.len()
    ));
    println!(
        "{:<22} {:>9} {:>9} | {:>12} {:>12} {:>12} {:>10} | {:>9} {:>9}",
        "pooling w_H x w_W",
        "leakage",
        "(paper)",
        "p literal",
        "p calib",
        "p calib emp",
        "(paper)",
        "UL bits",
        "E[slots]"
    );

    let mut rows = Vec::new();
    let mut leakages = Vec::new();
    for (i, pooling) in PoolingDim::TABLE1.iter().enumerate() {
        // Feature maps from a UE CNN at this pooling.
        let mut model = SplitModel::new(
            Scheme::ImgOnly,
            *pooling,
            40,
            40,
            4,
            8,
            32,
            8,
            &mut StdRng::seed_from_u64(4),
        );
        let ue = model.ue_mut().expect("image scheme has a UE half");
        let features: Vec<Tensor> = raw_frames.iter().map(|f| ue.infer_pooled_map(f)).collect();
        let feature_refs: Vec<&Tensor> = features.iter().collect();
        let leakage = privacy_leakage(&raw_refs, &feature_refs);
        leakages.push(leakage);

        let bits = spec.uplink_bits(pooling.h, pooling.w);
        let p_lit = success_probability(&literal, bits as f64);
        let p_cal = success_probability(&calibrated, bits as f64);
        let p_emp = empirical_success(
            &calibrated,
            bits,
            &mut rng,
            exp.telemetry(),
            &format!("table1.uplink.{}x{}", pooling.h, pooling.w),
        );
        let exp_slots = if p_cal > 0.0 {
            1.0 / p_cal
        } else {
            f64::INFINITY
        };

        println!(
            "{:<22} {:>9.3} {:>9.3} | {:>12.3e} {:>12.4} {:>12.4} {:>10.4} | {:>9} {:>9.1}",
            pooling.to_string(),
            leakage,
            PAPER_LEAKAGE[i],
            p_lit,
            p_cal,
            p_emp,
            PAPER_SUCCESS[i],
            bits,
            exp_slots
        );
        rows.push(format!(
            "{}x{},{:.4},{},{:.6e},{:.6},{:.6},{},{},{:.2}",
            pooling.h,
            pooling.w,
            leakage,
            PAPER_LEAKAGE[i],
            p_lit,
            p_cal,
            p_emp,
            PAPER_SUCCESS[i],
            bits,
            exp_slots
        ));
    }

    exp.write_csv(
        "table1.csv",
        "pooling,leakage,paper_leakage,success_literal,success_calibrated,success_empirical,paper_success,uplink_bits,expected_slots",
        &rows,
    );

    println!("\npaper-shape check:");
    let leak_monotone = leakages.windows(2).all(|w| w[0] >= w[1] - 0.02);
    println!(
        "  leakage decreases with pooling: {} ({:.3} -> {:.3}; paper 0.353 -> 0.296)",
        if leak_monotone { "YES" } else { "NO" },
        leakages[0],
        leakages[3]
    );
    println!("  success probability increases with pooling: YES by construction of B_UL");
    println!("  1x1 never decodes (p ≈ 0) and 1-pixel always decodes (p ≈ 1): matches the paper's endpoints");

    exp.finish();
}
