//! **Fig. 2** — raw depth-images and CNN output images.
//!
//! Regenerates the paper's Fig. 2: (a) raw depth frames, and the CNN
//! output after (b) 1×1, (c) 4×4 and (d) 40×40 (one-pixel) pooling,
//! visualizing how the cut-layer pooling progressively destroys the
//! image content that crosses the wireless link.
//!
//! Output: ASCII art on stdout plus binary PGM files under `results/`.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin fig2
//! ```

use std::fs;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_bench::{build_scene, Experiment};
use sl_core::{PoolingDim, Scheme, SplitModel};
use sl_scene::{ascii_frame, DepthCamera};
use sl_tensor::Tensor;

/// Writes a `[H, W]` tensor in `[0, 1]` as an 8-bit PGM (near = dark).
fn write_pgm(exp: &mut Experiment, name: &str, frame: &Tensor) {
    let (h, w) = (frame.dims()[0], frame.dims()[1]);
    let mut bytes = format!("P5\n{w} {h}\n255\n").into_bytes();
    bytes.extend(
        frame
            .data()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0) as u8),
    );
    let path = exp.dir().join(name);
    fs::write(&path, bytes).expect("PGM is writable");
    exp.progress(&format!("  wrote {}", path.display()));
}

/// Upscales a small map to `[40, 40]` nearest-neighbour for display.
fn upscale(map: &Tensor) -> Tensor {
    let (h, w) = (map.dims()[0], map.dims()[1]);
    Tensor::from_fn([40, 40], |i| {
        let (r, c) = (i / 40, i % 40);
        map.at(&[r * h / 40, c * w / 40])
    })
}

fn main() {
    let mut exp = Experiment::start("fig2");
    let profile = exp.profile();
    let scene = build_scene(profile);
    let camera = DepthCamera::new(scene.config().camera.clone(), scene.config().distance_m);

    // Pick the first frame with a pedestrian actually blocking the link:
    // the most informative raw image.
    let k_blocked = (0..scene.config().num_frames)
        .find(|&k| scene.blockage_at_frame(k) > scene.config().blockage_depth_db * 0.9)
        .expect("the scene contains blockage events");
    // And a clear frame for contrast.
    let k_clear = (0..scene.config().num_frames)
        .find(|&k| scene.blockage_at_frame(k) == 0.0)
        .expect("the scene contains clear frames");

    exp.progress("Fig. 2 — raw depth-images and CNN output images");
    exp.progress(&format!(
        "(scene frame {k_blocked}: pedestrian crossing; frame {k_clear}: clear link)"
    ));

    let mut rng = StdRng::seed_from_u64(2);
    for (label, k) in [("blocked", k_blocked), ("clear", k_clear)] {
        let raw = camera.render(
            scene.pedestrians(),
            k as f64 * scene.config().frame_interval_s,
        );
        println!("(a) raw image ({label}):");
        println!("{}", ascii_frame(&raw));
        write_pgm(&mut exp, &format!("fig2_raw_{label}.pgm"), &raw);

        for (tag, pooling) in [
            ("b_1x1", PoolingDim::RAW),
            ("c_4x4", PoolingDim::MEDIUM),
            ("d_40x40_1pixel", PoolingDim::ONE_PIXEL),
        ] {
            // A fresh UE CNN per pooling (the paper's Fig. 2 visualizes
            // the architecture's compression, which is dominated by the
            // pooling window, not the learned weights).
            let mut model =
                SplitModel::new(Scheme::ImgOnly, pooling, 40, 40, 4, 8, 32, 8, &mut rng);
            let ue = model.ue_mut().expect("image scheme has a UE half");
            let pooled = ue.infer_pooled_map(&raw);
            let display = upscale(&pooled);
            println!(
                "({}) CNN output, pooling {pooling} -> {}x{} pixels:",
                &tag[..1],
                pooled.dims()[0],
                pooled.dims()[1]
            );
            println!("{}", ascii_frame(&display));
            write_pgm(&mut exp, &format!("fig2_{tag}_{label}.pgm"), &display);
        }
    }

    println!("\npaper-shape check:");
    println!("  1x1 pooling keeps the full 40x40 CNN image (maximum leakage),");
    println!("  4x4 keeps a coarse 10x10 sketch, and 40x40 pooling reduces the");
    println!("  payload to a single average pixel — visually nothing remains,");
    println!("  matching Fig. 2(d).");

    exp.finish();
}
