//! **Fig. 3b** — predicted versus ground-truth received power over a
//! validation window containing a blockage event.
//!
//! Trains `Img+RF`, `Img`-only (both 1-pixel pooling) and `RF`-only,
//! then predicts a ~3 s window around a deep fade in the validation
//! region, mirroring the paper's 27–30 s plot. Reproduction targets: RF
//! tracks the LoS level but reacts late to the fade; Img anticipates the
//! transitions; Img+RF is closest to the ground truth overall.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin fig3b
//! ```

use sl_bench::{build_dataset, experiment_config, Experiment};
use sl_core::{PoolingDim, PredictionPoint, Scheme, SplitTrainer};

/// Finds a validation-window offset whose `count` samples contain the
/// deepest fade (the most informative Fig. 3b window).
fn deepest_fade_window(dataset: &sl_scene::SequenceDataset, count: usize) -> usize {
    let val = dataset.val_indices();
    let powers = &dataset.trace().powers_dbm;
    let horizon = dataset.horizon();
    assert!(val.len() > count, "validation set too small for the window");
    let mut best = (0usize, f32::INFINITY);
    for off in 0..val.len() - count {
        // Use the window's minimum target power as the fade depth.
        let min = val[off..off + count]
            .iter()
            .map(|&k| powers[k + horizon])
            .fold(f32::INFINITY, f32::min);
        if min < best.1 {
            best = (off, min);
        }
    }
    best.0
}

fn window_rmse(points: &[PredictionPoint]) -> f32 {
    let mse: f32 = points
        .iter()
        .map(|p| (p.predicted_dbm - p.actual_dbm).powi(2))
        .sum::<f32>()
        / points.len() as f32;
    mse.sqrt()
}

fn main() {
    let mut exp = Experiment::start("fig3b");
    let profile = exp.profile();
    let dataset = build_dataset(profile);
    let count = 90; // ~3 s at the 33 ms frame interval
    let offset = deepest_fade_window(&dataset, count);
    exp.progress(&format!(
        "Fig. 3b — received-power predictions ({:?} profile; validation window at offset {offset}, {count} samples ≈ {:.1} s)",
        profile,
        count as f64 * dataset.trace().frame_interval_s
    ));

    let schemes = [
        (Scheme::ImgRf, PoolingDim::ONE_PIXEL),
        (Scheme::ImgOnly, PoolingDim::ONE_PIXEL),
        (Scheme::RfOnly, PoolingDim::ONE_PIXEL),
    ];

    let mut traces = Vec::new();
    let mut val_rmse = Vec::new();
    for (scheme, pooling) in schemes {
        let cfg = experiment_config(profile, scheme, pooling);
        exp.record_run(&scheme.to_string(), &cfg);
        let mut trainer = SplitTrainer::new(cfg, &dataset);
        let out = trainer.train_with(&dataset, exp.telemetry());
        let trace = trainer.predict_trace(&dataset, offset, count);
        println!(
            "{:<7} trained to {:.2} dB val RMSE; fade-window RMSE {:.2} dB",
            scheme.to_string(),
            out.final_rmse_db,
            window_rmse(&trace)
        );
        val_rmse.push((scheme, out.final_rmse_db));
        traces.push((scheme, trace));
    }

    // CSV: one row per time point with every scheme's prediction.
    let ground = &traces[0].1;
    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let t = ground[i].time_s;
        let actual = ground[i].actual_dbm;
        let mut row = format!("{t:.3},{actual:.3}");
        for (_, trace) in &traces {
            row.push_str(&format!(",{:.3}", trace[i].predicted_dbm));
        }
        rows.push(row);
    }
    exp.write_csv(
        "fig3b.csv",
        "time_s,ground_truth_dbm,img_rf_dbm,img_dbm,rf_dbm",
        &rows,
    );

    // ASCII overview of the window (progress chatter, not a result row).
    exp.progress("window overview (P = ground truth, i = Img+RF prediction):");
    let min = ground
        .iter()
        .map(|p| p.actual_dbm)
        .fold(f32::INFINITY, f32::min)
        - 2.0;
    let max = ground
        .iter()
        .map(|p| p.actual_dbm)
        .fold(f32::NEG_INFINITY, f32::max)
        + 2.0;
    let cols = 64usize;
    for i in (0..count).step_by(3) {
        let p = &traces[0].1[i];
        let pos = |v: f32| (((v - min) / (max - min)) * (cols - 1) as f32) as usize;
        let mut line = vec![b' '; cols];
        line[pos(p.actual_dbm).min(cols - 1)] = b'P';
        line[pos(p.predicted_dbm).min(cols - 1)] = b'i';
        exp.progress(&format!(
            "  {:6.2}s |{}|",
            p.time_s,
            String::from_utf8_lossy(&line)
        ));
    }

    // ---- paper-shape checks -------------------------------------------------
    // The paper's "closest to the ground truth" claim is about overall
    // tracking; a single 90-sample window is too noisy to decide it, so
    // the ordering check uses the full validation RMSE and the window
    // check only asserts the transition-anticipation property vs RF.
    println!("\npaper-shape check:");
    let window_of = |scheme: Scheme| {
        traces
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, t)| window_rmse(t))
            .expect("scheme ran")
    };
    let val_of = |scheme: Scheme| {
        val_rmse
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, r)| *r)
            .expect("scheme ran")
    };
    let (img_rf_v, img_v, rf_v) = (
        val_of(Scheme::ImgRf),
        val_of(Scheme::ImgOnly),
        val_of(Scheme::RfOnly),
    );
    println!(
        "  Img+RF closest to ground truth overall ({img_rf_v:.2} dB vs Img {img_v:.2} dB, RF {rf_v:.2} dB): {}",
        if img_rf_v <= img_v && img_rf_v <= rf_v { "YES" } else { "NO" }
    );
    let (img_rf_w, img_w, rf_w) = (
        window_of(Scheme::ImgRf),
        window_of(Scheme::ImgOnly),
        window_of(Scheme::RfOnly),
    );
    println!(
        "  image-assisted schemes anticipate the fade better than RF in the window (Img+RF {img_rf_w:.2} / Img {img_w:.2} vs RF {rf_w:.2} dB): {}",
        if img_rf_w <= rf_w && img_w <= rf_w { "YES" } else { "NO" }
    );

    exp.finish();
}
