//! `slm-report` — render markdown run reports from `results/<exp>/`
//! directories, maintain the `BENCH_<exp>.json` trajectory, and gate on
//! regressions.
//!
//! ```sh
//! slm-report results/fig3a                 # report + trajectory append
//! slm-report --check results/fig3a         # regression gate (exit 1 on fail)
//! slm-report --diff results/a results/b    # side-by-side comparison
//! slm-report --kernels results             # latest compute-kernel batch
//! slm-report --kernels --check results     # gate kernel determinism
//! slm-report --store results               # latest chunked-store codec batch
//! slm-report --store --check results       # gate store losslessness/compression
//! ```
//!
//! Flags: `--out FILE` (write markdown to a file), `--no-append` (skip
//! the trajectory append), `--tol-rmse X` / `--tol-time X` (relative
//! gate tolerances, defaults 0.30 / 0.25). `--kernels` reads the
//! `BENCH_kernels.json` trajectory written by the `kernels` bin and,
//! with `--check`, fails on determinism violations (throughputs are
//! reported, never gated). `--store` does the same for the
//! `BENCH_store.json` trajectory written by the `store` bin, gating
//! codec losslessness and the delta+rle compression win on depth
//! frames.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use sl_bench::report::{
    append_trajectory, bench_path, check, check_kernels, check_store, entry_from_run,
    kernels_bench_path, latest_kernels_batch, latest_store_batch, load_kernels_trajectory,
    load_run, load_store_trajectory, load_trajectory, render_diff, render_kernels, render_markdown,
    render_store, store_bench_path, CheckConfig, CheckOutcome,
};

const USAGE: &str = "usage: slm-report [--check] [--diff A B] [--kernels] [--store] [--out FILE] \
                     [--no-append] [--tol-rmse X] [--tol-time X] <results-dir>...";

fn main() -> ExitCode {
    let mut check_mode = false;
    let mut diff_mode = false;
    let mut kernels_mode = false;
    let mut store_mode = false;
    let mut no_append = false;
    let mut out_path: Option<PathBuf> = None;
    let mut cfg = CheckConfig::default();
    let mut dirs: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--diff" => diff_mode = true,
            "--kernels" => kernels_mode = true,
            "--store" => store_mode = true,
            "--no-append" => no_append = true,
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage_error("--out needs a path"),
            },
            "--tol-rmse" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.tol_rmse_rel = v,
                None => return usage_error("--tol-rmse needs a number"),
            },
            "--tol-time" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.tol_time_rel = v,
                None => return usage_error("--tol-time needs a number"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other:?}"));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.is_empty() {
        return usage_error("no results directory given");
    }

    if kernels_mode {
        if dirs.len() != 1 {
            return usage_error("--kernels needs exactly one results directory");
        }
        let path = kernels_bench_path(&dirs[0]);
        let all = match load_kernels_trajectory(&path) {
            Ok(t) => t,
            Err(e) => return load_error(&e),
        };
        let batch = latest_kernels_batch(&all);
        print!("{}", render_kernels(batch));
        if !check_mode {
            return ExitCode::SUCCESS;
        }
        let failures = check_kernels(batch);
        return if failures.is_empty() {
            println!("\nPASS  kernels  ({} entries in latest batch)", batch.len());
            ExitCode::SUCCESS
        } else {
            println!("\nFAIL  kernels");
            for f in &failures {
                println!("      - {f}");
            }
            ExitCode::from(1)
        };
    }

    if store_mode {
        if dirs.len() != 1 {
            return usage_error("--store needs exactly one results directory");
        }
        let path = store_bench_path(&dirs[0]);
        let all = match load_store_trajectory(&path) {
            Ok(t) => t,
            Err(e) => return load_error(&e),
        };
        let batch = latest_store_batch(&all);
        print!("{}", render_store(batch));
        if !check_mode {
            return ExitCode::SUCCESS;
        }
        let failures = check_store(batch);
        return if failures.is_empty() {
            println!("\nPASS  store  ({} entries in latest batch)", batch.len());
            ExitCode::SUCCESS
        } else {
            println!("\nFAIL  store");
            for f in &failures {
                println!("      - {f}");
            }
            ExitCode::from(1)
        };
    }

    if diff_mode {
        if dirs.len() != 2 {
            return usage_error("--diff needs exactly two results directories");
        }
        let (a, b) = match (load_run(&dirs[0]), load_run(&dirs[1])) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return load_error(&e),
        };
        let (md, regressed) = render_diff(&a, &b, &cfg);
        print!("{md}");
        return if regressed {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    let now_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut failed = false;
    let mut rendered = String::new();
    for dir in &dirs {
        let run = match load_run(dir) {
            Ok(r) => r,
            Err(e) => return load_error(&e),
        };
        let entry = entry_from_run(&run, now_s);
        let traj = bench_path(&run);
        if check_mode {
            let history = match load_trajectory(&traj) {
                Ok(h) => h,
                Err(e) => return load_error(&e),
            };
            let outcome = check(&entry, &history, &cfg);
            match &outcome {
                CheckOutcome::NoBaseline => {
                    println!(
                        "PASS  {}  (no baseline for profile {} / config {})",
                        run.name, entry.profile, entry.config_hash
                    );
                }
                CheckOutcome::Pass { baseline } => {
                    println!(
                        "PASS  {}  rmse {:.2} dB (baseline {:.2}), sim {:.2} s (baseline {:.2})",
                        run.name,
                        entry.val_rmse_db,
                        baseline.val_rmse_db,
                        entry.sim_elapsed_s,
                        baseline.sim_elapsed_s
                    );
                }
                CheckOutcome::Fail { failures, .. } => {
                    println!("FAIL  {}", run.name);
                    for f in failures {
                        println!("      - {f}");
                    }
                    failed = true;
                }
            }
            if outcome.passed() && !no_append {
                if let Err(e) = append_trajectory(&traj, &run.name, &entry) {
                    eprintln!("slm-report: {e}");
                }
            }
        } else {
            rendered.push_str(&render_markdown(&run));
            rendered.push('\n');
            if !no_append {
                match append_trajectory(&traj, &run.name, &entry) {
                    Ok(n) => eprintln!("slm-report: appended entry #{n} to {}", traj.display()),
                    Err(e) => eprintln!("slm-report: {e}"),
                }
            }
        }
    }
    if !check_mode {
        match &out_path {
            Some(p) => {
                if let Err(e) = std::fs::write(p, &rendered) {
                    eprintln!("slm-report: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
                eprintln!("slm-report: wrote {}", p.display());
            }
            None => print!("{rendered}"),
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("slm-report: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn load_error(msg: &str) -> ExitCode {
    eprintln!("slm-report: {msg}");
    ExitCode::from(2)
}
