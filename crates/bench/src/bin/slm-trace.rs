//! `slm-trace` — merge span journals, validate trace well-formedness,
//! and export Chrome trace-event JSON for Perfetto.
//!
//! ```sh
//! slm-trace results/fig3a/fig3a.jsonl          # check + latency table
//! slm-trace --out trace.json ue.jsonl bs.jsonl # merged Perfetto export
//! ```
//!
//! Inputs are JSONL journals written with `SLM_TRACE=on`; span events
//! from every file are merged into one set, so pointing it at both the
//! UE-side and BS-side journals of a networked run yields a single
//! timeline with the server spans stitched under the client's traces.
//! The merged set always goes through [`check_spans`] — orphan parents,
//! windows escaping their parent, or non-monotone simulated time exit
//! non-zero — and `--out` writes a deterministic Chrome trace-event
//! file that <https://ui.perfetto.dev> loads directly.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sl_telemetry::{
    check_spans, chrome_trace_json, latency_breakdown, spans_from_jsonl, SpanRecord,
};

const USAGE: &str = "usage: slm-trace [--out FILE] <journal.jsonl>...";

fn main() -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage_error("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other:?}"));
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        return usage_error("no journal files given");
    }

    let mut spans: Vec<SpanRecord> = Vec::new();
    for path in &inputs {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("slm-trace: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let found = spans_from_jsonl(&text);
        eprintln!("slm-trace: {}: {} span(s)", path.display(), found.len());
        spans.extend(found);
    }
    if spans.is_empty() {
        eprintln!(
            "slm-trace: no spans in {} journal file(s) (was the run made with SLM_TRACE=on?)",
            inputs.len()
        );
        return ExitCode::from(1);
    }

    let stats = match check_spans(&spans) {
        Ok(s) => s,
        Err(errors) => {
            eprintln!("slm-trace: merged span set is malformed:");
            for e in &errors {
                eprintln!("  - {e}");
            }
            return ExitCode::from(1);
        }
    };
    println!(
        "slm-trace: {} span(s), {} trace(s), {} root(s) — well-formed",
        stats.spans, stats.traces, stats.roots
    );
    println!();
    println!("| span | count | total sim ms | mean µs | max µs |");
    println!("|---|---:|---:|---:|---:|");
    for row in latency_breakdown(&spans) {
        println!(
            "| {} | {} | {:.3} | {:.1} | {} |",
            row.name,
            row.count,
            row.total_us as f64 / 1e3,
            row.mean_us(),
            row.max_us
        );
    }

    if let Some(path) = out_path {
        let json = chrome_trace_json(&spans);
        if let Err(e) = fs::write(&path, json + "\n") {
            eprintln!("slm-trace: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "slm-trace: wrote {} (load it at https://ui.perfetto.dev)",
            path.display()
        );
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("slm-trace: {msg}\n{USAGE}");
    ExitCode::from(2)
}
