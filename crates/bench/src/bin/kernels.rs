//! `kernels` — compute-backend micro-benchmark recorder.
//!
//! Measures the paper-shaped hot-path kernels at four tiers:
//!
//! * **ref** — the pre-backend scalar loops (naive i-k-j matmul, direct
//!   seven-loop convolution), reimplemented here as the fixed baseline;
//! * **serial** — the blocked (`pooled`) backend on an explicit
//!   one-thread [`ComputePool`];
//! * **pooled** — the blocked backend on the process-wide pool
//!   (`SLM_THREADS` wide);
//! * **simd** — the `std::arch` vector backend on one thread (falls
//!   back to the blocked kernels per call on hosts without AVX2/NEON).
//!
//! Tiers pin their backend explicitly, so the numbers mean the same
//! thing regardless of the ambient `SLM_BACKEND` selection.
//!
//! Each workload also asserts the backend's determinism contract: the
//! pooled and simd outputs must be **bitwise identical** to the serial
//! one. The
//! resulting [`KernelsEntry`] batch is appended to
//! `results/BENCH_kernels.json` and can be rendered / gated with
//! `slm-report --kernels [--check]`. Throughputs are recorded for the
//! trajectory but never gated — they are host-dependent.
//!
//! ```sh
//! kernels              # measure, append to results/BENCH_kernels.json
//! kernels --no-append  # measure + print only
//! kernels results2     # use a different results directory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_bench::report::{
    append_kernels_trajectory, check_kernels, kernels_bench_path, render_kernels, KernelsEntry,
};
use sl_tensor::{
    backend_for, conv2d_backward_with, conv2d_with, matmul_with, randn, Backend, BackendKind,
    ComputePool, Padding, Tensor,
};

/// Fixed data seed so successive runs measure identical workloads.
const SEED: u64 = 0x6b65_726e;

const USAGE: &str = "usage: kernels [--no-append] [<results-dir>]";

fn main() -> ExitCode {
    let mut no_append = false;
    let mut results_dir = PathBuf::from("results");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-append" => no_append = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("kernels: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            dir => results_dir = PathBuf::from(dir),
        }
    }

    let now_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let serial = ComputePool::new(1);
    let pooled = ComputePool::global();
    eprintln!(
        "kernels: pooled tier runs {} thread(s) (set SLM_THREADS to change)",
        pooled.threads()
    );

    let mut batch = Vec::new();
    for (m, k, n, label) in [(256, 16, 64, "dense batch"), (64, 96, 96, "gru gates")] {
        batch.push(measure_matmul(now_s, &serial, pooled, m, k, n, label));
    }
    batch.push(measure_conv_fwd(now_s, &serial, pooled));
    batch.push(measure_conv_bwd(now_s, &serial, pooled));

    print!("{}", render_kernels(&batch));
    let failures = check_kernels(&batch);
    for f in &failures {
        eprintln!("kernels: FAIL {f}");
    }

    if !no_append {
        let path = kernels_bench_path(&results_dir);
        if let Err(e) = std::fs::create_dir_all(&results_dir) {
            eprintln!("kernels: {}: {e}", results_dir.display());
            return ExitCode::from(2);
        }
        match append_kernels_trajectory(&path, &batch) {
            Ok(total) => eprintln!(
                "kernels: appended {} entries to {} ({total} total)",
                batch.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("kernels: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Best-observed throughput for `f`, in GFLOP/s: one warm-up call, then
/// three samples of `reps` calls sized to ~20 ms each.
fn time_gflops(flops: f64, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.02 / once).ceil() as usize).clamp(1, 2000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    flops / best.max(1e-9) / 1e9
}

fn bitwise_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The pre-backend matmul idiom: i-k-j accumulation into the output
/// row, with the zero-skip branch the backend removed.
fn ref_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            // slm-lint: allow(float-cmp) reproducing the removed zero-skip idiom verbatim
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

fn measure_matmul(
    now_s: u64,
    serial: &ComputePool,
    pooled: &ComputePool,
    m: usize,
    k: usize,
    n: usize,
    label: &str,
) -> KernelsEntry {
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = randn([m, k], 0.0, 1.0, &mut rng);
    let b = randn([k, n], 0.0, 1.0, &mut rng);
    let flops = 2.0 * (m * k * n) as f64;

    let blocked = backend_for(BackendKind::Pooled);
    let simd = backend_for(BackendKind::Simd);
    let ref_gflops = time_gflops(flops, || {
        std::hint::black_box(ref_matmul(a.data(), b.data(), m, k, n));
    });
    let serial_gflops = time_gflops(flops, || {
        std::hint::black_box(matmul_with(serial, blocked, &a, &b));
    });
    let pooled_gflops = time_gflops(flops, || {
        std::hint::black_box(matmul_with(pooled, blocked, &a, &b));
    });
    let simd_gflops = time_gflops(flops, || {
        std::hint::black_box(matmul_with(serial, simd, &a, &b));
    });
    let want = matmul_with(serial, blocked, &a, &b);
    let eq = bitwise_equal(&want, &matmul_with(pooled, blocked, &a, &b))
        && bitwise_equal(&want, &matmul_with(serial, simd, &a, &b));
    eprintln!("kernels: matmul {m}x{k}x{n} ({label})");
    KernelsEntry {
        timestamp_s: now_s,
        kernel: "matmul".to_string(),
        shape: format!("{m}x{k}x{n}"),
        threads: pooled.threads() as u64,
        ref_gflops,
        serial_gflops,
        pooled_gflops,
        simd_gflops,
        bitwise_equal: eq,
    }
}

/// The pre-backend convolution idiom: direct loops over every output
/// position and filter tap, no im2col.
fn ref_conv2d(x: &Tensor, w: &Tensor, bias: &Tensor, pad: Padding) -> Tensor {
    let (n, c_in, h, wi) = dims4(x);
    let (c_out, _, kh, kw) = dims4(w);
    let (ph, pw) = pad.amounts(kh, kw);
    let (ho, wo) = pad.output_size(h, wi, kh, kw);
    let mut out = Tensor::zeros([n, c_out, ho, wo]);
    for img in 0..n {
        for o in 0..c_out {
            for y in 0..ho {
                for xx in 0..wo {
                    let mut acc = bias.data()[o];
                    for c in 0..c_in {
                        for dy in 0..kh {
                            for dx in 0..kw {
                                let iy = y + dy;
                                let ix = xx + dx;
                                if iy >= ph && ix >= pw && iy - ph < h && ix - pw < wi {
                                    acc +=
                                        x.at(&[img, c, iy - ph, ix - pw]) * w.at(&[o, c, dy, dx]);
                                }
                            }
                        }
                    }
                    *out.at_mut(&[img, o, y, xx]) = acc;
                }
            }
        }
    }
    out
}

/// Direct-loop backward matching [`ref_conv2d`]'s summation structure.
fn ref_conv2d_backward(x: &Tensor, w: &Tensor, g: &Tensor, pad: Padding) -> (Tensor, Tensor) {
    let (n, c_in, h, wi) = dims4(x);
    let (c_out, _, kh, kw) = dims4(w);
    let (ph, pw) = pad.amounts(kh, kw);
    let (_, _, ho, wo) = dims4(g);
    let mut gx = Tensor::zeros(x.dims());
    let mut gw = Tensor::zeros(w.dims());
    for img in 0..n {
        for o in 0..c_out {
            for y in 0..ho {
                for xx in 0..wo {
                    let gv = g.at(&[img, o, y, xx]);
                    for c in 0..c_in {
                        for dy in 0..kh {
                            for dx in 0..kw {
                                let iy = y + dy;
                                let ix = xx + dx;
                                if iy >= ph && ix >= pw && iy - ph < h && ix - pw < wi {
                                    *gw.at_mut(&[o, c, dy, dx]) +=
                                        gv * x.at(&[img, c, iy - ph, ix - pw]);
                                    *gx.at_mut(&[img, c, iy - ph, ix - pw]) +=
                                        gv * w.at(&[o, c, dy, dx]);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (gx, gw)
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    let d = t.dims();
    (d[0], d[1], d[2], d[3])
}

/// Conv workload shaped like the paper's UE-side CNN input: a batch of
/// depth frames through a 3×3 'same' convolution.
fn conv_workload() -> (Tensor, Tensor, Tensor, f64) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let x = randn([4, 1, 40, 40], 0.0, 1.0, &mut rng);
    let w = randn([8, 1, 3, 3], 0.0, 0.5, &mut rng);
    let b = randn([8], 0.0, 0.1, &mut rng);
    let flops = 2.0 * (4 * 40 * 40) as f64 * (8 * 3 * 3) as f64;
    (x, w, b, flops)
}

fn measure_conv_fwd(now_s: u64, serial: &ComputePool, pooled: &ComputePool) -> KernelsEntry {
    let (x, w, b, flops) = conv_workload();
    let pad = Padding::Same;
    let blocked = backend_for(BackendKind::Pooled);
    let simd: &dyn Backend = backend_for(BackendKind::Simd);
    let ref_gflops = time_gflops(flops, || {
        std::hint::black_box(ref_conv2d(&x, &w, &b, pad));
    });
    let serial_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_with(serial, blocked, &x, &w, &b, pad));
    });
    let pooled_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_with(pooled, blocked, &x, &w, &b, pad));
    });
    let simd_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_with(serial, simd, &x, &w, &b, pad));
    });
    let want = conv2d_with(serial, blocked, &x, &w, &b, pad);
    let eq = bitwise_equal(&want, &conv2d_with(pooled, blocked, &x, &w, &b, pad))
        && bitwise_equal(&want, &conv2d_with(serial, simd, &x, &w, &b, pad));
    eprintln!("kernels: conv2d_fwd 4x1x40x40 * 8x1x3x3 same");
    KernelsEntry {
        timestamp_s: now_s,
        kernel: "conv2d_fwd".to_string(),
        shape: "4x1x40x40*8x1x3x3".to_string(),
        threads: pooled.threads() as u64,
        ref_gflops,
        serial_gflops,
        pooled_gflops,
        simd_gflops,
        bitwise_equal: eq,
    }
}

fn measure_conv_bwd(now_s: u64, serial: &ComputePool, pooled: &ComputePool) -> KernelsEntry {
    let (x, w, b, fwd_flops) = conv_workload();
    let pad = Padding::Same;
    let blocked = backend_for(BackendKind::Pooled);
    let simd: &dyn Backend = backend_for(BackendKind::Simd);
    let g = conv2d_with(serial, blocked, &x, &w, &b, pad);
    // grad_input + grad_weight are each one forward-sized GEMM.
    let flops = 2.0 * fwd_flops;

    let ref_gflops = time_gflops(flops, || {
        std::hint::black_box(ref_conv2d_backward(&x, &w, &g, pad));
    });
    let serial_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_backward_with(serial, blocked, &x, &w, &g, pad));
    });
    let pooled_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_backward_with(pooled, blocked, &x, &w, &g, pad));
    });
    let simd_gflops = time_gflops(flops, || {
        std::hint::black_box(conv2d_backward_with(serial, simd, &x, &w, &g, pad));
    });
    let gs = conv2d_backward_with(serial, blocked, &x, &w, &g, pad);
    let gp = conv2d_backward_with(pooled, blocked, &x, &w, &g, pad);
    let gv = conv2d_backward_with(serial, simd, &x, &w, &g, pad);
    let eq = bitwise_equal(&gs.grad_input, &gp.grad_input)
        && bitwise_equal(&gs.grad_weight, &gp.grad_weight)
        && bitwise_equal(&gs.grad_bias, &gp.grad_bias)
        && bitwise_equal(&gs.grad_input, &gv.grad_input)
        && bitwise_equal(&gs.grad_weight, &gv.grad_weight)
        && bitwise_equal(&gs.grad_bias, &gv.grad_bias);
    eprintln!("kernels: conv2d_bwd 4x1x40x40 * 8x1x3x3 same");
    KernelsEntry {
        timestamp_s: now_s,
        kernel: "conv2d_bwd".to_string(),
        shape: "4x1x40x40*8x1x3x3".to_string(),
        threads: pooled.threads() as u64,
        ref_gflops,
        serial_gflops,
        pooled_gflops,
        simd_gflops,
        bitwise_equal: eq,
    }
}
