//! **Ablations** — design choices the paper fixes without exploring,
//! exercised over the same pipeline as Fig. 3a (DESIGN.md §4):
//!
//! * cut-layer **bit depth** `R ∈ {1, 2, 4, 8}` — payload vs accuracy;
//! * **LSTM width** — does the BS half need its capacity?
//! * **recurrent cell type** — the paper only says "RNN layers"; LSTM vs
//!   GRU;
//! * **retransmission policy** — the paper's whole-payload retry vs the
//!   segmented extension, at 4×4 pooling where retransmissions dominate.
//!
//! ```sh
//! cargo run --release -p sl-bench --bin ablation
//! ```

use sl_bench::{build_dataset, experiment_config, Experiment};
use sl_channel::RetransmissionPolicy;
use sl_core::{ExperimentConfig, PoolingDim, Scheme, SplitTrainer};
use sl_scene::SequenceDataset;

fn train(
    exp: &mut Experiment,
    label: &str,
    cfg: ExperimentConfig,
    dataset: &SequenceDataset,
) -> (f32, f64, u64) {
    exp.record_run(label, &cfg);
    let mut trainer = SplitTrainer::new(cfg, dataset);
    let out = trainer.train_with(dataset, exp.telemetry());
    (out.best_rmse_db(), out.elapsed_s(), out.steps_applied)
}

fn main() {
    let mut exp = Experiment::start("ablation");
    let profile = exp.profile();
    let dataset = build_dataset(profile);
    // Shorter budget than fig3a: ablations compare configurations, not
    // final convergence.
    let epochs = profile.max_epochs().min(15);
    let mut rows = Vec::new();

    println!("Ablation 1 — cut-layer bit depth (Img+RF, 1-pixel pooling)");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "R", "UL bits", "best RMSE", "sim time"
    );
    for bits in [1usize, 2, 4, 8] {
        let mut cfg = experiment_config(profile, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        cfg.max_epochs = epochs;
        cfg.bit_depth = bits;
        let payload = (64 * bits * 4) as u64; // 1 px · B=64 · R · L=4
        let (rmse, sim_t, _) = train(&mut exp, &format!("bit_depth={bits}"), cfg, &dataset);
        println!("{bits:<8} {payload:>10} {rmse:>11.2}dB {sim_t:>11.2}s");
        rows.push(format!("bit_depth,{bits},{payload},{rmse:.3},{sim_t:.3}"));
    }

    println!("\nAblation 2 — BS LSTM width (Img+RF, 1-pixel pooling)");
    println!("{:<8} {:>12} {:>12}", "hidden", "best RMSE", "sim time");
    for hidden in [8usize, 32, 128] {
        let mut cfg = experiment_config(profile, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        cfg.max_epochs = epochs;
        cfg.hidden_dim = hidden;
        let (rmse, sim_t, _) = train(&mut exp, &format!("hidden_dim={hidden}"), cfg, &dataset);
        println!("{hidden:<8} {rmse:>11.2}dB {sim_t:>11.2}s");
        rows.push(format!("hidden_dim,{hidden},,{rmse:.3},{sim_t:.3}"));
    }

    println!("\nAblation 3 — BS recurrent cell (Img+RF, 1-pixel pooling)");
    println!("{:<8} {:>12} {:>12}", "cell", "best RMSE", "sim time");
    for (label, cell) in [
        ("lstm", sl_core::RnnCell::Lstm),
        ("gru", sl_core::RnnCell::Gru),
    ] {
        let mut cfg = experiment_config(profile, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        cfg.max_epochs = epochs;
        cfg.rnn_cell = cell;
        let (rmse, sim_t, _) = train(&mut exp, &format!("rnn_cell={label}"), cfg, &dataset);
        println!("{label:<8} {rmse:>11.2}dB {sim_t:>11.2}s");
        rows.push(format!("rnn_cell,{label},,{rmse:.3},{sim_t:.3}"));
    }

    println!("\nAblation 4 — retransmission policy (Img+RF, 4x4 pooling)");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "policy", "best RMSE", "sim time", "steps"
    );
    for (label, policy) in [
        (
            "whole",
            RetransmissionPolicy::WholePayload { max_slots: 20_000 },
        ),
        (
            "segmented",
            RetransmissionPolicy::Segmented {
                segment_bits: 30_000,
                max_slots: 20_000,
            },
        ),
    ] {
        let mut cfg = experiment_config(profile, Scheme::ImgRf, PoolingDim::MEDIUM);
        cfg.max_epochs = epochs;
        cfg.retransmission = policy;
        let (rmse, sim_t, steps) = train(&mut exp, &format!("policy={label}"), cfg, &dataset);
        println!("{label:<12} {rmse:>11.2}dB {sim_t:>11.2}s {steps:>10}");
        rows.push(format!("policy,{label},,{rmse:.3},{sim_t:.3}"));
    }

    exp.write_csv(
        "ablation.csv",
        "ablation,value,payload_bits,best_rmse_db,sim_time_s",
        &rows,
    );
    exp.finish();
}
