//! `store` — chunked-store codec benchmark and determinism harness.
//!
//! Three modes, all built on the fig3a smoke scene so the workload is
//! byte-identical across runs and machines:
//!
//! * **default** — measure encode/decode throughput, compression ratio
//!   and the lossless round-trip verdict for each (workload, codec)
//!   pairing — smoke-scene depth frames under `raw` and `delta+rle`,
//!   quantized cut-layer-style activations under `bitpack8` (routed
//!   through the append-only [`ActivationLog`], the privacy-audit
//!   path). The [`StoreEntry`] batch is appended to
//!   `results/BENCH_store.json` and rendered / gated with
//!   `slm-report --store [--check]`. Throughputs are recorded for the
//!   trajectory but never gated — they are host-dependent.
//! * **`--encode-scene DIR`** — chunk-encode the smoke scene into
//!   `DIR`. The encoded bytes are a pure function of the scene and the
//!   codec, so `scripts/verify.sh` runs this twice at different
//!   `SLM_THREADS` and `cmp`s every chunk file (the `store-bitwise`
//!   stage).
//! * **`--resume-check`** — train the smoke configuration twice, once
//!   uninterrupted and once through a mid-run checkpoint + a fresh
//!   process-state resume; exit nonzero unless the learning curves and
//!   simulated clocks match bitwise (the `store-resume` stage).
//!
//! ```sh
//! store                      # measure, append to results/BENCH_store.json
//! store --no-append          # measure + print only
//! store --encode-scene DIR   # deterministic chunked encode of the scene
//! store --resume-check       # checkpoint/resume bitwise gate
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_bench::report::{
    append_store_trajectory, check_store, render_store, store_bench_path, StoreEntry,
};
use sl_bench::{experiment_config, Profile, SCENE_SEED};
use sl_core::{PoolingDim, Scheme, SplitTrainer};
use sl_scene::{MeasurementTrace, Scene, SceneConfig, SequenceDataset};
use sl_store::{
    configured_chunk_items, configured_codec, read_array, write_array, ActivationLog, Codec,
    MemStorage, StoreMetrics,
};
use sl_telemetry::Telemetry;
use sl_tensor::ComputePool;

const USAGE: &str =
    "usage: store [--no-append] [--encode-scene DIR] [--resume-check] [<results-dir>]";

fn main() -> ExitCode {
    let mut no_append = false;
    let mut encode_scene: Option<PathBuf> = None;
    let mut resume_check = false;
    let mut results_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-append" => no_append = true,
            "--resume-check" => resume_check = true,
            "--encode-scene" => match args.next() {
                Some(dir) => encode_scene = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("store: --encode-scene needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("store: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            dir => results_dir = PathBuf::from(dir),
        }
    }

    if let Some(dir) = encode_scene {
        return encode_scene_mode(&dir);
    }
    if resume_check {
        return resume_check_mode(&results_dir);
    }
    bench_mode(&results_dir, no_append)
}

/// The fig3a smoke scene's measurement trace, regenerated exactly as
/// [`sl_bench::build_dataset`] builds it (generate + simulate off one
/// seeded stream) so every mode of this bin shares the figure workload.
fn smoke_trace() -> MeasurementTrace {
    let config = SceneConfig {
        num_frames: Profile::Smoke.num_frames(),
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(SCENE_SEED);
    let scene = Scene::generate(config, &mut rng);
    scene.simulate(&mut rng)
}

fn encode_scene_mode(dir: &Path) -> ExitCode {
    let trace = smoke_trace();
    let mut metrics = StoreMetrics::default();
    let codec = configured_codec(Codec::DeltaRle);
    if let Err(e) = trace.save_chunked(dir, codec, &mut metrics) {
        eprintln!("store: encode-scene {}: {e}", dir.display());
        return ExitCode::from(1);
    }
    eprintln!(
        "store: encoded {} frames into {} ({} chunks, ratio {:.2}, codec {})",
        trace.len(),
        dir.display(),
        metrics.chunks_written,
        metrics.ratio(),
        codec.name()
    );
    ExitCode::SUCCESS
}

/// Best-observed throughput for `f` over `bytes` of raw payload, in
/// MB/s (1e6 bytes): one warm-up call, then three timed samples.
fn time_mbps(bytes: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best.max(1e-9) / 1e6
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Measures one (workload, codec) pairing through a full
/// `write_array`/`read_array` cycle against in-memory storage.
fn measure(
    now_s: u64,
    workload: &str,
    values: &[f32],
    item_len: usize,
    codec: Codec,
) -> Result<StoreEntry, sl_store::StoreError> {
    let pool = ComputePool::global();
    let chunk_items = configured_chunk_items(item_len);
    let raw_bytes = values.len() * 4;

    // One un-timed cycle establishes the compression ratio and the
    // lossless verdict; the timed loops then only measure throughput.
    let mut storage = MemStorage::new();
    let mut metrics = StoreMetrics::default();
    write_array(
        &mut storage,
        workload,
        item_len,
        values,
        chunk_items,
        codec,
        pool,
        &mut metrics,
    )?;
    let ratio = metrics.ratio();
    let (_, decoded) = read_array(&storage, workload, pool, &mut metrics)?;
    let lossless = bits_eq(values, &decoded);

    let mut scratch = StoreMetrics::default();
    let encode_mbps = time_mbps(raw_bytes, || {
        let mut s = MemStorage::new();
        write_array(
            &mut s,
            workload,
            item_len,
            values,
            chunk_items,
            codec,
            pool,
            &mut scratch,
        )
        // slm-lint: allow(no-expect) the un-timed cycle above already proved this exact write succeeds
        .expect("timed write matches the verified one");
    });
    let decode_mbps = time_mbps(raw_bytes, || {
        // slm-lint: allow(no-expect) the un-timed cycle above already proved this exact read succeeds
        read_array(&storage, workload, pool, &mut scratch).expect("timed read matches");
    });

    eprintln!(
        "store: {workload} {} ({:.2} MB)",
        codec.name(),
        raw_bytes as f64 / 1e6
    );
    Ok(StoreEntry {
        timestamp_s: now_s,
        workload: workload.to_string(),
        codec: codec.name(),
        threads: pool.threads() as u64,
        raw_mb: raw_bytes as f64 / 1e6,
        encode_mbps,
        decode_mbps,
        ratio,
        lossless,
    })
}

fn bench_mode(results_dir: &Path, no_append: bool) -> ExitCode {
    let trace = smoke_trace();
    let (h, w) = (trace.frames[0].dims()[0], trace.frames[0].dims()[1]);
    let item_len = h * w;
    let mut pixels: Vec<f32> = Vec::with_capacity(trace.len() * item_len);
    for frame in &trace.frames {
        pixels.extend_from_slice(frame.data());
    }
    // Cut-layer-style activations: the same pixels snapped onto the
    // 8-bit quantizer grid `k / 255` (what the uplink actually carries).
    let activations: Vec<f32> = pixels
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() / 255.0)
        .collect();

    let now_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut batch = Vec::new();
    for codec in [Codec::Raw, Codec::DeltaRle] {
        match measure(now_s, "frames", &pixels, item_len, codec) {
            Ok(e) => batch.push(e),
            Err(e) => {
                eprintln!("store: frames {}: {e}", codec.name());
                return ExitCode::from(1);
            }
        }
    }
    match measure(
        now_s,
        "activations",
        &activations,
        item_len,
        Codec::Bitpack { bit_depth: 8 },
    ) {
        Ok(e) => batch.push(e),
        Err(e) => {
            eprintln!("store: activations bitpack8: {e}");
            return ExitCode::from(1);
        }
    }

    // The privacy-audit path: the same activations through the
    // append-only log, one frame per append, read back whole.
    if let Err(e) = exercise_activation_log(&activations, item_len) {
        eprintln!("store: activation log: {e}");
        return ExitCode::from(1);
    }

    print!("{}", render_store(&batch));
    let failures = check_store(&batch);
    for f in &failures {
        eprintln!("store: FAIL {f}");
    }

    if !no_append {
        let path = store_bench_path(results_dir);
        if let Err(e) = std::fs::create_dir_all(results_dir) {
            eprintln!("store: {}: {e}", results_dir.display());
            return ExitCode::from(2);
        }
        match append_store_trajectory(&path, &batch) {
            Ok(total) => eprintln!(
                "store: appended {} entries to {} ({total} total)",
                batch.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("store: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn exercise_activation_log(activations: &[f32], item_len: usize) -> Result<(), String> {
    let mut metrics = StoreMetrics::default();
    let mut log = ActivationLog::create(
        MemStorage::new(),
        "audit",
        item_len,
        Codec::Bitpack { bit_depth: 8 },
    )
    .map_err(|e| e.to_string())?;
    for frame in activations.chunks_exact(item_len).take(64) {
        log.append(frame, &mut metrics).map_err(|e| e.to_string())?;
    }
    let back = log
        .read_all(ComputePool::global(), &mut metrics)
        .map_err(|e| e.to_string())?;
    if !bits_eq(&back, &activations[..back.len()]) || log.items() != 64 {
        return Err("append-only log round-trip diverged".to_string());
    }
    eprintln!(
        "store: activation log {} appends, {} items, ratio {:.2}",
        metrics.log_appends,
        log.items(),
        metrics.ratio()
    );
    Ok(())
}

/// Trains the smoke configuration twice — uninterrupted, and split
/// across a checkpoint written after the first epoch and resumed into a
/// freshly constructed trainer — and demands bitwise-identical learning
/// curves and simulated clocks (the checkpoint's reason to exist).
fn resume_check_mode(results_dir: &Path) -> ExitCode {
    let ds: SequenceDataset = sl_bench::build_dataset(Profile::Smoke);
    let cfg = experiment_config(Profile::Smoke, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
    let mut tele = Telemetry::disabled();

    let mut full = SplitTrainer::new(cfg.clone(), &ds);
    let out_full = full.train_with(&ds, &mut tele);

    let ck_dir = results_dir.join("store_resume_ck");
    let _ = std::fs::remove_dir_all(&ck_dir);
    let mut half_cfg = cfg.clone();
    half_cfg.max_epochs = 1;
    let mut first = SplitTrainer::new(half_cfg, &ds);
    first.set_checkpoint_dir(&ck_dir);
    let _ = first.train_with(&ds, &mut tele);
    drop(first); // a fresh trainer resumes from disk state only

    let mut resumed = SplitTrainer::new(cfg, &ds);
    if let Err(e) = resumed.resume_from_checkpoint(&ck_dir) {
        eprintln!("store: resume-check: {e}");
        return ExitCode::from(1);
    }
    let out_resumed = resumed.train_with(&ds, &mut tele);
    let _ = std::fs::remove_dir_all(&ck_dir);

    let curves_match = out_full.curve.len() == out_resumed.curve.len()
        && out_full.curve.iter().zip(&out_resumed.curve).all(|(a, b)| {
            a.epoch == b.epoch
                && a.elapsed_s.to_bits() == b.elapsed_s.to_bits()
                && a.val_rmse_db.to_bits() == b.val_rmse_db.to_bits()
        });
    let clocks_match = out_full.compute_s.to_bits() == out_resumed.compute_s.to_bits()
        && out_full.airtime_s.to_bits() == out_resumed.airtime_s.to_bits();
    let steps_match = out_full.steps_applied == out_resumed.steps_applied
        && out_full.steps_voided == out_resumed.steps_voided;
    if curves_match && clocks_match && steps_match {
        println!(
            "store: resume-check PASS ({} curve points, {} steps, final {:.4} dB)",
            out_full.curve.len(),
            out_full.steps_applied,
            out_full.final_rmse_db
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "store: resume-check FAIL (curves {curves_match}, clocks {clocks_match}, \
             steps {steps_match})"
        );
        eprintln!("store:   full    {:?}", out_full.curve);
        eprintln!("store:   resumed {:?}", out_resumed.curve);
        ExitCode::from(1)
    }
}
