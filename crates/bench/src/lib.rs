//! # `sl-bench` — experiment harness
//!
//! Shared plumbing for the figure/table regeneration binaries
//! (`fig2`, `fig3a`, `fig3b`, `table1`, `ablation`) and the criterion
//! micro/macro benches. Each binary prints the paper-comparable rows to
//! stdout and writes its artifacts — CSV series, a `manifest.json`
//! describing every training run, and a final metrics `snapshot.json` —
//! under `results/<experiment>/` (see README *Observability*).
//!
//! Three profiles, selected by the `SLM_PROFILE` environment variable:
//!
//! * `smoke`: an 800-frame scene and 2 epochs — seconds-scale, used by
//!   `scripts/verify.sh` to feed the `slm-report` regression gate.
//! * `quick` (default): a 4,000-frame scene, ≤ 30 epochs, subsampled
//!   validation — every experiment finishes in minutes on a laptop.
//! * `full`: the paper's 13,228-frame scene and ≤ 100-epoch budget.
//!
//! Both profiles use the paper's architecture, hyper-parameters and
//! channel model; only the trace length and epoch budget differ.
//!
//! Telemetry: every binary opens one [`Experiment`], which builds its
//! [`Telemetry`] handle from `SLM_TELEMETRY` / `SLM_TELEMETRY_PATH`.
//! Progress chatter (headers, sparklines, "wrote ..." notes) goes
//! through [`Experiment::progress`] so `SLM_TELEMETRY=off` leaves only
//! the paper-comparable result rows on stdout.

pub mod report;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sl_core::{ExperimentConfig, PoolingDim, Scheme, TrainOutcome};
use sl_scene::{Scene, SceneConfig, SequenceDataset};
use sl_telemetry::json::{JsonArray, JsonObject};
use sl_telemetry::{EventBuilder, Snapshot, Telemetry};

/// Experiment scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds-scale CI smoke runs (profiling/report gate).
    Smoke,
    /// Minutes-scale runs (default).
    Quick,
    /// The paper's full scale.
    Full,
}

impl Profile {
    /// Parses an `SLM_PROFILE` value; `None` (unset) selects quick. An
    /// unrecognized value is an `Err` carrying it so the caller can
    /// report the misconfiguration instead of silently running quick.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("quick") => Ok(Profile::Quick),
            Some("full") => Ok(Profile::Full),
            Some("smoke") => Ok(Profile::Smoke),
            Some(other) => Err(other.to_string()),
        }
    }

    /// Reads `SLM_PROFILE` (`quick` | `full`), defaulting to quick.
    pub fn from_env() -> Self {
        Self::from_env_logged(&mut Telemetry::disabled())
    }

    /// [`Profile::from_env`], journaling a warning through `tele` when
    /// the variable is set to something unrecognized (the warning always
    /// reaches stderr, even in `off` mode).
    pub fn from_env_logged(tele: &mut Telemetry) -> Self {
        let raw = std::env::var("SLM_PROFILE").ok();
        match Self::parse(raw.as_deref()) {
            Ok(p) => p,
            Err(bad) => {
                tele.warn(&format!(
                    "unrecognized SLM_PROFILE value {bad:?} (expected smoke|quick|full); \
                     using quick"
                ));
                Profile::Quick
            }
        }
    }

    /// The profile's `SLM_PROFILE` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Scene frames for this profile.
    pub fn num_frames(self) -> usize {
        match self {
            Profile::Smoke => 800,
            Profile::Quick => 4_000,
            Profile::Full => 13_228,
        }
    }

    /// Epoch budget for this profile.
    pub fn max_epochs(self) -> usize {
        match self {
            Profile::Smoke => 2,
            Profile::Quick => 30,
            Profile::Full => 100,
        }
    }

    /// Validation subsample cap.
    pub fn val_subsample(self) -> Option<usize> {
        match self {
            Profile::Smoke => Some(64),
            Profile::Quick => Some(256),
            Profile::Full => Some(1_024),
        }
    }

    /// UE CNN hidden channels (the quick profile halves the paper's 8 —
    /// measured accuracy difference on the synthetic scene is < 0.1 dB,
    /// wall time halves; the smoke profile halves again).
    pub fn conv_channels(self) -> usize {
        match self {
            Profile::Smoke => 2,
            Profile::Quick => 4,
            Profile::Full => 8,
        }
    }
}

/// The seed every harness uses for the scene (so figures share one
/// trace).
pub const SCENE_SEED: u64 = 1;

/// Builds the shared scene + dataset for a profile.
pub fn build_dataset(profile: Profile) -> SequenceDataset {
    let config = SceneConfig {
        num_frames: profile.num_frames(),
        ..SceneConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(SCENE_SEED);
    let scene = Scene::generate(config, &mut rng);
    SequenceDataset::paper_windowing(scene.simulate(&mut rng))
}

/// The shared scene object (for harnesses that need geometry access).
pub fn build_scene(profile: Profile) -> Scene {
    let config = SceneConfig {
        num_frames: profile.num_frames(),
        ..SceneConfig::paper()
    };
    Scene::generate(config, &mut StdRng::seed_from_u64(SCENE_SEED))
}

/// The paper experiment config adjusted to `profile`.
pub fn experiment_config(
    profile: Profile,
    scheme: Scheme,
    pooling: PoolingDim,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(scheme, pooling);
    cfg.max_epochs = profile.max_epochs();
    cfg.val_subsample = profile.val_subsample();
    cfg.conv_channels = profile.conv_channels();
    cfg
}

/// The Fig. 3a configuration sweep, in the figure's row order (the
/// paper's proposal — 1-pixel Img+RF — last). Shared by the in-process
/// `fig3a` binary and the networked `slm-ue` loopback harness so the two
/// runs sweep byte-identical configurations.
pub fn fig3a_configs() -> [(Scheme, PoolingDim); 5] {
    [
        (Scheme::RfOnly, PoolingDim::ONE_PIXEL),
        (Scheme::ImgOnly, PoolingDim::ONE_PIXEL),
        (Scheme::ImgOnly, PoolingDim::MEDIUM),
        (Scheme::ImgRf, PoolingDim::MEDIUM),
        (Scheme::ImgRf, PoolingDim::ONE_PIXEL),
    ]
}

/// The Fig. 3a row label for a configuration (`RF`, `Img+RF, 4x4`, ...).
pub fn fig3a_label(scheme: Scheme, pooling: PoolingDim) -> String {
    if scheme == Scheme::RfOnly {
        scheme.to_string()
    } else {
        format!("{scheme}, {pooling}")
    }
}

/// The Fig. 3a CSV header.
pub const FIG3A_CSV_HEADER: &str = "config,epoch,elapsed_s,val_rmse_db";

/// Appends one formatted CSV row per learning-curve point. The exact
/// formatting lives here (not in the binaries) because the loopback
/// byte-identity gate `cmp`s two CSVs produced by different binaries.
pub fn fig3a_curve_rows(label: &str, out: &TrainOutcome, rows: &mut Vec<String>) {
    for p in &out.curve {
        rows.push(format!(
            "{label},{},{:.4},{:.4}",
            p.epoch, p.elapsed_s, p.val_rmse_db
        ));
    }
}

/// FNV-1a (64-bit) — the workspace's dependency-free stable hash, used
/// to fingerprint experiment configs in run manifests.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 16-hex-digit fingerprint of an [`ExperimentConfig`] (FNV-1a over
/// its `Debug` rendering — every field is `Debug`, so any config change
/// changes the hash).
pub fn config_hash(cfg: &ExperimentConfig) -> String {
    format!("{:016x}", fnv1a_64(format!("{cfg:?}").as_bytes()))
}

/// One training/evaluation run inside an experiment, as recorded in the
/// manifest.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Human label (the stdout row label).
    pub label: String,
    /// Scheme, `Display` form.
    pub scheme: String,
    /// Pooling, `Display` form.
    pub pooling: String,
    /// The config's RNG seed.
    pub seed: u64,
    /// [`config_hash`] fingerprint.
    pub config_hash: String,
}

/// Per-binary experiment context: owns the [`Telemetry`] handle, the
/// `results/<name>/` artifact directory and the run manifest.
///
/// Lifecycle: [`Experiment::start`] → `record_run` per configuration →
/// [`Experiment::finish`], which writes `manifest.json` and (when
/// telemetry is enabled) `snapshot.json` next to the CSVs.
#[derive(Debug)]
pub struct Experiment {
    name: String,
    profile: Profile,
    telemetry: Telemetry,
    dir: PathBuf,
    runs: Vec<RunRecord>,
    extras: Vec<(String, String)>,
    wall: Instant,
}

impl Experiment {
    /// Opens the experiment: creates `results/<name>/`, builds telemetry
    /// from `SLM_TELEMETRY` / `SLM_TELEMETRY_PATH` (the JSONL journal
    /// defaults to `results/<name>/<name>.jsonl`), resolves the profile
    /// from `SLM_PROFILE` (warning on unrecognized values) and journals
    /// a `run_start` event.
    pub fn start(name: &str) -> Self {
        let mode = std::env::var("SLM_TELEMETRY").ok();
        Self::start_configured(results_dir().join(name), name, mode.as_deref(), None)
    }

    /// [`Experiment::start`] with the environment inputs made explicit:
    /// the artifact directory, the telemetry mode string and (optionally)
    /// a fixed profile. Tests use this to run real experiments under a
    /// temp directory without mutating process-wide environment
    /// variables; `profile: None` still resolves `SLM_PROFILE`.
    pub fn start_configured(
        dir: PathBuf,
        name: &str,
        mode: Option<&str>,
        profile: Option<Profile>,
    ) -> Self {
        // slm-lint: allow(no-expect) harness startup: an uncreatable artifact dir is unrecoverable and the message names the path's role
        fs::create_dir_all(&dir).expect("experiment dir is creatable");
        let journal_dir = std::env::var("SLM_TELEMETRY_PATH")
            .map(PathBuf::from)
            .unwrap_or_else(|_| dir.clone());
        let mut telemetry = Telemetry::from_settings(mode, &journal_dir, name);
        telemetry.set_tracing(sl_telemetry::trace_env_enabled());
        let profile = profile.unwrap_or_else(|| Profile::from_env_logged(&mut telemetry));
        telemetry.emit(
            EventBuilder::new("run_start")
                .str("experiment", name)
                .str("profile", profile.name()),
        );
        Experiment {
            name: name.to_string(),
            profile,
            telemetry,
            dir,
            runs: Vec::new(),
            extras: Vec::new(),
            // slm-lint: allow(no-nondeterminism) bench harness wall-clock; timings are reported, never used in computation
            wall: Instant::now(),
        }
    }

    /// Attaches a raw JSON value under `key` at the top level of the run
    /// manifest — e.g. the networked runtime records its `net` block
    /// (addr, port, fault seed, retry budget) here. Later annotations
    /// with the same key replace earlier ones.
    pub fn annotate_raw(&mut self, key: &str, json: &str) {
        self.extras.retain(|(k, _)| k != key);
        self.extras.push((key.to_string(), json.to_string()));
    }

    /// The resolved profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The experiment's artifact directory, `results/<name>/`.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The telemetry handle (pass to `train_with` / `run_with`).
    pub fn telemetry(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Routes progress chatter through the telemetry journal; with
    /// `SLM_TELEMETRY=off` it vanishes, keeping stdout to the
    /// paper-comparable rows.
    pub fn progress(&mut self, msg: &str) {
        self.telemetry.progress(msg);
    }

    /// Registers one configuration in the manifest and journals it.
    pub fn record_run(&mut self, label: &str, cfg: &ExperimentConfig) {
        let rec = RunRecord {
            label: label.to_string(),
            scheme: cfg.scheme.to_string(),
            pooling: cfg.pooling.to_string(),
            seed: cfg.seed,
            config_hash: config_hash(cfg),
        };
        self.telemetry.emit(
            EventBuilder::new("run_config")
                .str("label", &rec.label)
                .str("scheme", &rec.scheme)
                .str("pooling", &rec.pooling)
                .u64("seed", rec.seed)
                .str("config_hash", &rec.config_hash),
        );
        self.runs.push(rec);
    }

    /// Writes CSV rows (first row = header) to `results/<name>/<file>`,
    /// journaling the artifact path as progress.
    pub fn write_csv(&mut self, file: &str, header: &str, rows: &[String]) -> PathBuf {
        let path = write_csv_at(&self.dir, file, header, rows);
        self.progress(&format!("wrote {}", path.display()));
        path
    }

    /// The manifest JSON (exposed for tests).
    pub fn manifest_json(&self, snapshot: &Snapshot) -> String {
        let mut runs = JsonArray::new();
        for r in &self.runs {
            runs.push_raw(
                &JsonObject::new()
                    .str("label", &r.label)
                    .str("scheme", &r.scheme)
                    .str("pooling", &r.pooling)
                    .u64("seed", r.seed)
                    .str("config_hash", &r.config_hash)
                    .finish(),
            );
        }
        let mut obj = JsonObject::new()
            .str("experiment", &self.name)
            .str("profile", self.profile.name())
            .u64("scene_seed", SCENE_SEED)
            // Compute-backend width for the run — results are bitwise
            // thread-count independent, but throughput is not.
            .u64(
                "slm_threads",
                sl_tensor::ComputePool::global().threads() as u64,
            )
            .str(
                "telemetry_mode",
                match self.telemetry.mode() {
                    sl_telemetry::TelemetryMode::Off => "off",
                    sl_telemetry::TelemetryMode::Summary => "summary",
                    sl_telemetry::TelemetryMode::Jsonl => "jsonl",
                },
            );
        if let Some(p) = self.telemetry.events_path() {
            obj = obj.str("events_path", &p.display().to_string());
        }
        for (k, v) in &self.extras {
            obj = obj.raw(k, v);
        }
        obj = obj
            .f64("wall_s", self.wall.elapsed().as_secs_f64())
            .f64(
                "sim_compute_s",
                snapshot.gauge("sim.compute_s").unwrap_or(0.0),
            )
            .f64(
                "sim_airtime_s",
                snapshot.gauge("sim.airtime_s").unwrap_or(0.0),
            )
            .raw("runs", &runs.finish());
        obj.finish()
    }

    /// Closes the experiment: journals `run_end`, writes
    /// `manifest.json`, and — when telemetry is enabled — writes the
    /// final metrics `snapshot.json` plus the sampled time-series
    /// (`series.jsonl` / `series.bin`, when any points were recorded);
    /// flushes the sink. Returns the manifest path.
    pub fn finish(mut self) -> PathBuf {
        let snapshot = self.telemetry.snapshot();
        self.telemetry.emit(
            EventBuilder::new("run_end")
                .str("experiment", &self.name)
                .u64("runs", self.runs.len() as u64)
                .f64("wall_s", self.wall.elapsed().as_secs_f64()),
        );
        let manifest_path = self.dir.join("manifest.json");
        fs::write(&manifest_path, self.manifest_json(&snapshot) + "\n")
            // slm-lint: allow(no-expect) losing the manifest silently would invalidate the experiment record; abort loudly
            .expect("manifest is writable");
        if self.telemetry.is_enabled() {
            let snap_path = self.dir.join("snapshot.json");
            // slm-lint: allow(no-expect) the metrics snapshot is a primary experiment artifact; abort loudly if unwritable
            fs::write(&snap_path, snapshot.to_json() + "\n").expect("snapshot is writable");
        }
        if self.telemetry.is_enabled() && !self.telemetry.series().is_empty() {
            // Sampled time-series: JSONL (the determinism gate `cmp`s
            // it byte-for-byte across runs) plus the delta-encoded
            // binary twin.
            self.telemetry
                .series()
                .write_jsonl(&self.dir.join("series.jsonl"))
                // slm-lint: allow(no-expect) the series is a primary experiment artifact; abort loudly if unwritable
                .expect("series.jsonl is writable");
            self.telemetry
                .series()
                .write_binary(&self.dir.join("series.bin"))
                // slm-lint: allow(no-expect) the series is a primary experiment artifact; abort loudly if unwritable
                .expect("series.bin is writable");
        }
        self.telemetry.flush();
        manifest_path
    }
}

/// The `results/` output directory (created on demand), next to the
/// workspace root when run via `cargo run -p sl-bench`, else the CWD.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    // slm-lint: allow(no-expect) harness startup: no results dir means nothing can be recorded; abort loudly
    fs::create_dir_all(&dir).expect("results dir is creatable");
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench at compile time; its grandparent
    // is the workspace root. Falls back to the CWD when moved.
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf);
    match compiled {
        Some(p) if p.join("Cargo.toml").exists() => p,
        _ => PathBuf::from("."),
    }
}

/// Writes CSV rows (first row = header) to `results/<name>`. Binaries
/// prefer [`Experiment::write_csv`], which targets the experiment's own
/// subdirectory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    write_csv_at(&results_dir(), name, header, rows)
}

fn write_csv_at(dir: &Path, name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    // slm-lint: allow(no-expect) a CSV that cannot be written is a lost figure; abort loudly with the role in the message
    fs::write(&path, body).expect("results file is writable");
    path
}

/// Renders a down-sampled ASCII sparkline of a learning curve for the
/// stdout report.
pub fn sparkline(values: &[f32]) -> String {
    const GLYPHS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * (GLYPHS.len() - 1) as f32).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parameters() {
        assert_eq!(Profile::Quick.num_frames(), 4_000);
        assert_eq!(Profile::Full.num_frames(), 13_228);
        assert!(Profile::Quick.max_epochs() < Profile::Full.max_epochs());
    }

    #[test]
    fn experiment_config_respects_profile() {
        let cfg = experiment_config(Profile::Quick, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        assert_eq!(cfg.max_epochs, 30);
        assert_eq!(cfg.batch_size, 64); // paper constant untouched
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn csv_written_under_results() {
        let p = write_csv("_test.csv", "a,b", &["1,2".into()]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn profile_parse_flags_unknown_values() {
        assert_eq!(Profile::parse(None), Ok(Profile::Quick));
        assert_eq!(Profile::parse(Some("quick")), Ok(Profile::Quick));
        assert_eq!(Profile::parse(Some("full")), Ok(Profile::Full));
        assert_eq!(Profile::parse(Some("FULL")), Err("FULL".to_string()));
        assert_eq!(Profile::parse(Some("fast")), Err("fast".to_string()));
        assert_eq!(Profile::Quick.name(), "quick");
        assert_eq!(Profile::Full.name(), "full");
    }

    #[test]
    fn config_hash_is_stable_and_config_sensitive() {
        let a = experiment_config(Profile::Quick, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        assert_eq!(config_hash(&a), config_hash(&a.clone()));
        assert_eq!(config_hash(&a).len(), 16);
        let mut b = a.clone();
        b.seed += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        let c = experiment_config(Profile::Quick, Scheme::ImgRf, PoolingDim::MEDIUM);
        assert_ne!(config_hash(&a), config_hash(&c));
    }

    #[test]
    fn fig3a_labels_match_figure_rows() {
        assert_eq!(fig3a_label(Scheme::RfOnly, PoolingDim::ONE_PIXEL), "RF");
        assert_eq!(
            fig3a_label(Scheme::ImgRf, PoolingDim::MEDIUM),
            "Img+RF, 4x4"
        );
        assert_eq!(
            fig3a_label(Scheme::ImgRf, PoolingDim::ONE_PIXEL),
            "Img+RF, 40x40 (1-pixel)"
        );
        // Five rows, proposal last, labels unique.
        let labels: Vec<String> = fig3a_configs()
            .iter()
            .map(|&(s, p)| fig3a_label(s, p))
            .collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(
            labels.last().map(String::as_str),
            Some("Img+RF, 40x40 (1-pixel)")
        );
        for (i, l) in labels.iter().enumerate() {
            assert!(!labels[..i].contains(l), "duplicate fig3a label {l}");
        }
    }

    #[test]
    fn fig3a_rows_format_is_stable() {
        use sl_core::{CurvePoint, StopReason};
        let out = TrainOutcome {
            curve: vec![CurvePoint {
                elapsed_s: 1.25,
                epoch: 1,
                val_rmse_db: 3.5,
            }],
            stop: StopReason::EpochLimit,
            final_rmse_db: 3.5,
            epochs: 1,
            steps_applied: 1,
            steps_voided: 0,
            compute_s: 1.0,
            airtime_s: 0.25,
        };
        let mut rows = Vec::new();
        fig3a_curve_rows("RF", &out, &mut rows);
        assert_eq!(rows, vec!["RF,1,1.2500,3.5000".to_string()]);
    }

    #[test]
    fn manifest_annotations_land_at_top_level() {
        let mut exp = Experiment::start("_test_annotations");
        exp.annotate_raw("net", "{\"port\":1234}");
        exp.annotate_raw("net", "{\"port\":5678}"); // replaces
        let manifest = exp.manifest_json(&exp.telemetry.snapshot());
        assert!(manifest.contains("\"net\":{\"port\":5678}"));
        assert!(!manifest.contains("1234"));
        let path = exp.finish();
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_records_runs_and_sim_time() {
        let mut exp = Experiment::start("_test_manifest");
        let cfg = experiment_config(Profile::Quick, Scheme::ImgRf, PoolingDim::ONE_PIXEL);
        exp.record_run("Img+RF, 1-pixel", &cfg);
        exp.telemetry().gauge_add("sim.compute_s", 1.25);
        exp.telemetry().gauge_add("sim.airtime_s", 0.5);
        let manifest = exp.manifest_json(&exp.telemetry.snapshot());
        assert!(manifest.contains("\"experiment\":\"_test_manifest\""));
        assert!(manifest.contains(&format!("\"config_hash\":\"{}\"", config_hash(&cfg))));
        assert!(manifest.contains(&format!("\"seed\":{}", cfg.seed)));
        if exp.telemetry.is_enabled() {
            assert!(manifest.contains("\"sim_compute_s\":1.25"));
        }

        let telemetry_enabled = exp.telemetry.is_enabled();
        let path = exp.finish();
        assert!(path.ends_with("_test_manifest/manifest.json"));
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.contains("\"runs\":[{"));
        if telemetry_enabled {
            // finish() also wrote the final metrics snapshot.
            let snap =
                std::fs::read_to_string(path.parent().unwrap().join("snapshot.json")).unwrap();
            assert!(snap.contains("\"sim.compute_s\""));
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
